"""Bench: regenerate Figure 2 (control-flow characterization)."""

from conftest import column, rows_by

SCALE = 0.5


def test_bench_fig02_characterization(run_figure):
    results = run_figure("fig2", SCALE)
    by_id = {r.experiment_id: r for r in results}

    summary = by_id["fig2a-e2e"]
    comm_pct = {
        column(summary, row, "bench"): column(summary, row, "comm_pct")
        for row in summary.rows
    }
    # Figure 2(a): wc is communication-dominated, img computation-dominated.
    assert comm_pct["wc"] > 70.0
    assert comm_pct["img"] < 40.0
    assert comm_pct["wc"] > comm_pct["vid"] > comm_pct["img"]

    # Figure 2(c): the production orchestrator costs tens of ms per trigger.
    for row in summary.rows:
        trigger_ms = column(summary, row, "avg_trigger_ms_per_fn")
        assert 20.0 < trigger_ms < 200.0

    # Figure 2(b): control flow never overlaps CPU and network.
    usage = by_id["fig2b"]
    for row in usage.rows:
        assert column(usage, row, "cpu_net_overlap_s") == 0.0
