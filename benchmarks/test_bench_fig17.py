"""Bench: regenerate Figure 17 (scaling containers up)."""

from conftest import column, rows_by

SCALE = 0.4


def _throughput(table, **filters):
    rows = rows_by(table, **filters)
    assert rows, filters
    return column(table, rows[0], "throughput_rpm")


def test_bench_fig17_scaleup(run_figure):
    results = run_figure("fig17", SCALE)
    table = results[0]
    sizes = sorted({row[0] for row in table.rows})
    small, large = sizes[0], sizes[-1]

    # DataFlower and SONIC profit from scale-up (direct data passing).
    for system in ["dataflower", "sonic"]:
        assert _throughput(table, container_mb=large, system=system) > \
            1.5 * _throughput(table, container_mb=small, system=system)

    # FaaSFlow's backend-store bottleneck caps its scale-up benefit.
    faas_gain = _throughput(table, container_mb=large, system="faasflow") / \
        _throughput(table, container_mb=small, system="faasflow")
    flower_gain = _throughput(table, container_mb=large, system="dataflower") / \
        _throughput(table, container_mb=small, system="dataflower")
    assert flower_gain > faas_gain

    # At the largest containers DataFlower clearly beats FaaSFlow
    # (paper: +148.4%).
    assert _throughput(table, container_mb=large, system="dataflower") > \
        1.5 * _throughput(table, container_mb=large, system="faasflow")
