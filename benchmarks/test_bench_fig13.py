"""Bench: regenerate Figure 13 (wc trigger timeline, single node)."""

from conftest import column

SCALE = 1.0  # a handful of solo requests: cheap at full scale


def test_bench_fig13_trigger_timeline(run_figure):
    results = run_figure("fig13", SCALE)
    gaps = next(r for r in results if r.experiment_id == "fig13-gaps")

    lag = {
        column(gaps, row, "system"): (
            column(gaps, row, "count_lag_ms"),
            column(gaps, row, "merge_lag_ms"),
            column(gaps, row, "e2e_s"),
        )
        for row in gaps.rows
    }
    # DataFlower triggers count BEFORE start completes (streamed chunks)...
    assert lag["dataflower"][0] < 0
    # ...and merge within a few ms of count's completion.
    assert lag["dataflower"][1] < 5.0
    # Control-flow systems lag behind their predecessors.
    assert lag["faasflow"][0] > 3.0
    assert lag["sonic"][0] > lag["faasflow"][0]
    # End-to-end ordering matches the paper's timeline.
    assert lag["dataflower"][2] < lag["faasflow"][2] < lag["sonic"][2]
