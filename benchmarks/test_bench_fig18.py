"""Bench: regenerate Figure 18 (co-located benchmarks under load)."""

from conftest import column, rows_by

SCALE = 0.4  # runs low + ultra levels


def test_bench_fig18_colocation(run_figure):
    results = run_figure("fig18", SCALE)
    table = results[0]

    # DataFlower survives Ultra load without failures and within the
    # paper's < 2x degradation bound.
    for row in rows_by(table, level="ultra", system="dataflower"):
        assert column(table, row, "failed") == 0
        degradation = column(table, row, "vs_solo")
        assert degradation == degradation  # not NaN
        assert degradation < 2.0

    # The control-flow baselines fail at Ultra (timeouts appear).
    for system in ["faasflow", "sonic"]:
        failures = sum(
            column(table, row, "failed")
            for row in rows_by(table, level="ultra", system=system)
        )
        assert failures > 0, f"{system} survived ultra load"

    # At Low co-location, DataFlower has the shortest latency everywhere.
    for row in rows_by(table, level="low", system="dataflower"):
        bench = column(table, row, "bench")
        flower = column(table, row, "avg_latency_s")
        for system in ["faasflow", "sonic"]:
            other = rows_by(table, level="low", bench=bench, system=system)
            assert flower < column(table, other[0], "avg_latency_s")
