"""Bench: regenerate Figure 12 (pressure-aware scaling ablation)."""

from conftest import column

SCALE = 0.35


def test_bench_fig12_pressure_ablation(run_figure):
    results = run_figure("fig12", SCALE)
    peaks = next(r for r in results if r.experiment_id == "fig12-peaks")

    gains = {
        column(peaks, row, "bench"): column(peaks, row, "gain")
        for row in peaks.rows
    }
    # img barely changes (small intermediate data, paper Figure 12(a))...
    assert gains["img"] < 1.3
    # ...while wc — the most communication-bound workflow — collapses
    # without pressure-aware scaling.
    assert gains["wc"] > 1.5, f"wc: gain {gains['wc']}"
    # vid/svd: platform scale-out masks most of the gap in our substrate
    # (the paper observes the same masking for vid at 16-32 clients);
    # non-aware must never materially beat the full system.
    for bench, gain in gains.items():
        assert gain > 0.9, f"{bench}: gain {gain}"
