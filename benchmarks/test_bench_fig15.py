"""Bench: regenerate Figure 15 (bursty load CDF and sigma)."""

from conftest import column

SCALE = 1.0  # 110 requests over two minutes: cheap at full scale


def test_bench_fig15_bursty(run_figure):
    results = run_figure("fig15", SCALE)
    summary = results[0]

    stats = {
        column(summary, row, "system"): (
            column(summary, row, "mean_s"),
            column(summary, row, "p99_s"),
            column(summary, row, "sigma"),
        )
        for row in summary.rows
    }
    # DataFlower has the lowest mean and p99 under the burst.
    assert stats["dataflower"][0] < stats["faasflow"][0]
    assert stats["dataflower"][0] < stats["sonic"][0]
    assert stats["dataflower"][1] < stats["sonic"][1]
    # SONIC handles the burst worst (paper: sigma 0.155 vs ~0.05).
    assert stats["sonic"][2] > stats["dataflower"][2]
