"""Bench: regenerate Figure 10 (async latency + memory vs load)."""

from conftest import column, rows_by

SCALE = 0.35


def test_bench_fig10_latency_memory(run_figure):
    results = run_figure("fig10", SCALE)
    table = results[0]

    # At every (bench, rpm) point where all systems completed, DataFlower's
    # p99 must not exceed the baselines'.
    wins = total = 0
    for row in table.rows:
        if column(table, row, "system") != "dataflower":
            continue
        bench = column(table, row, "bench")
        rpm = column(table, row, "rpm")
        flower_p99 = column(table, row, "p99_s")
        if flower_p99 != flower_p99:  # NaN: all requests timed out
            continue
        for baseline in ["faasflow", "sonic"]:
            other = rows_by(table, bench=bench, rpm=rpm, system=baseline)
            if not other:
                continue
            other_p99 = column(table, other[0], "p99_s")
            if other_p99 != other_p99:
                continue
            total += 1
            if flower_p99 <= other_p99 * 1.02:
                wins += 1
    assert total > 0
    assert wins / total >= 0.9, f"DataFlower won only {wins}/{total} p99 points"

    # Memory claim: DataFlower uses less container memory than FaaSFlow.
    for bench in ["vid", "svd", "wc"]:
        flower = rows_by(table, bench=bench, system="dataflower")
        faas = rows_by(table, bench=bench, system="faasflow")
        flower_mem = [column(table, r, "mem_gbs_per_req") for r in flower]
        faas_mem = [column(table, r, "mem_gbs_per_req") for r in faas]
        pairs = [
            (f, b) for f, b in zip(flower_mem, faas_mem) if f == f and b == b
        ]
        assert pairs
        assert sum(f for f, _ in pairs) < sum(b for _, b in pairs)
