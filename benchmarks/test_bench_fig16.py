"""Bench: regenerate Figure 16 (fan-out and input-size adaptiveness)."""

from conftest import column, rows_by

SCALE = 0.4


def _throughput(table, **filters):
    rows = rows_by(table, **filters)
    assert rows, filters
    return column(table, rows[0], "throughput_rpm")


def test_bench_fig16_adaptiveness(run_figure):
    results = run_figure("fig16", SCALE)
    by_id = {r.experiment_id: r for r in results}

    branches_table = by_id["fig16a"]
    branch_values = sorted({row[0] for row in branches_table.rows})
    # DataFlower wins at every branch count...
    for branches in branch_values:
        flower = _throughput(branches_table, branches=branches, system="dataflower")
        faas = _throughput(branches_table, branches=branches, system="faasflow")
        assert flower > faas
    # ...and its advantage grows with the fan-out width.
    low, high = branch_values[0], branch_values[-1]
    gain_low = _throughput(branches_table, branches=low, system="dataflower") / \
        _throughput(branches_table, branches=low, system="faasflow")
    gain_high = _throughput(branches_table, branches=high, system="dataflower") / \
        _throughput(branches_table, branches=high, system="faasflow")
    assert gain_high > gain_low

    size_table = by_id["fig16b"]
    sizes = sorted({row[0] for row in size_table.rows})
    small, large = sizes[0], sizes[-1]
    # The gain shrinks as input grows (CPU becomes the bottleneck).
    gain_small = _throughput(size_table, input_mb=small, system="dataflower") / \
        _throughput(size_table, input_mb=small, system="faasflow")
    gain_large = _throughput(size_table, input_mb=large, system="dataflower") / \
        _throughput(size_table, input_mb=large, system="faasflow")
    assert gain_small > gain_large
    assert gain_large > 1.0
