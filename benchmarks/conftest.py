"""pytest-benchmark configuration for the figure-regeneration benches.

Each bench runs one paper experiment at reduced scale through
``benchmark.pedantic`` (one round — the simulations are deterministic, so
repetition only measures interpreter noise) and attaches headline numbers
from the experiment's tables to ``benchmark.extra_info`` so the shape of
the result is visible straight from the benchmark report.
"""

import pytest


@pytest.fixture
def run_figure(benchmark):
    """Run an experiment under the benchmark harness and return its tables."""

    from repro.experiments import run_experiment

    def runner(experiment_id, scale, **extra_info):
        results = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"scale": scale},
            rounds=1,
            iterations=1,
        )
        benchmark.extra_info.update(extra_info)
        return results

    return runner


def rows_by(result, **filters):
    """Filter an ExperimentResult's rows by named column values."""
    indices = {name: result.headers.index(name) for name in filters}
    return [
        row
        for row in result.rows
        if all(row[indices[name]] == value for name, value in filters.items())
    ]


def column(result, row, name):
    return row[list(result.headers).index(name)]
