"""Bench: regenerate Figure 19 (stateful functions integration)."""

from conftest import column

SCALE = 1.0  # two warm solo requests per benchmark: cheap at full scale


def test_bench_fig19_stateful(run_figure):
    results = run_figure("fig19", SCALE)
    table = results[0]

    for row in table.rows:
        bench = column(table, row, "bench")
        reduction = column(table, row, "reduction_pct")
        # The streaming pipe connector beats the state machine's two-hop
        # context-object passing on every benchmark (paper: up to 47.6%).
        assert reduction > 20.0, f"{bench}: only {reduction:.1f}%"
        assert reduction < 80.0, f"{bench}: implausible {reduction:.1f}%"
