"""Ablation benches for the design choices DESIGN.md calls out.

Beyond the paper's own ablation (Figure 12, pressure-aware scaling),
these benches quantify the contribution of each DataFlower mechanism on
a fixed workload, so a regression in any of them shows up as a shape
change here.
"""

import pytest

from repro import (
    Cluster,
    ClusterConfig,
    DataFlowerConfig,
    DataFlowerSystem,
    Environment,
    constant,
    default_request_factory,
    round_robin,
    run_open_loop,
)
from repro.apps import get_app

RPM = 20
DURATION_S = 40.0


def run_variant(app_name, **cfg):
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    system = DataFlowerSystem(env, cluster, DataFlowerConfig(**cfg))
    app = get_app(app_name)
    workflow = app.build()
    system.deploy(workflow, round_robin(workflow, cluster.workers))
    factory = default_request_factory(
        system, workflow.name, app.default_input_bytes, app.default_fanout
    )
    result = run_open_loop(
        system, workflow.name, factory, constant(RPM, DURATION_S)
    )
    return system, result


def test_bench_ablation_streaming(benchmark):
    """Streaming overlap: pushes start at the first chunk, not at the end."""

    def run():
        _, on = run_variant("vid")
        _, off = run_variant("vid", streaming=False)
        return on.latency().mean_s, off.latency().mean_s

    with_streaming, without = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["mean_with_streaming_s"] = with_streaming
    benchmark.extra_info["mean_without_s"] = without
    assert with_streaming < without


def test_bench_ablation_proactive_release(benchmark):
    """Proactive release: the Figure 14 mechanism, isolated."""

    def run():
        _, on = run_variant("svd")
        _, off = run_variant("svd", proactive_release=False)
        return on.usage.cache_mbs_per_request, off.usage.cache_mbs_per_request

    proactive, lazy = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cache_proactive_mbs"] = proactive
    benchmark.extra_info["cache_lazy_mbs"] = lazy
    assert proactive < lazy


def test_bench_ablation_prewarm(benchmark):
    """§10 prewarming: cold-start latency hidden behind data transfer."""

    def run():
        def cold_first_latency(prewarm):
            env = Environment()
            cluster = Cluster(env, ClusterConfig())
            system = DataFlowerSystem(
                env, cluster, DataFlowerConfig(prewarm=prewarm)
            )
            app = get_app("vid")
            workflow = app.build()
            system.deploy(workflow, round_robin(workflow, cluster.workers))
            from repro import RequestSpec

            done = system.submit(
                workflow.name,
                RequestSpec(
                    "r1",
                    input_bytes=app.default_input_bytes,
                    fanout=app.default_fanout,
                ),
            )
            return env.run(until=done).latency

        return cold_first_latency(True), cold_first_latency(False)

    with_prewarm, without = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cold_latency_prewarm_s"] = with_prewarm
    benchmark.extra_info["cold_latency_plain_s"] = without
    assert with_prewarm < without


def test_bench_ablation_small_data_socket(benchmark):
    """The <16 KB socket path vs forcing everything through pipes."""

    def run():
        _, socket_on = run_variant("wc")
        _, socket_off = run_variant("wc", small_data_bytes=0.5)
        return socket_on.latency().mean_s, socket_off.latency().mean_s

    with_socket, without = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["mean_with_socket_s"] = with_socket
    benchmark.extra_info["mean_without_s"] = without
    # The socket path saves per-pipe setup for tiny data; it must never
    # hurt, and wc (tiny count results) should see a measurable win.
    assert with_socket <= without * 1.01
