"""Bench: regenerate Figure 11 (closed-loop peak throughput)."""

from conftest import column

SCALE = 0.35


def test_bench_fig11_throughput(run_figure):
    results = run_figure("fig11", SCALE)
    peaks = next(r for r in results if r.experiment_id == "fig11-peaks")

    ratios = {}
    for row in peaks.rows:
        bench = column(peaks, row, "bench")
        baseline = column(peaks, row, "baseline")
        ratios[(bench, baseline)] = column(peaks, row, "ratio")

    # DataFlower's peak throughput beats both baselines on every benchmark.
    for key, ratio in ratios.items():
        assert ratio > 1.0, f"{key}: ratio {ratio}"

    # The paper's ordering: wc (comm-heavy) gains the most vs FaaSFlow,
    # img (compute-heavy) the least.
    assert ratios[("wc", "faasflow")] > ratios[("img", "faasflow")]
    assert ratios[("wc", "faasflow")] > 2.0
    assert ratios[("img", "faasflow")] < 2.0
