"""Bench: replay engine throughput — streaming work-stealing vs baselines.

Two benches, each printing one machine-greppable ``BENCH {json}`` line
so the replay-throughput trajectory is tracked across commits
(``tools/bench_replay.py`` collects the points into
``BENCH_replay.json``):

``replay_throughput``
    Serial versus the streamed process-pool engine on a mildly skewed
    multi-tenant trace — the end-to-end scale-up number.
``replay_skew_stealing``
    The tentpole comparison: a deliberately skewed trace (one ``hot``
    tenant with ~10x any other tenant's events) replayed by the legacy
    static hash-batched engine (``stream=False``) versus the
    cell-granular work-stealing scheduler.  Static batching strands the
    hot tenant's shard with extra cells (``max_shard_events`` vs the
    steal-optimal ``max_cell_events`` is the deterministic headroom);
    work stealing starts the hot cell first and packs the rest around
    it.  Both engines must produce byte-identical merged reports.

Engine-vs-engine comparisons run each engine in a *fresh subprocess*
(``tools/bench_replay.py --engine``): within one process the second
engine's forked workers inherit the first run's heap (their first
collections traverse it, unsharing copy-on-write pages), and the RSS
high-water mark is monotonic — same-process comparison systematically
penalizes whichever engine runs second.

Assertions scale with the cores actually available — on a single-core
runner the comparisons only bound overhead, while at 4+ cores the
work-stealing engine must clear the 1.3x bar (the ISSUE's acceptance
criterion).  ``BENCH_REPLAY_SCALE`` scales trace duration (1.0 ~= 900
events; ~114 gives the 100k-event acceptance trace).
"""

import dataclasses
import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.loadgen.trace import InvocationTrace, synthesize_trace
from repro.parallel import ReplaySpec, partition_trace, run_parallel_replay

SCALE = float(os.environ.get("BENCH_REPLAY_SCALE", "1.0"))
SHARDS = 4
WORKERS = 4
SMALL_TENANTS = 24
SKEW_SEED = 7

_BENCH_TOOL = Path(__file__).resolve().parent.parent / "tools" / "bench_replay.py"


def make_skewed_trace(scale: float = None, small_tenants: int = SMALL_TENANTS,
                      seed: int = SKEW_SEED) -> InvocationTrace:
    """A deliberately skewed trace: ``small_tenants`` uniform tenants
    plus one ``hot`` tenant with ~10x any small tenant's event count."""
    if scale is None:
        scale = SCALE
    duration_s = 60.0 * scale
    smalls = synthesize_trace(
        tenants=small_tenants, duration_s=duration_s, mean_rpm=25.0,
        apps=["wc"], rate_sigma=0.0, seed=seed, name="skew-small",
    )
    hot = synthesize_trace(
        tenants=1, duration_s=duration_s, mean_rpm=250.0,
        apps=["wc"], rate_sigma=0.0, seed=seed + 1, name="skew-hot",
    )
    events = list(smalls.events) + [
        dataclasses.replace(event, tenant="hot") for event in hot.events
    ]
    return InvocationTrace(events=events, name="skew")


def throughput_point(scale: float = None) -> dict:
    """Serial vs streamed-parallel wall clock on a lognormal trace."""
    if scale is None:
        scale = SCALE
    trace = synthesize_trace(
        tenants=8, duration_s=90.0 * scale, mean_rpm=40.0,
        apps=["wc", "etl"], seed=7, name="bench-replay",
    )
    spec = ReplaySpec(default_app="wc")
    cores = os.cpu_count() or 1
    workers = min(WORKERS, cores)

    start = time.perf_counter()
    serial = run_parallel_replay(trace, spec, shards=1, workers=1)
    serial_wall = time.perf_counter() - start
    parallel = run_parallel_replay(trace, spec, shards=SHARDS, workers=workers)

    # Parallelism must never change results: merged reports are identical.
    assert parallel.to_dict() == serial.to_dict()
    assert len(parallel.completed) == len(trace)

    speedup = serial_wall / parallel.wall_s if parallel.wall_s > 0 else 0.0
    return {
        "bench": "replay_throughput",
        "events": len(trace),
        "tenants": 8,
        "shards": SHARDS,
        "workers": workers,
        "cpu_count": cores,
        "serial_wall_s": round(serial_wall, 4),
        "parallel_wall_s": round(parallel.wall_s, 4),
        "serial_events_per_s": round(len(trace) / serial_wall, 2),
        "parallel_events_per_s": round(parallel.events_per_s(), 2),
        "speedup": round(speedup, 3),
    }


def replay_skewed(stream: bool, scale: float = None, workers: int = WORKERS,
                  shards: int = SHARDS, record_sink=None):
    """One skew-bench engine run; returns the merged result."""
    trace = make_skewed_trace(scale)
    spec = ReplaySpec(default_app="wc", seed=1, record_sink=record_sink)
    return run_parallel_replay(
        trace, spec, shards=shards, workers=workers, stream=stream
    )


def engine_subprocess(engine: str, scale: float = None,
                      workers: int = WORKERS, shards: int = SHARDS,
                      record_sink: str = "memory") -> dict:
    """Run one engine configuration in a fresh interpreter.

    Returns the ``tools/bench_replay.py --engine`` result dict: events,
    isolated wall clock and parent peak RSS, and the SHA-256 of the
    canonical report rendering — identity across configurations is
    checked by hash, so the subprocess boundary never weakens the
    byte-identity assertion.
    """
    if scale is None:
        scale = SCALE
    command = [
        sys.executable, str(_BENCH_TOOL), "--engine", engine,
        "--scale", str(scale), "--workers", str(workers),
        "--shards", str(shards),
    ]
    if record_sink != "memory":
        command += ["--record-sink", record_sink]
    out = subprocess.run(command, capture_output=True, text=True, check=True)
    return json.loads(out.stdout.strip().splitlines()[-1])


def skew_point(scale: float = None, workers: int = WORKERS) -> dict:
    """Static-batched vs work-stealing on the skewed trace, one point.

    Each engine runs in a fresh subprocess (see the module docstring) —
    the wall clocks and RSS marks are clean per-engine measurements,
    and report identity is checked via the canonical rendering's
    SHA-256 across the process boundary.
    """
    trace = make_skewed_trace(scale)
    cores = os.cpu_count() or 1
    batches = partition_trace(trace, SHARDS)
    shard_loads = [sum(len(cell) for _, cell in batch) for batch in batches]
    cell_loads = [len(cell) for batch in batches for _, cell in batch]
    hot_events = sum(1 for e in trace.events if e.tenant == "hot")
    tenants = len(trace.tenants())
    del batches

    batched = engine_subprocess("batched", scale, workers)
    streamed = engine_subprocess("streamed", scale, workers)
    identical = batched["report_sha256"] == streamed["report_sha256"]
    speedup = (
        batched["wall_s"] / streamed["wall_s"]
        if streamed["wall_s"] > 0 else 0.0
    )
    return {
        "bench": "replay_skew_stealing",
        "events": len(trace),
        "tenants": tenants,
        "hot_events": hot_events,
        "shards": SHARDS,
        "workers": workers,
        "cpu_count": cores,
        # Deterministic imbalance: the busiest static shard vs the
        # busiest single cell (= the steal-optimal critical path).
        "max_shard_events": max(shard_loads),
        "max_cell_events": max(cell_loads),
        "batched_wall_s": batched["wall_s"],
        "streamed_wall_s": streamed["wall_s"],
        "batched_events_per_s": round(
            len(trace) / batched["wall_s"] if batched["wall_s"] > 0 else 0.0,
            2,
        ),
        "streamed_events_per_s": round(
            len(trace) / streamed["wall_s"]
            if streamed["wall_s"] > 0 else 0.0,
            2,
        ),
        "batched_max_rss_mb": batched["max_rss_mb"],
        "streamed_max_rss_mb": streamed["max_rss_mb"],
        "speedup": round(speedup, 3),
        "identical": identical,
    }


def multicore_point(scale: float = None,
                    configs=((1, 1), (2, 2), (4, 4))) -> dict:
    """Shards×workers sweep, both engines, each in a fresh subprocess.

    One point with a ``sweep`` row per ``(shards, workers)`` pair; the
    report SHA-256 must be identical across every engine and
    configuration — the sweep doubles as the shard/worker-invariance
    check at benchmark scale.
    """
    cores = os.cpu_count() or 1
    rows = []
    hashes = set()
    events = None
    for shards, workers in configs:
        batched = engine_subprocess("batched", scale, workers, shards)
        streamed = engine_subprocess("streamed", scale, workers, shards)
        hashes.update((batched["report_sha256"], streamed["report_sha256"]))
        events = streamed["events"]
        rows.append({
            "shards": shards,
            "workers": workers,
            "batched_wall_s": batched["wall_s"],
            "streamed_wall_s": streamed["wall_s"],
            "batched_max_rss_mb": batched["max_rss_mb"],
            "streamed_max_rss_mb": streamed["max_rss_mb"],
        })
    point = {
        "bench": "replay_multicore",
        "events": events,
        "cpu_count": cores,
        "sweep": rows,
        "identical": len(hashes) == 1,
    }
    assert point["identical"], point
    return point


def spill_point(scale: float = None, workers: int = WORKERS) -> dict:
    """Streamed-engine parent peak RSS: in-memory vs disk-spill sink.

    Both runs are fresh subprocesses over the same skewed trace; the
    reports must be byte-identical (SHA-256 of the canonical
    rendering).  At acceptance scale (>= 50k events) the spill sink
    must hold parent peak RSS strictly below the in-memory sink's —
    the CI gate that keeps "bounded memory" honest.
    """
    memory = engine_subprocess("streamed", scale, workers)
    spill = engine_subprocess(
        "streamed", scale, workers, record_sink="spill"
    )
    point = {
        "bench": "replay_spill_rss",
        "events": memory["events"],
        "workers": workers,
        "cpu_count": os.cpu_count() or 1,
        "memory_sink_wall_s": memory["wall_s"],
        "spill_sink_wall_s": spill["wall_s"],
        "memory_sink_max_rss_mb": memory["max_rss_mb"],
        "spill_sink_max_rss_mb": spill["max_rss_mb"],
        "identical": memory["report_sha256"] == spill["report_sha256"],
    }
    assert point["identical"], point
    if point["events"] >= 50_000:
        assert (
            point["spill_sink_max_rss_mb"]
            < point["memory_sink_max_rss_mb"]
        ), point
    return point


def test_bench_replay_throughput(benchmark):
    point = benchmark.pedantic(throughput_point, rounds=1, iterations=1)
    print("BENCH " + json.dumps(point, sort_keys=True))
    benchmark.extra_info.update(point)

    cores = point["cpu_count"]
    if cores >= 4:
        assert point["speedup"] > 1.5, point
    elif cores >= 2:
        assert point["speedup"] > 1.1, point
    else:
        # Single core: no speedup possible; bound the pool overhead.
        assert point["parallel_wall_s"] < point["serial_wall_s"] * 3.0, point


def test_bench_replay_skew_stealing(benchmark):
    point = benchmark.pedantic(skew_point, rounds=1, iterations=1)
    print("BENCH " + json.dumps(point, sort_keys=True))
    benchmark.extra_info.update(point)

    # Scheduling must never leak into results, at any core count.
    assert point["identical"], point
    # The skew must be real, or the comparison measures nothing: the
    # busiest static shard carries the hot cell plus strays.
    assert point["max_cell_events"] * 1.5 < point["max_shard_events"], point
    cores = point["cpu_count"]
    if cores >= 4:
        # The ISSUE acceptance bar: work stealing beats static batching
        # by >= 1.3x on the skewed trace at 4 workers.
        assert point["speedup"] >= 1.3, point
    elif cores >= 2:
        assert point["speedup"] >= 1.1, point
    else:
        # Single core: same work either way; bound scheduling overhead.
        assert point["streamed_wall_s"] < point["batched_wall_s"] * 1.5, point
