"""Bench: sharded replay wall-clock throughput at 1 and N workers.

Times the :mod:`repro.parallel` engine on a synthesized multi-tenant
trace, serial versus a 4-shard process-pool run, and prints one
machine-greppable ``BENCH {json}`` line so the replay-throughput
trajectory is tracked across commits.  The speedup assertion scales
with the cores actually available — on a single-core CI runner the
parallel run only has to stay within overhead bounds, while on 4+
cores it must clear the 1.5x bar.
"""

import json
import os
import time

from repro.loadgen.trace import synthesize_trace
from repro.parallel import ReplaySpec, run_parallel_replay

TENANTS = 8
DURATION_S = 90.0
MEAN_RPM = 40.0
SHARDS = 4


def test_bench_replay_throughput(benchmark):
    trace = synthesize_trace(
        tenants=TENANTS,
        duration_s=DURATION_S,
        mean_rpm=MEAN_RPM,
        apps=["wc", "etl"],
        seed=7,
        name="bench-replay",
    )
    spec = ReplaySpec(default_app="wc")
    cores = os.cpu_count() or 1
    workers = min(SHARDS, cores)

    start = time.perf_counter()
    serial = run_parallel_replay(trace, spec, shards=1, workers=1)
    serial_wall = time.perf_counter() - start

    parallel = benchmark.pedantic(
        run_parallel_replay,
        args=(trace, spec),
        kwargs={"shards": SHARDS, "workers": workers},
        rounds=1,
        iterations=1,
    )

    # Parallelism must never change results: merged reports are identical.
    assert parallel.to_dict() == serial.to_dict()
    assert len(parallel.completed) == len(trace)

    speedup = serial_wall / parallel.wall_s if parallel.wall_s > 0 else 0.0
    point = {
        "bench": "replay_throughput",
        "events": len(trace),
        "tenants": TENANTS,
        "shards": SHARDS,
        "workers": workers,
        "cpu_count": cores,
        "serial_wall_s": round(serial_wall, 4),
        "parallel_wall_s": round(parallel.wall_s, 4),
        "serial_events_per_s": round(len(trace) / serial_wall, 2),
        "parallel_events_per_s": round(parallel.events_per_s(), 2),
        "speedup": round(speedup, 3),
    }
    print("BENCH " + json.dumps(point, sort_keys=True))
    benchmark.extra_info.update(point)

    if cores >= 4:
        assert speedup > 1.5, f"expected >1.5x at {workers} workers: {point}"
    elif cores >= 2:
        assert speedup > 1.1, f"expected >1.1x at {workers} workers: {point}"
    else:
        # Single core: no speedup possible; bound the pool overhead.
        assert parallel.wall_s < serial_wall * 3.0, point
