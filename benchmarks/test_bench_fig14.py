"""Bench: regenerate Figure 14 (host cache usage for intermediate data)."""

from conftest import column

SCALE = 0.4


def test_bench_fig14_cache_usage(run_figure):
    results = run_figure("fig14", SCALE)
    reduction = next(r for r in results if r.experiment_id == "fig14-reduction")

    for row in reduction.rows:
        bench = column(reduction, row, "bench")
        flower = column(reduction, row, "dataflower_mbs")
        faasflow = column(reduction, row, "faasflow_mbs")
        pct = column(reduction, row, "reduction_pct")
        # Proactive release + passive expire always beat request-lifetime
        # caching, substantially so (paper: 19.1% .. 97.5%).
        assert flower < faasflow, bench
        assert pct > 15.0, f"{bench}: only {pct:.1f}% reduction"
