"""Experiment registry: every paper figure, one runnable entry."""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence

from ..metrics.report import render_table


@dataclass
class ExperimentResult:
    """A reproduced figure/table: rows ready to print and compare."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]]
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        parts = [
            render_table(self.headers, self.rows,
                         title=f"{self.experiment_id}: {self.title}")
        ]
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def to_csv(self) -> str:
        """The table as CSV (header row first), for downstream plotting."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buffer.getvalue()


#: experiment id -> module path (module must expose ``run(scale=1.0)``).
_MODULES: Dict[str, str] = {
    "fig2": "repro.experiments.fig02_characterization",
    "fig10": "repro.experiments.fig10_latency_memory",
    "fig11": "repro.experiments.fig11_throughput",
    "fig12": "repro.experiments.fig12_pressure_ablation",
    "fig13": "repro.experiments.fig13_trigger_timeline",
    "fig14": "repro.experiments.fig14_cache_usage",
    "fig15": "repro.experiments.fig15_bursty",
    "fig16": "repro.experiments.fig16_adaptiveness",
    "fig17": "repro.experiments.fig17_scaleup",
    "fig18": "repro.experiments.fig18_colocation",
    "fig19": "repro.experiments.fig19_stateful",
    "scale-replay": "repro.experiments.scale_replay",
}


def experiment_ids() -> List[str]:
    return list(_MODULES)


def run_experiment(experiment_id: str, scale: float = 1.0) -> List[ExperimentResult]:
    """Run one experiment; returns its result tables.

    ``scale`` in (0, 1] shrinks durations and sweep grids proportionally
    (used by the pytest-benchmark harness); 1.0 is the full figure.
    """
    if experiment_id not in _MODULES:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; choose from {experiment_ids()}"
        )
    if not 0 < scale <= 1:
        raise ValueError("scale must lie in (0, 1]")
    module = importlib.import_module(_MODULES[experiment_id])
    results = module.run(scale=scale)
    if isinstance(results, ExperimentResult):
        results = [results]
    return results


def subsample(grid: Sequence, scale: float, minimum: int = 2) -> List:
    """Pick a scale-proportional subset of a sweep grid (ends included)."""
    grid = list(grid)
    if scale >= 1.0 or len(grid) <= minimum:
        return grid
    count = max(minimum, round(len(grid) * scale))
    if count >= len(grid):
        return grid
    step = (len(grid) - 1) / (count - 1)
    indices = sorted({round(i * step) for i in range(count)})
    return [grid[i] for i in indices]
