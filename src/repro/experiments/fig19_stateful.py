"""Figure 19: integrating with stateful functions.

Compares function-to-function data transfer time under (a) a traditional
state-machine orchestration — every output ships to the orchestrator's
context object and is forwarded to the next function (AWS Step Functions
semantics with an unlimited-size cache on EC2) — and (b) the same
benchmarks with DataFlower's streaming pipe connectors.  Paper headline:
the pipe connector cuts function-to-function transfer time by up to
47.6%; overlap and early triggering are unaffected by statefulness.
"""

from __future__ import annotations

from typing import List

from ..apps import APP_ORDER, get_app
from ..workflow.instance import RequestSpec
from .common import make_setup, warm_up
from .registry import ExperimentResult

EXPERIMENT_ID = "fig19"
TITLE = "Stateful functions: state-machine vs DataFlower streaming"


def _state_machine_comm(app_name: str) -> float:
    """Total context-object transfer seconds for one warm request."""
    setup = make_setup(
        "production", app_name, system_overrides={"state_machine_data": True}
    )
    warm_up(setup)
    app = get_app(app_name)
    request = RequestSpec(
        request_id=setup.system.next_request_id(app_name),
        input_bytes=app.default_input_bytes,
        fanout=app.default_fanout,
    )
    done = setup.system.submit(setup.workflow_names[0], request)
    record = setup.env.run(until=done)
    # Inter-function communication: every Get except the entry's user
    # input, plus every Put (outputs return through the state machine).
    total = 0.0
    entry_function = setup.system.deployment(
        setup.workflow_names[0]
    ).workflow.entry
    for task in record.tasks:
        if task.function != entry_function:
            total += task.get_s
        total += task.put_s
    return total


def _dataflower_comm(app_name: str) -> float:
    """Total pipe-connector transport seconds for one warm request."""
    setup = make_setup("dataflower", app_name)
    warm_up(setup)
    setup.system.router.record_log = True
    app = get_app(app_name)
    request = RequestSpec(
        request_id=setup.system.next_request_id(app_name),
        input_bytes=app.default_input_bytes,
        fanout=app.default_fanout,
    )
    done = setup.system.submit(setup.workflow_names[0], request)
    setup.env.run(until=done)
    return sum(duration for _, _, _, duration in setup.system.router.push_log)


def run(scale: float = 1.0) -> List[ExperimentResult]:
    rows = []
    for app_name in APP_ORDER:
        state_machine_ms = 1000.0 * _state_machine_comm(app_name)
        dataflower_ms = 1000.0 * _dataflower_comm(app_name)
        reduction = (
            100.0 * (1 - dataflower_ms / state_machine_ms)
            if state_machine_ms > 0
            else 0.0
        )
        rows.append([app_name, state_machine_ms, dataflower_ms, reduction])
    return [
        ExperimentResult(
            EXPERIMENT_ID,
            TITLE,
            ["bench", "state_machine_ms", "dataflower_ms", "reduction_pct"],
            rows,
            notes=["paper: pipe connector cuts transfer time by up to 47.6%"],
        )
    ]
