"""Figure 15: handling a bursty load surge.

wc's offered load jumps from 10 rpm to 100 rpm (110 requests over two
minutes, asynchronous invocations).  The experiment reports the latency
CDF and standard deviation per system.  Paper observations: DataFlower
and FaaSFlow absorb the burst better than SONIC; DataFlower has the
lowest average and 99%-ile latency and a small sigma (paper sigmas:
DataFlower 0.053, FaaSFlow 0.050, SONIC 0.155) because
compute/communication overlap lets each container absorb more requests,
so fewer cold containers must be scaled out.
"""

from __future__ import annotations

from typing import List

from ..loadgen.arrivals import burst
from ..metrics.stats import cdf_at
from .common import COMPARED_SYSTEMS, open_loop_run
from .registry import ExperimentResult

EXPERIMENT_ID = "fig15"
TITLE = "Bursty load (wc, 10 rpm -> 100 rpm)"

BASE_RPM = 10
BURST_RPM = 100
SEGMENT_S = 60.0


def run(scale: float = 1.0) -> List[ExperimentResult]:
    segment = max(20.0, SEGMENT_S * scale)
    rows = []
    cdf_rows = []
    for system_name in COMPARED_SYSTEMS:
        result = open_loop_run(
            system_name,
            "wc",
            burst(BASE_RPM, BURST_RPM, segment, segment),
        )
        latency = result.latency()
        latencies = [r.latency for r in result.completed]
        rows.append(
            [
                system_name,
                result.offered,
                latency.mean_s,
                latency.p99_s,
                latency.sigma_s,
                len(result.failed),
            ]
        )
        for threshold in [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0]:
            cdf_rows.append(
                [system_name, threshold, 100.0 * cdf_at(latencies, threshold)]
            )
    return [
        ExperimentResult(
            EXPERIMENT_ID,
            TITLE,
            ["system", "requests", "mean_s", "p99_s", "sigma", "failed"],
            rows,
            notes=["paper sigma: DataFlower 0.053, FaaSFlow 0.050, SONIC 0.155"],
        ),
        ExperimentResult(
            "fig15-cdf",
            "Latency CDF points",
            ["system", "latency_s", "cdf_pct"],
            cdf_rows,
        ),
    ]
