"""Figure 14: host memory used for caching intermediate data.

DataFlower's Wait-Match Memory (proactive release + passive expire)
against FaaSFlow's request-lifetime local cache, per request, across
closed-loop client counts.  Paper headline: DataFlower reduces the cache
integral by 19.1% (img), 90.2% (vid), 94.9% (svd), 97.5% (wc).
"""

from __future__ import annotations

from typing import List

from .common import closed_loop_run
from .registry import ExperimentResult, subsample

EXPERIMENT_ID = "fig14"
TITLE = "Host cache usage for intermediate data (MB*s per request)"

CLIENTS = [1, 2, 4, 8]
DURATION_S = 40.0
#: FaaSFlow only caches data for co-located function pairs; to compare
#: cache lifetimes on equal traffic both systems run single-node here,
#: where every intermediate datum is locally cached by both designs.
PLACEMENT = "single_node"


def run(scale: float = 1.0) -> List[ExperimentResult]:
    duration = max(15.0, DURATION_S * scale)
    rows = []
    reductions = []
    for app_name in ["img", "vid", "svd", "wc"]:
        per_system = {}
        for clients in subsample(CLIENTS, scale):
            for system_name in ["dataflower", "faasflow"]:
                from .common import make_setup
                from ..loadgen.runner import run_closed_loop

                setup = make_setup(system_name, app_name, placement=PLACEMENT)
                factory = setup.request_factory()
                result = run_closed_loop(
                    setup.system, setup.workflow_names[0], factory,
                    clients, duration,
                )
                cache = result.usage.cache_mbs_per_request
                per_system.setdefault(system_name, []).append(cache)
                rows.append([app_name, clients, system_name, cache,
                             len(result.failed)])
        mean = lambda xs: sum(xs) / len(xs)
        flower = mean(per_system["dataflower"])
        faasflow = mean(per_system["faasflow"])
        reduction = 100.0 * (1 - flower / faasflow) if faasflow > 0 else 0.0
        reductions.append([app_name, flower, faasflow, reduction])
    return [
        ExperimentResult(
            EXPERIMENT_ID,
            TITLE,
            ["bench", "clients", "system", "cache_mbs_per_req", "failed"],
            rows,
        ),
        ExperimentResult(
            "fig14-reduction",
            "Average cache reduction, DataFlower vs FaaSFlow",
            ["bench", "dataflower_mbs", "faasflow_mbs", "reduction_pct"],
            reductions,
            notes=["paper: img 19.1%, vid 90.2%, svd 94.9%, wc 97.5%"],
        ),
    ]
