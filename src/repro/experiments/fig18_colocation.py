"""Figure 18: co-locating all four benchmarks on the shared workers.

All four workflows deploy onto the same three workers (offset round-robin
so functions interleave across nodes) and run concurrently at increasing
asynchronous load: Solo (alone, baseline), then Low/Mid/High/Ultra
multipliers.  Paper observations: DataFlower has the shortest latency in
every co-location case; FaaSFlow and SONIC *fail* at Ultra load (no
efficient container scaling policy on overtaxed machines); no benchmark
degrades more than 2x vs Solo under DataFlower at high load.

A second table (``fig18-tenancy``) extends the co-location theme to
heterogeneous tenancy: two tenants from one trace replay on *different*
systems and placements via tenant profiles (``docs/tenancy.md``).
"""

from __future__ import annotations

from typing import Dict, List

from ..apps import APP_ORDER, get_app
from ..cluster.cluster import Cluster, ClusterConfig
from ..loadgen.arrivals import arrival_times, constant
from ..loadgen.runner import _guarded_submit
from ..metrics.stats import mean
from ..sim.environment import Environment
from ..systems.placement import offset_round_robin
from ..workflow.instance import RequestSpec
from .common import COMPARED_SYSTEMS, _CONFIG_CLASSES, _SYSTEM_CLASSES, open_loop_run
from .registry import ExperimentResult

EXPERIMENT_ID = "fig18"
TITLE = "Co-located benchmarks at increasing load"
TENANCY_ID = "fig18-tenancy"
TENANCY_TITLE = "Heterogeneous per-tenant replay (one trace, mixed systems)"

#: Per-benchmark offered load at the "Low" level (rpm).
BASE_RPM: Dict[str, float] = {"img": 10, "vid": 5, "svd": 10, "wc": 20}
LEVELS: Dict[str, float] = {"low": 1.0, "mid": 3.0, "high": 6.0, "ultra": 20.0}
DURATION_S = 60.0
TIMEOUT_S = 45.0


def _co_run(system_name: str, multiplier: float, duration: float):
    """Run all four benchmarks concurrently on one cluster."""
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    system = _SYSTEM_CLASSES[system_name](
        env, cluster, _CONFIG_CLASSES[system_name]()
    )
    for offset, app_name in enumerate(APP_ORDER):
        workflow = get_app(app_name).build()
        system.deploy(
            workflow, offset_round_robin(offset)(workflow, cluster.workers)
        )

    records_by_app: Dict[str, list] = {name: [] for name in APP_ORDER}
    guards = []

    def generate(app_name: str, workflow_name: str):
        app = get_app(app_name)
        times = arrival_times(
            constant(BASE_RPM[app_name] * multiplier, duration)
        )
        start = env.now
        for index, at in enumerate(times):
            delay = start + at - env.now
            if delay > 0:
                yield env.timeout(delay)
            request = RequestSpec(
                request_id=system.next_request_id(workflow_name),
                input_bytes=app.default_input_bytes,
                fanout=app.default_fanout,
            )
            record, guard = _guarded_submit(
                system, workflow_name, request, TIMEOUT_S
            )
            records_by_app[app_name].append(record)
            guards.append(guard)

    app_to_workflow = {
        "img": "imageproc", "vid": "video", "svd": "svd", "wc": "wordcount",
    }
    producers = [
        env.process(generate(app_name, app_to_workflow[app_name]))
        for app_name in APP_ORDER
    ]
    env.run(until=env.all_of(producers))
    if guards:
        env.run(until=env.all_of(guards))
    return records_by_app


def _tenancy_result(scale: float) -> ExperimentResult:
    """Two tenants from one trace replayed on different systems.

    The roadmap's multi-tenant item realized: one synthesized trace,
    tenant cells resolved through heterogeneous profiles (DataFlower vs
    FaaSFlow on different placements), merged into one report whose
    per-tenant sections are tagged with the profile used.
    """
    from ..loadgen.trace import synthesize_trace
    from ..parallel import ReplaySpec, TenantProfile, run_parallel_replay

    trace = synthesize_trace(
        tenants=2,
        duration_s=max(20.0, 45.0 * scale),
        mean_rpm=30.0,
        apps=["wc"],
        rate_sigma=0.0,
        seed=18,
        name="tenancy",
    )
    spec = ReplaySpec(
        default_app="wc",
        seed=18,
        tenant_profiles={
            "tenant0": TenantProfile(system="dataflower"),
            "tenant1": TenantProfile(system="faasflow", placement="offset:1"),
        },
    )
    report = run_parallel_replay(trace, spec, shards=2, workers=1).to_dict()
    rows = []
    for tenant, stats in sorted(report["tenants"].items()):
        profile = stats.get("profile", {})
        latency = stats.get("latency") or {}
        rows.append(
            [
                tenant,
                profile.get("system"),
                profile.get("placement"),
                stats["offered"],
                stats["completed"],
                latency.get("p50_s"),
                latency.get("p99_s"),
            ]
        )
    return ExperimentResult(
        TENANCY_ID,
        TENANCY_TITLE,
        ["tenant", "system", "placement", "offered", "completed",
         "p50_s", "p99_s"],
        rows,
        notes=[
            "one trace, per-tenant profiles (repro replay --tenant-config); "
            "merged report is bit-identical at any --shards/--workers",
        ],
    )


def run(scale: float = 1.0) -> List[ExperimentResult]:
    # Overload failures need time to develop: queues must outgrow the
    # request timeout, so the duration floor stays close to full scale.
    duration = max(40.0, DURATION_S * scale)
    rows = []
    solo_latency: Dict[tuple, float] = {}

    # Solo baselines: each benchmark alone at its Low rate.
    for system_name in COMPARED_SYSTEMS:
        for app_name in APP_ORDER:
            result = open_loop_run(
                system_name, app_name,
                constant(BASE_RPM[app_name], duration),
                timeout_s=TIMEOUT_S,
            )
            avg = (
                mean([r.latency for r in result.completed])
                if result.completed
                else float("nan")
            )
            solo_latency[(system_name, app_name)] = avg
            rows.append([app_name, "solo", system_name, avg, 0.0,
                         len(result.failed)])

    # Co-located levels (reduced scale keeps the two extremes).
    levels = (
        LEVELS
        if scale >= 0.5
        else {"low": LEVELS["low"], "ultra": LEVELS["ultra"]}
    )
    for level, multiplier in levels.items():
        for system_name in COMPARED_SYSTEMS:
            records_by_app = _co_run(system_name, multiplier, duration)
            for app_name in APP_ORDER:
                records = records_by_app[app_name]
                completed = [r for r in records if r.completed]
                failed = [r for r in records if r.failed]
                if completed:
                    avg = mean([r.latency for r in completed])
                    baseline = solo_latency[(system_name, app_name)]
                    degradation = avg / baseline if baseline > 0 else float("nan")
                else:
                    avg = float("nan")
                    degradation = float("nan")
                rows.append(
                    [app_name, level, system_name, avg, degradation, len(failed)]
                )

    return [
        ExperimentResult(
            EXPERIMENT_ID,
            TITLE,
            ["bench", "level", "system", "avg_latency_s", "vs_solo", "failed"],
            rows,
            notes=[
                "paper: DataFlower shortest in all cases; FaaSFlow/SONIC fail "
                "at Ultra; DataFlower degradation < 2x at high load",
            ],
        ),
        _tenancy_result(scale),
    ]
