"""Figure 10: E2E latency and memory usage under asynchronous invocations.

Open-loop rpm sweeps per benchmark; for each offered load and system the
experiment reports mean/p99 latency and the container-memory integral
(GB*s) per request.  Paper headline: DataFlower cuts p99 latency by
5.7–35.4% vs FaaSFlow and 8.9–29.2% vs SONIC, and container memory by
19.1–69.3% and 7.4–64.1% respectively.
"""

from __future__ import annotations

from typing import Dict, List

from ..loadgen.arrivals import constant
from .common import COMPARED_SYSTEMS, open_loop_run
from .registry import ExperimentResult, subsample

EXPERIMENT_ID = "fig10"
TITLE = "Async latency and memory vs offered load"

#: Offered-load grids from the paper's x-axes (requests per minute).
RPM_GRIDS: Dict[str, List[int]] = {
    "img": [10, 20, 40, 60, 80, 100, 120],
    "vid": [4, 8, 12, 16, 20, 40, 80],
    "svd": [10, 20, 40, 60, 80, 100],
    "wc": [10, 20, 40, 80, 160, 320, 640],
}

#: Enough runtime for meaningful percentiles without hour-long sims.
DURATION_S = 60.0


def run(scale: float = 1.0) -> List[ExperimentResult]:
    duration = max(20.0, DURATION_S * scale)
    rows = []
    for app_name, grid in RPM_GRIDS.items():
        for rpm in subsample(grid, scale):
            for system_name in COMPARED_SYSTEMS:
                result = open_loop_run(
                    system_name, app_name, constant(rpm, duration)
                )
                if result.completed:
                    latency = result.latency()
                    rows.append(
                        [
                            app_name,
                            rpm,
                            system_name,
                            latency.mean_s,
                            latency.p99_s,
                            result.usage.memory_gbs_per_request,
                            len(result.failed),
                        ]
                    )
                else:
                    rows.append(
                        [app_name, rpm, system_name, float("nan"),
                         float("nan"), float("nan"), len(result.failed)]
                    )
    return [
        ExperimentResult(
            EXPERIMENT_ID,
            TITLE,
            ["bench", "rpm", "system", "mean_s", "p99_s", "mem_gbs_per_req", "failed"],
            rows,
            notes=[
                "paper: DataFlower p99 -5.7..-35.4% vs FaaSFlow, -8.9..-29.2% vs SONIC",
                "paper: memory GB*s -19.1..-69.3% vs FaaSFlow, -7.4..-64.1% vs SONIC",
            ],
        )
    ]
