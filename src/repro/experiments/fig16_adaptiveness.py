"""Figure 16: adaptiveness to workflow structure and input size (wc).

(a) fan-out/fan-in branch sweep at fixed 4 MB input: DataFlower's
data-availability triggering exploits parallelism, so its advantage grows
with branch count (paper: +69.3% / +58.8% peak throughput vs
FaaSFlow/SONIC across branch counts).

(b) input-size sweep at fixed 4 branches: larger inputs shift the
bottleneck to CPU, shrinking the data-flow paradigm's edge (paper: +91.8%
vs FaaSFlow at 1 MB falling to +29.5% at 16 MB).
"""

from __future__ import annotations

from typing import List

from ..cluster.telemetry import MB
from .common import COMPARED_SYSTEMS, closed_loop_run
from .registry import ExperimentResult, subsample

EXPERIMENT_ID = "fig16"
TITLE = "wc adaptiveness: fan-out branches and input size"

BRANCH_GRID = [2, 4, 8, 12, 16]
SIZE_GRID_MB = [1, 2, 4, 8, 16]
CLIENTS = 8
DURATION_S = 40.0


def run(scale: float = 1.0) -> List[ExperimentResult]:
    duration = max(15.0, DURATION_S * scale)

    branch_rows = []
    for branches in subsample(BRANCH_GRID, scale):
        for system_name in COMPARED_SYSTEMS:
            result = closed_loop_run(
                system_name, "wc", CLIENTS, duration,
                input_bytes=4 * MB, fanout=branches,
            )
            latency = (
                result.latency().mean_s if result.completed else float("nan")
            )
            branch_rows.append(
                [branches, system_name, latency, result.throughput_rpm()]
            )

    size_rows = []
    for size_mb in subsample(SIZE_GRID_MB, scale):
        for system_name in COMPARED_SYSTEMS:
            result = closed_loop_run(
                system_name, "wc", CLIENTS, duration,
                input_bytes=size_mb * MB, fanout=4,
            )
            latency = (
                result.latency().mean_s if result.completed else float("nan")
            )
            size_rows.append(
                [size_mb, system_name, latency, result.throughput_rpm()]
            )

    return [
        ExperimentResult(
            "fig16a",
            "wc vs fan-out branches (input fixed at 4 MB)",
            ["branches", "system", "mean_latency_s", "throughput_rpm"],
            branch_rows,
            notes=["paper: DataFlower's edge grows with branch count"],
        ),
        ExperimentResult(
            "fig16b",
            "wc vs input size (4 branches)",
            ["input_mb", "system", "mean_latency_s", "throughput_rpm"],
            size_rows,
            notes=["paper: DataFlower's gain shrinks as input grows (CPU-bound)"],
        ),
    ]
