"""Figure 13: function-triggering timeline of wc on a single node.

All functions are forced onto one worker (so both DataFlower and FaaSFlow
pass data through local memory) and the input is pre-staged locally; one
warm request is then traced per system.  Paper observations: with
DataFlower, count triggers *before* start completes (streamed chunks) and
merge fires ~2 ms after count completes; FaaSFlow triggers count/merge
15/6 ms after predecessor completion; SONIC is later still because
function state crosses the local VM storage.
"""

from __future__ import annotations

from typing import List

from ..apps import get_app
from ..workflow.instance import RequestSpec
from .common import COMPARED_SYSTEMS, make_setup, warm_up
from .registry import ExperimentResult

EXPERIMENT_ID = "fig13"
TITLE = "wc trigger timeline on a single node (local memory)"


def run(scale: float = 1.0) -> List[ExperimentResult]:
    rows = []
    gap_rows = []
    app = get_app("wc")
    for system_name in COMPARED_SYSTEMS:
        setup = make_setup(
            system_name,
            "wc",
            placement="single_node",
            system_overrides={"input_local": True},
        )
        warm_up(setup)
        request = RequestSpec(
            request_id=setup.system.next_request_id("wc"),
            input_bytes=app.default_input_bytes,
            fanout=app.default_fanout,
        )
        done = setup.system.submit(setup.workflow_names[0], request)
        record = setup.env.run(until=done)
        base = record.submit_time
        by_function = {}
        for task in record.tasks:
            slot = by_function.setdefault(
                task.function, {"start": [], "end": [], "trigger": []}
            )
            slot["start"].append(task.exec_start - base)
            slot["end"].append(task.exec_end - base)
            slot["trigger"].append(task.trigger_time - base)
        for function in ["wordcount_start", "wordcount_count", "wordcount_merge"]:
            slot = by_function[function]
            rows.append(
                [
                    system_name,
                    function,
                    min(slot["trigger"]),
                    min(slot["start"]),
                    max(slot["end"]),
                ]
            )
        # Trigger gap: how long after its predecessor finished did each
        # function fire?
        start_end = max(by_function["wordcount_start"]["end"])
        count_trigger = min(by_function["wordcount_count"]["trigger"])
        count_end = max(by_function["wordcount_count"]["end"])
        merge_trigger = min(by_function["wordcount_merge"]["trigger"])
        gap_rows.append(
            [
                system_name,
                1000.0 * (count_trigger - start_end),
                1000.0 * (merge_trigger - count_end),
                record.latency,
            ]
        )
    return [
        ExperimentResult(
            EXPERIMENT_ID,
            TITLE,
            ["system", "function", "trigger_s", "exec_start_s", "exec_end_s"],
            rows,
        ),
        ExperimentResult(
            "fig13-gaps",
            "Trigger lag after predecessor completion (negative = early)",
            ["system", "count_lag_ms", "merge_lag_ms", "e2e_s"],
            gap_rows,
            notes=[
                "paper: DataFlower triggers count before start completes and "
                "merge 2 ms after count; FaaSFlow lags 15/6 ms; SONIC later",
            ],
        ),
    ]
