"""Figure 17: scaling containers *up* instead of out (wc, 8 branches).

Container memory sweeps 128–640 MB with CPU and bandwidth scaling
linearly (§9.1's proportional allocation).  Paper observations:
DataFlower and SONIC gain nearly linearly from bigger containers (direct
data passing gets faster with the bandwidth), while FaaSFlow barely
benefits — its bottleneck is the shared backend store, which scale-up
does not touch.  Paper: DataFlower beats FaaSFlow by 148.4% and SONIC by
11.1% at 640 MB.
"""

from __future__ import annotations

from typing import List

from ..cluster.telemetry import MB
from .common import COMPARED_SYSTEMS, closed_loop_run
from .registry import ExperimentResult, subsample

EXPERIMENT_ID = "fig17"
TITLE = "Scale-up: wc latency/throughput vs container memory"

MEMORY_GRID_MB = [128, 256, 384, 512, 640]
CLIENTS = 8
FANOUT = 8
DURATION_S = 40.0


def run(scale: float = 1.0) -> List[ExperimentResult]:
    duration = max(15.0, DURATION_S * scale)
    rows = []
    for memory_mb in subsample(MEMORY_GRID_MB, scale):
        for system_name in COMPARED_SYSTEMS:
            result = closed_loop_run(
                system_name, "wc", CLIENTS, duration,
                input_bytes=4 * MB, fanout=FANOUT,
                system_overrides={"container_memory_mb": memory_mb},
            )
            latency = (
                result.latency().mean_s if result.completed else float("nan")
            )
            rows.append(
                [memory_mb, system_name, latency, result.throughput_rpm()]
            )
    return [
        ExperimentResult(
            EXPERIMENT_ID,
            TITLE,
            ["container_mb", "system", "mean_latency_s", "throughput_rpm"],
            rows,
            notes=[
                "paper: FaaSFlow cannot exploit scale-up (backend store "
                "bottleneck); DataFlower +148.4% vs FaaSFlow at 640 MB",
            ],
        )
    ]
