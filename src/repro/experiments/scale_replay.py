"""Beyond-paper scale-up: sharded replay throughput vs worker count.

Replays one synthesized multi-tenant trace (Azure-trace-style skewed
Poisson arrivals, the shape DataFlower's §9 workloads and follow-ups
like DFlow/Triggerflow stress) through :mod:`repro.parallel` at a sweep
of shard/worker counts, measuring wall-clock replay throughput
(events/s) and the speedup over the serial path.  The merged simulated
metrics are asserted identical across the sweep — parallelism changes
wall-clock time only, never results.

On a single-core host the sweep shows process-pool overhead instead of
speedup; the table reports ``cpu_count`` so the trajectory is readable
either way.
"""

from __future__ import annotations

import os
from typing import List

from ..loadgen.trace import synthesize_trace
from ..parallel import ReplaySpec, run_parallel_replay
from .registry import ExperimentResult, subsample

EXPERIMENT_ID = "scale-replay"
TITLE = "Sharded replay: wall-clock throughput vs workers"

TENANTS = 8
DURATION_S = 120.0
MEAN_RPM = 40.0
APPS = ["wc", "etl"]
WORKER_GRID = [1, 2, 4]


def run(scale: float = 1.0) -> List[ExperimentResult]:
    trace = synthesize_trace(
        tenants=TENANTS,
        duration_s=max(20.0, DURATION_S * scale),
        mean_rpm=MEAN_RPM,
        apps=APPS,
        seed=7,
        name="scale-replay",
    )
    spec = ReplaySpec(default_app=APPS[0])
    rows = []
    serial_wall = None
    baseline_report = None
    for workers in subsample(WORKER_GRID, scale):
        result = run_parallel_replay(
            trace, spec, shards=workers, workers=workers
        )
        report = result.to_dict()
        if baseline_report is None:
            baseline_report = report
        elif report != baseline_report:  # pragma: no cover - determinism guard
            raise AssertionError(
                "sharded replay diverged from the serial report"
            )
        if serial_wall is None:
            serial_wall = result.wall_s
        rows.append(
            [
                workers,
                result.shards,
                result.cell_count,
                len(trace),
                result.wall_s,
                result.events_per_s(),
                serial_wall / result.wall_s if result.wall_s > 0 else 0.0,
                len(result.completed),
                report["latency"]["p99_s"] if report["latency"] else None,
            ]
        )
    return [
        ExperimentResult(
            EXPERIMENT_ID,
            TITLE,
            [
                "workers", "shards", "cells", "events", "wall_s",
                "events_per_s", "speedup", "completed", "p99_s",
            ],
            rows,
            notes=[
                f"host cpu_count={os.cpu_count()}; speedup is wall-clock "
                f"vs the 1-worker serial path",
                "merged simulated metrics are identical at every worker "
                "count (tenant-cell isolation; see docs/scaling.md)",
            ],
        )
    ]
