"""CLI for regenerating the paper's tables and figures."""

from __future__ import annotations

import argparse
import sys
import time

from .registry import experiment_ids, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate DataFlower paper figures on the simulator.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help=f"experiment id ({', '.join(experiment_ids())}) or 'all'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="shrink sweep grids and durations (0 < scale <= 1)",
    )
    parser.add_argument(
        "--csv-dir",
        default=None,
        help="also write each result table as <csv-dir>/<id>.csv",
    )
    args = parser.parse_args(argv)

    if not args.experiment:
        print("available experiments:")
        for experiment_id in experiment_ids():
            print(f"  {experiment_id}")
        return 0

    targets = (
        experiment_ids() if args.experiment == "all" else [args.experiment]
    )
    for experiment_id in targets:
        started = time.time()
        results = run_experiment(experiment_id, scale=args.scale)
        for result in results:
            print(result.render())
            print()
            if args.csv_dir:
                import pathlib

                directory = pathlib.Path(args.csv_dir)
                directory.mkdir(parents=True, exist_ok=True)
                path = directory / f"{result.experiment_id}.csv"
                path.write_text(result.to_csv())
                print(f"[wrote {path}]")
        print(f"[{experiment_id} done in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
