"""Experiment harness: one module per paper table/figure.

Run from the command line::

    python -m repro.experiments            # list experiments
    python -m repro.experiments fig11      # reproduce Figure 11
    python -m repro.experiments all --scale 0.3
"""

from .registry import ExperimentResult, experiment_ids, run_experiment, subsample

__all__ = ["ExperimentResult", "experiment_ids", "run_experiment", "subsample"]
