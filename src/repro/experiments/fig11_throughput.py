"""Figure 11: peak throughput under synchronous (closed-loop) invocations.

Client-count sweeps per benchmark.  Paper headline: DataFlower raises peak
throughput 1.03–3.8x over FaaSFlow and 1.29–2.42x over SONIC; throughput
saturates when CPU or network becomes the bottleneck; svd collapses under
SONIC at high client counts (its held source sandboxes starve consumers —
see EXPERIMENTS.md for how our substrate reproduces that failure mode).
"""

from __future__ import annotations

from typing import Dict, List

from .common import COMPARED_SYSTEMS, closed_loop_run
from .registry import ExperimentResult, subsample

EXPERIMENT_ID = "fig11"
TITLE = "Closed-loop peak throughput vs number of clients"

#: Client grids from the paper's x-axes.
CLIENT_GRIDS: Dict[str, List[int]] = {
    "img": [1, 2, 4, 6, 8, 10, 11],
    "vid": [1, 2, 4, 8, 16, 24, 32, 36],
    "svd": [1, 2, 4, 8, 12, 16, 20, 24],
    "wc": [1, 2, 4, 8, 16, 20, 24],
}

DURATION_S = 45.0


def run(scale: float = 1.0) -> List[ExperimentResult]:
    duration = max(15.0, DURATION_S * scale)
    rows = []
    peaks: Dict[tuple, float] = {}
    for app_name, grid in CLIENT_GRIDS.items():
        for clients in subsample(grid, scale):
            for system_name in COMPARED_SYSTEMS:
                result = closed_loop_run(
                    system_name, app_name, clients, duration
                )
                throughput = result.throughput_rpm()
                key = (app_name, system_name)
                peaks[key] = max(peaks.get(key, 0.0), throughput)
                rows.append(
                    [app_name, clients, system_name, throughput, len(result.failed)]
                )

    ratio_rows = []
    for app_name in CLIENT_GRIDS:
        dataflower = peaks.get((app_name, "dataflower"), 0.0)
        for baseline in ["faasflow", "sonic"]:
            base = peaks.get((app_name, baseline), 0.0)
            ratio = dataflower / base if base > 0 else float("nan")
            ratio_rows.append([app_name, baseline, base, dataflower, ratio])

    return [
        ExperimentResult(
            EXPERIMENT_ID,
            TITLE,
            ["bench", "clients", "system", "throughput_rpm", "failed"],
            rows,
        ),
        ExperimentResult(
            "fig11-peaks",
            "Peak throughput ratios (DataFlower over baseline)",
            ["bench", "baseline", "baseline_peak", "dataflower_peak", "ratio"],
            ratio_rows,
            notes=["paper: 1.03-3.8x vs FaaSFlow, 1.29-2.42x vs SONIC"],
        ),
    ]
