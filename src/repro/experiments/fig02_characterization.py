"""Figure 2: control-flow paradigm characterization on a production platform.

Reproduces the paper's §3.2 investigation on the centralized-orchestrator
system: (a) per-function communication/computation breakdown and average
end-to-end latency, (b) the sequential CPU/network resource-usage pattern
inside containers, (c) the function-triggering overhead of the control
plane (~63 ms average in the paper).
"""

from __future__ import annotations

from typing import List

from ..apps import APP_ORDER, get_app
from ..cluster.telemetry import overlap_seconds
from ..workflow.instance import RequestSpec
from .common import make_setup, warm_up
from .registry import ExperimentResult

EXPERIMENT_ID = "fig2"
TITLE = "Control-flow characterization on a production platform"


def _run_one(app_name: str, repeats: int):
    setup = make_setup("production", app_name)
    warm_up(setup)
    records = []
    for i in range(repeats):
        app = get_app(app_name)
        request = RequestSpec(
            request_id=setup.system.next_request_id(app_name),
            input_bytes=app.default_input_bytes,
            fanout=app.default_fanout,
        )
        done = setup.system.submit(setup.workflow_names[0], request)
        setup.env.run(until=done)
        records.append(setup.system.records[-1])
    return setup, records


def run(scale: float = 1.0) -> List[ExperimentResult]:
    repeats = max(1, round(3 * scale))
    breakdown_rows = []
    summary_rows = []
    usage_rows = []

    for app_name in APP_ORDER:
        setup, records = _run_one(app_name, repeats)

        # (a) Per-function comm/comp breakdown, averaged over runs.
        per_function = {}
        for record in records:
            for task in record.tasks:
                slot = per_function.setdefault(task.function, [0.0, 0.0, 0.0, 0])
                slot[0] += task.comm_s
                slot[1] += task.compute_s
                slot[2] += task.trigger_overhead
                slot[3] += 1
        total_comm = total_comp = total_trigger = 0.0
        for function, (comm, comp, trig, count) in per_function.items():
            comm, comp, trig = comm / count, comp / count, trig / count
            total_comm += comm
            total_comp += comp
            total_trigger += trig
            breakdown_rows.append(
                [
                    app_name,
                    function,
                    comm,
                    comp,
                    100.0 * comm / (comm + comp) if comm + comp > 0 else 0.0,
                ]
            )

        latencies = [r.latency for r in records]
        comm_share = 100.0 * total_comm / (total_comm + total_comp)
        summary_rows.append(
            [
                app_name,
                sum(latencies) / len(latencies),
                comm_share,
                1000.0 * total_trigger / max(len(per_function), 1),
            ]
        )

        # (b) Sequential resource usage: CPU and network busy time never
        # overlap inside a control-flow container.
        cpu_busy = net_busy = overlap = 0.0
        deployment = setup.system.deployment(setup.workflow_names[0])
        for dispatcher in deployment.dispatchers.values():
            for container in dispatcher.pool.containers:
                cpu = container.intervals.labelled("cpu")
                net = container.intervals.labelled("net")
                cpu_busy += sum(e - s for s, e in cpu)
                net_busy += sum(e - s for s, e in net)
                overlap += overlap_seconds(cpu, net)
        usage_rows.append([app_name, cpu_busy, net_busy, overlap])

    return [
        ExperimentResult(
            "fig2a",
            "Per-function communication vs computation (production platform)",
            ["bench", "function", "comm_s", "comp_s", "comm_pct"],
            breakdown_rows,
            notes=[
                "paper comm share of e2e: img 26.0%, vid 49.5%, svd 35.3%, wc 89.2%",
            ],
        ),
        ExperimentResult(
            "fig2a-e2e",
            "Average E2E latency and workflow-level communication share",
            ["bench", "avg_e2e_s", "comm_pct", "avg_trigger_ms_per_fn"],
            summary_rows,
            notes=["paper average trigger overhead: ~63 ms between functions"],
        ),
        ExperimentResult(
            "fig2b",
            "Sequential resource usage: CPU vs network busy seconds in containers",
            ["bench", "cpu_busy_s", "net_busy_s", "cpu_net_overlap_s"],
            usage_rows,
            notes=[
                "control-flow containers serialize Get/compute/Put: overlap ~= 0",
            ],
        ),
    ]
