"""Figure 12: effectiveness of pressure-aware function scaling.

DataFlower vs DataFlower-Non-aware (pressure scaling disabled) on
closed-loop client sweeps.  Paper observations: the two are nearly equal
on img (small intermediate data — the DLU never falls behind); for the
data-intensive vid/svd/wc the Non-aware variant's throughput is capped by
DLU queuing; platform-level scale-out partially masks the gap at some
client counts (the paper notes this for vid at 16–32 clients).
"""

from __future__ import annotations

from typing import Dict, List

from .common import closed_loop_run
from .fig11_throughput import CLIENT_GRIDS, DURATION_S
from .registry import ExperimentResult, subsample

EXPERIMENT_ID = "fig12"
TITLE = "Pressure-aware scaling ablation (DataFlower vs Non-aware)"

VARIANTS = {
    "dataflower": {},
    "non-aware": {"pressure_aware": False},
}


def run(scale: float = 1.0) -> List[ExperimentResult]:
    duration = max(15.0, DURATION_S * scale)
    rows = []
    peaks: Dict[tuple, float] = {}
    for app_name, grid in CLIENT_GRIDS.items():
        for clients in subsample(grid, scale):
            for variant, overrides in VARIANTS.items():
                result = closed_loop_run(
                    "dataflower", app_name, clients, duration,
                    system_overrides=overrides,
                )
                throughput = result.throughput_rpm()
                peaks[(app_name, variant)] = max(
                    peaks.get((app_name, variant), 0.0), throughput
                )
                rows.append(
                    [app_name, clients, variant, throughput, len(result.failed)]
                )

    summary = [
        [
            app_name,
            peaks[(app_name, "dataflower")],
            peaks[(app_name, "non-aware")],
            peaks[(app_name, "dataflower")]
            / max(peaks[(app_name, "non-aware")], 1e-9),
        ]
        for app_name in CLIENT_GRIDS
    ]
    return [
        ExperimentResult(
            EXPERIMENT_ID,
            TITLE,
            ["bench", "clients", "variant", "throughput_rpm", "failed"],
            rows,
        ),
        ExperimentResult(
            "fig12-peaks",
            "Peak throughput: pressure-aware gain",
            ["bench", "aware_peak", "non_aware_peak", "gain"],
            summary,
            notes=["paper: img nearly equal; vid/svd/wc constrained without it"],
        ),
    ]
