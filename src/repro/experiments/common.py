"""Shared experiment plumbing: system registry, canonical setups, runners.

This module is the single place that knows how to assemble a world:
:data:`SYSTEM_CLASSES` and :data:`CONFIG_CLASSES` map system names to
implementations, and :func:`make_setup` builds a fresh environment,
cluster, system, and deployed benchmark(s) from names alone.  Every
figure script *and* the ``repro`` CLI go through it, so all entry points
see identical clusters, placements, and request streams.

:func:`closed_loop_run` / :func:`open_loop_run` wrap the loadgen runners
with a one-call setup for sweep loops.  The experiments' ``scale``
parameter shrinks run durations so the pytest-benchmark harness stays
tractable; experiment *shape* is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Type

from ..apps import get_app
from ..cluster.cluster import Cluster, ClusterConfig
from ..core.config import DataFlowerConfig
from ..core.system import DataFlowerSystem
from ..loadgen.runner import (
    RunResult,
    default_request_factory,
    run_closed_loop,
    run_open_loop,
)
from ..loadgen.arrivals import RateSegment, constant
from ..sim.environment import Environment
from ..systems.base import SystemConfig, WorkflowSystem
from ..systems.faasflow import FaasFlowConfig, FaasFlowSystem
from ..systems.placement import get_policy
from ..systems.production import ProductionConfig, ProductionSystem
from ..systems.sonic import SonicConfig, SonicSystem
from ..workflow.instance import RequestSpec

#: The three systems compared throughout §9.
COMPARED_SYSTEMS = ["dataflower", "faasflow", "sonic"]

#: Every runnable system by name (the ``--system`` registry).
SYSTEM_CLASSES: Dict[str, Type[WorkflowSystem]] = {
    "dataflower": DataFlowerSystem,
    "faasflow": FaasFlowSystem,
    "sonic": SonicSystem,
    "production": ProductionSystem,
}

#: The matching config class per system name.
CONFIG_CLASSES: Dict[str, Type[SystemConfig]] = {
    "dataflower": DataFlowerConfig,
    "faasflow": FaasFlowConfig,
    "sonic": SonicConfig,
    "production": ProductionConfig,
}

# Backwards-compatible aliases (pre-CLI private names).
_SYSTEM_CLASSES = SYSTEM_CLASSES
_CONFIG_CLASSES = CONFIG_CLASSES


def system_names() -> List[str]:
    """Every registered system name, DataFlower first."""
    return list(SYSTEM_CLASSES)


@dataclass
class Setup:
    """One freshly built world: env + cluster + system + app."""

    env: Environment
    cluster: Cluster
    system: WorkflowSystem
    app_name: str
    workflow_names: List[str] = field(default_factory=list)

    def request_factory(
        self,
        workflow_name: Optional[str] = None,
        input_bytes: Optional[float] = None,
        fanout: Optional[int] = None,
    ):
        app = get_app(self.app_name)
        return default_request_factory(
            self.system,
            workflow_name or self.workflow_names[0],
            input_bytes if input_bytes is not None else app.default_input_bytes,
            fanout if fanout is not None else app.default_fanout,
        )


def make_setup(
    system_name: str,
    app_name: str,
    cluster_config: ClusterConfig = ClusterConfig(),
    system_overrides: Optional[dict] = None,
    placement: str = "round_robin",
    apps: Optional[Sequence[str]] = None,
) -> Setup:
    """Build a fresh environment with one or more deployed benchmarks."""
    env = Environment()
    cluster = Cluster(env, cluster_config)
    config_cls = CONFIG_CLASSES[system_name]
    config = config_cls(**(system_overrides or {}))
    system = SYSTEM_CLASSES[system_name](env, cluster, config)
    place = get_policy(placement)

    setup = Setup(env=env, cluster=cluster, system=system, app_name=app_name)
    for name in apps or [app_name]:
        workflow = get_app(name).build()
        system.deploy(workflow, place(workflow, cluster.workers))
        setup.workflow_names.append(workflow.name)
    return setup


def warm_up(setup: Setup, workflow_name: Optional[str] = None,
            fanout: Optional[int] = None, input_bytes: Optional[float] = None) -> None:
    """Run one request to completion so pools are warm (cold starts out)."""
    app = get_app(setup.app_name)
    name = workflow_name or setup.workflow_names[0]
    request = RequestSpec(
        request_id=setup.system.next_request_id(name),
        input_bytes=input_bytes if input_bytes is not None else app.default_input_bytes,
        fanout=fanout or app.default_fanout,
    )
    done = setup.system.submit(name, request)
    setup.env.run(until=done)
    # Forget the warm-up request in the record stream.
    setup.system.records.clear()


def closed_loop_run(
    system_name: str,
    app_name: str,
    clients: int,
    duration_s: float,
    timeout_s: float = 60.0,
    input_bytes: Optional[float] = None,
    fanout: Optional[int] = None,
    system_overrides: Optional[dict] = None,
    cluster_config: ClusterConfig = ClusterConfig(),
) -> RunResult:
    setup = make_setup(system_name, app_name, cluster_config, system_overrides)
    factory = setup.request_factory(input_bytes=input_bytes, fanout=fanout)
    return run_closed_loop(
        setup.system, setup.workflow_names[0], factory, clients, duration_s,
        timeout_s=timeout_s,
    )


def open_loop_run(
    system_name: str,
    app_name: str,
    schedule: Sequence[RateSegment],
    timeout_s: float = 60.0,
    input_bytes: Optional[float] = None,
    fanout: Optional[int] = None,
    system_overrides: Optional[dict] = None,
    cluster_config: ClusterConfig = ClusterConfig(),
    poisson: bool = False,
) -> RunResult:
    setup = make_setup(system_name, app_name, cluster_config, system_overrides)
    factory = setup.request_factory(input_bytes=input_bytes, fanout=fanout)
    return run_open_loop(
        setup.system, setup.workflow_names[0], factory, schedule,
        timeout_s=timeout_s, poisson=poisson,
    )
