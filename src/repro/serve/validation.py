"""Fail-fast validation of ``POST /v1/runs`` request bodies.

Everything a run request can get wrong dies *here*, at submission time,
as a :class:`BadRequest` the HTTP layer maps to ``400`` — never inside a
job worker thread or a replay worker process.  The checks mirror the
CLI's exactly: registries for apps/systems/placements, the engine's
app-resolution precondition, and — for inline ``tenant_config`` bodies —
the same named-tenant errors ``repro replay --tenant-config`` emits,
via :func:`repro.parallel.profiles.validated_tenant_config`.

A validated request becomes a :class:`RunRequest`: the
:class:`~repro.loadgen.trace.InvocationTrace` to replay, the
:class:`~repro.parallel.spec.ReplaySpec` built exactly the way the CLI
builds it (so a served run's report is byte-identical to the same seed
replayed via ``repro replay``), and the scheduling knobs (``workers``,
``stream``) that never affect the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..loadgen.trace import InvocationTrace, synthesize_trace
from ..parallel.engine import ON_CELL_FAILURE_MODES
from ..parallel.profiles import TenantConfig, TenantProfileError
from ..parallel.resilience import HostFaultPlan, RetryPolicy
from ..parallel.spec import ReplaySpec
from ..workflow.dsl import parse_size

__all__ = ["BadRequest", "RunRequest", "parse_run_request"]


class BadRequest(ValueError):
    """A malformed run request; the HTTP layer answers 400 with this."""


#: The ``POST /v1/runs`` body schema (``docs/serve.md``).
_REQUEST_KEYS = {
    "app",
    "system",
    "placement",
    "seed",
    "timeout_s",
    "input_bytes",
    "fanout",
    "trace",
    "synth",
    "tenant_config",
    "workers",
    "stream",
    "record_sink",
    "max_records_in_memory",
    "tenant",
    "retry",
    "faults",
    "on_cell_failure",
}

#: Keyword arguments a ``synth`` body may forward to
#: :func:`~repro.loadgen.trace.synthesize_trace`.
_SYNTH_KEYS = {
    "tenants",
    "duration_s",
    "mean_rpm",
    "apps",
    "rate_sigma",
    "size_jitter",
    "input_bytes",
    "seed",
    "name",
}

_DEFAULT_TIMEOUT_S = 60.0


@dataclass
class RunRequest:
    """One validated run, ready for a job worker to execute."""

    trace: InvocationTrace
    spec: ReplaySpec
    #: Replay-engine worker processes (1 = in-process serial fold), or
    #: the string ``"remote"``: cells execute on the registered
    #: ``repro worker`` fleet via the lease queue (``docs/workers.md``).
    workers: Union[int, str] = 1
    #: Streaming work-stealing scheduler vs the static batched engine.
    stream: bool = True
    #: Who submitted the run (admission-control identity; free-form).
    tenant: Optional[str] = None
    #: The submitting tenant's concurrent-run quota, resolved from the
    #: tenant config (``None`` = unlimited).
    max_concurrent_runs: Optional[int] = None
    #: Per-cell retry/deadline policy (``None`` = engine default).
    retry: Optional[RetryPolicy] = None
    #: Deterministic fault injection (tests/chaos only).
    faults: Optional[HostFaultPlan] = None
    #: ``"fail"`` aborts on an exhausted cell; ``"skip"`` degrades.
    on_cell_failure: str = "fail"
    #: The echo of the submitted parameters (listings and audits).
    summary: dict = field(default_factory=dict)
    #: The original request body, verbatim — what the durable run
    #: journal persists so a recovering server can re-validate the run
    #: through this very parser and resume it.
    payload: Optional[dict] = None


def _type_error(key: str, expected: str, value) -> BadRequest:
    return BadRequest(
        f"{key!r} must be {expected}, got {type(value).__name__} ({value!r})"
    )


def _opt_number(payload: dict, key: str, minimum: Optional[float] = None):
    value = payload.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _type_error(key, "a number", value)
    if minimum is not None and value < minimum:
        raise BadRequest(f"{key!r} must be >= {minimum:g}, got {value!r}")
    return value


def _opt_int(payload: dict, key: str, minimum: int):
    value = payload.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise _type_error(key, "an integer", value)
    if value < minimum:
        raise BadRequest(f"{key!r} must be >= {minimum}, got {value!r}")
    return value


def _opt_size(payload: dict, key: str):
    """An input size: a number of bytes or a ``"4MB"``-style string."""
    value = payload.get(key)
    if value is None:
        return None
    if isinstance(value, str):
        try:
            return parse_size(value)
        except ValueError as exc:
            raise BadRequest(f"{key!r}: {exc}") from None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _type_error(key, "a size (number or '4MB'-style string)", value)
    if value < 0:
        raise BadRequest(f"{key!r} must be non-negative, got {value!r}")
    return float(value)


def _check_app(name: str) -> None:
    from ..apps import get_app

    try:
        get_app(name)
    except KeyError as exc:
        raise BadRequest(str(exc.args[0] if exc.args else exc)) from None


def _check_system(name: str) -> None:
    from ..experiments.common import SYSTEM_CLASSES

    if name not in SYSTEM_CLASSES:
        raise BadRequest(
            f"unknown system {name!r}; choose from {list(SYSTEM_CLASSES)}"
        )


def _check_placement(spec: str) -> None:
    from ..systems.placement import get_policy

    try:
        get_policy(spec)
    except (KeyError, ValueError) as exc:
        raise BadRequest(str(exc.args[0] if exc.args else exc)) from None


def _parse_trace(payload: dict) -> InvocationTrace:
    """The run's trace: inline events, or synthesized from parameters."""
    inline = payload.get("trace")
    synth = payload.get("synth")
    if (inline is None) == (synth is None):
        raise BadRequest(
            "a run needs exactly one of 'trace' (inline events) or "
            "'synth' (synthesis parameters)"
        )
    if inline is not None:
        if isinstance(inline, list):
            inline = {"events": inline}
        if not isinstance(inline, dict):
            raise _type_error("trace", "a mapping or an event list", inline)
        events = inline.get("events")
        if not isinstance(events, list) or not events:
            raise BadRequest("'trace' must carry a non-empty 'events' list")
        try:
            return InvocationTrace.from_events(
                events, name=str(inline.get("name", "request"))
            )
        except (TypeError, ValueError, KeyError) as exc:
            raise BadRequest(f"bad trace event: {exc}") from None
    if not isinstance(synth, dict):
        raise _type_error("synth", "a mapping", synth)
    unknown = sorted(set(synth) - _SYNTH_KEYS)
    if unknown:
        raise BadRequest(
            f"unknown synth keys {unknown}; expected {sorted(_SYNTH_KEYS)}"
        )
    kwargs = dict(synth)
    kwargs.setdefault("tenants", 4)
    kwargs.setdefault("duration_s", 30.0)
    kwargs.setdefault("mean_rpm", 30.0)
    if "input_bytes" in kwargs:
        kwargs["input_bytes"] = _opt_size(kwargs, "input_bytes")
    try:
        return synthesize_trace(**kwargs)
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"bad synth parameters: {exc}") from None


def parse_run_request(
    payload: object,
    default_tenant_config: Optional[TenantConfig] = None,
) -> RunRequest:
    """Validate one ``POST /v1/runs`` body into a :class:`RunRequest`.

    ``default_tenant_config`` is the server-level ``--tenant-config``
    (already file-loaded); a request carrying its own inline
    ``tenant_config`` overrides it entirely.  Either way the config is
    (re)validated against *this request's* base system and placement,
    so profile errors surface as 400s naming the tenant.
    """
    if not isinstance(payload, dict):
        raise BadRequest(
            f"request body must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    unknown = sorted(set(payload) - _REQUEST_KEYS)
    if unknown:
        raise BadRequest(
            f"unknown request keys {unknown}; expected {sorted(_REQUEST_KEYS)}"
        )

    app = payload.get("app")
    if app is not None:
        if not isinstance(app, str):
            raise _type_error("app", "a string", app)
        _check_app(app)
    system = payload.get("system", "dataflower")
    if not isinstance(system, str):
        raise _type_error("system", "a string", system)
    _check_system(system)
    placement = payload.get("placement", "round_robin")
    if not isinstance(placement, str):
        raise _type_error("placement", "a string", placement)
    _check_placement(placement)

    seed = _opt_int(payload, "seed", minimum=0)
    timeout_s = _opt_number(payload, "timeout_s", minimum=0)
    if timeout_s is not None and timeout_s <= 0:
        raise BadRequest(f"'timeout_s' must be positive, got {timeout_s!r}")
    input_bytes = _opt_size(payload, "input_bytes")
    fanout = _opt_int(payload, "fanout", minimum=1)
    workers_raw = payload.get("workers")
    if isinstance(workers_raw, str):
        if workers_raw != "remote":
            raise BadRequest(
                f"'workers' must be an integer >= 1 or the string "
                f"'remote', got {workers_raw!r}"
            )
        workers: Union[int, str] = "remote"
    else:
        workers = _opt_int(payload, "workers", minimum=1) or 1
    stream = payload.get("stream", True)
    if not isinstance(stream, bool):
        raise _type_error("stream", "a boolean", stream)
    tenant = payload.get("tenant")
    if tenant is not None and not isinstance(tenant, str):
        raise _type_error("tenant", "a string", tenant)
    on_cell_failure = payload.get("on_cell_failure", "fail")
    if on_cell_failure not in ON_CELL_FAILURE_MODES:
        raise BadRequest(
            f"'on_cell_failure' must be one of "
            f"{list(ON_CELL_FAILURE_MODES)}, got {on_cell_failure!r}"
        )
    retry = None
    if payload.get("retry") is not None:
        try:
            retry = RetryPolicy.from_payload(payload["retry"])
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"retry: {exc}") from None
    faults = None
    if payload.get("faults") is not None:
        try:
            faults = HostFaultPlan.from_payload(payload["faults"])
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"faults: {exc}") from None
    sink_kind = payload.get("record_sink", "memory")
    if not isinstance(sink_kind, str):
        raise _type_error("record_sink", "a string", sink_kind)
    if sink_kind not in ("memory", "spill"):
        raise BadRequest(
            f"'record_sink' must be 'memory' or 'spill', got {sink_kind!r}"
        )
    max_records = _opt_int(payload, "max_records_in_memory", minimum=1)
    if max_records is not None and sink_kind != "spill":
        raise BadRequest(
            "'max_records_in_memory' only applies with "
            "'record_sink': 'spill'"
        )

    trace = _parse_trace(payload)
    # The engine would reject these too, but only after the job was
    # accepted — surface them as 400s at submission instead.
    if app is None and any(event.app is None for event in trace.events):
        raise BadRequest(
            f"trace {trace.name!r} has events naming no app and the "
            f"request has no default 'app'"
        )
    for name in trace.apps():
        _check_app(name)

    record_sink = None
    if sink_kind == "spill":
        from ..parallel.sink import (
            DEFAULT_MAX_RECORDS_IN_MEMORY,
            RecordSinkSpec,
        )

        # The spill directory is always server-chosen scratch (the
        # system temp dir): clients pick the *policy*, never a path on
        # the server's filesystem.
        record_sink = RecordSinkSpec(
            kind="spill",
            max_records_in_memory=(
                max_records
                if max_records is not None
                else DEFAULT_MAX_RECORDS_IN_MEMORY
            ),
        )

    spec = ReplaySpec(
        system_name=system,
        default_app=app,
        placement=placement,
        seed=seed if seed is not None else 0,
        timeout_s=timeout_s if timeout_s is not None else _DEFAULT_TIMEOUT_S,
        input_bytes=input_bytes,
        fanout=fanout,
        record_sink=record_sink,
    )

    inline_config = payload.get("tenant_config")
    config = default_tenant_config
    if inline_config is not None:
        from ..parallel.profiles import validated_tenant_config

        try:
            config = validated_tenant_config(inline_config, system, placement)
        except TenantProfileError as exc:
            raise BadRequest(f"tenant_config: {exc}") from None
    elif config is not None:
        try:
            config.validate(system, placement)
        except TenantProfileError as exc:
            raise BadRequest(f"server tenant config: {exc}") from None
    if config is not None:
        spec = spec.with_tenant_config(config)

    # The submitting tenant's quota comes from the tenant config: the
    # tenant's own profile first, the config default as fallback.
    max_concurrent_runs = None
    if tenant is not None and config is not None:
        profile = config.tenants.get(tenant) or config.default
        if profile is not None:
            max_concurrent_runs = profile.max_concurrent_runs

    summary = {
        "app": app,
        "system": system,
        "placement": placement,
        "seed": spec.seed,
        "trace": {"name": trace.name, "events": len(trace),
                  "tenants": len(trace.tenants())},
        "workers": workers,
        "stream": stream,
        "tenant_config": config is not None,
        "record_sink": sink_kind,
    }
    if tenant is not None:
        summary["tenant"] = tenant
    return RunRequest(
        trace=trace, spec=spec, workers=workers, stream=stream,
        tenant=tenant, max_concurrent_runs=max_concurrent_runs,
        retry=retry, faults=faults, on_cell_failure=on_cell_failure,
        summary=summary, payload=payload,
    )
