"""The durable run journal behind ``repro serve --journal``.

An append-only JSONL log (stdlib only) that makes the service's job
state survive process death — the Triggerflow move of persisting
orchestration state so workflow progress outlives the orchestrator.
One JSON record per line, four durable facts per run:

==============  ============================================================
``rec``         meaning
==============  ============================================================
``submit``      a run was accepted: the full request body (``payload``),
                its validated echo (``summary``), and the cell count
``cell``        one cell finished: cell ``key``, its stable ``identity``
                (:meth:`~repro.parallel.spec.ReplaySpec.cell_identity`),
                and the full :meth:`~repro.parallel.engine.CellResult.\
to_payload` residue — enough to fold the cell back through
                ``StreamingMerge`` without re-executing it
``done``        the run finished: the merged ``report`` verbatim
``failed``      the run raised: the ``error`` string
``interrupted``  a clean shutdown abandoned the run while still queued
==============  ============================================================

Every append is flushed **and fsync'd** before :meth:`RunJournal.append`
returns — the well-defined durability points are: after ``submit`` (an
accepted 202 survives), after each ``cell`` (completed work is never
redone), and after each terminal record.  A crash can therefore lose at
most the in-flight cell, and a torn final write leaves a truncated last
line that :func:`load_journal` detects and discards — the affected cell
is simply "not completed" and re-runs.

Recovery semantics live in :class:`~repro.serve.jobs.JobStore`:
``done``/``failed`` runs restore read-only, anything else resumes by
re-submitting only the cells without a journaled completion.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["JournalRun", "JournalState", "RunJournal", "load_journal"]

#: Journal format version, stamped on every record.
JOURNAL_VERSION = 1

#: Terminal record kinds: once journaled, a run never resumes.
_TERMINAL_RECS = ("done", "failed")


@dataclass
class JournalRun:
    """Everything the journal knows about one run, after replay."""

    run_id: str
    #: The original ``POST /v1/runs`` body, verbatim.
    payload: Optional[dict] = None
    #: The validated request echo (snapshots of restored runs).
    summary: dict = field(default_factory=dict)
    #: Total cells the run partitions into.
    cells_total: int = 0
    #: cell key -> ``(identity token, CellResult payload)``; duplicates
    #: are deduped first-wins (re-journaling a cell is idempotent).
    cells: Dict[str, Tuple[str, dict]] = field(default_factory=dict)
    #: ``submitted`` | ``done`` | ``failed`` | ``interrupted``.
    status: str = "submitted"
    report: Optional[dict] = None
    error: Optional[str] = None
    #: Highest event ``seq`` any journaled record carried (-1 if none):
    #: the submit record journals the ``queued`` event's seq, each cell
    #: record the seq of the last event in its batch, and terminal
    #: records the seq of the last event of the run.  A recovering
    #: store resumes numbering *past* this, so a follower that saw seq
    #: N before the crash never sees a different event reuse ≤ N.
    last_seq: int = -1

    @property
    def finished(self) -> bool:
        return self.status in _TERMINAL_RECS


@dataclass
class JournalState:
    """The loaded journal: runs in submission order, plus anomalies."""

    #: run id -> :class:`JournalRun`, insertion-ordered by submission.
    runs: Dict[str, JournalRun] = field(default_factory=dict)
    #: Human-readable notes on every record the loader discarded
    #: (torn last line, corrupt mid-file line, orphan, duplicate cell).
    anomalies: List[str] = field(default_factory=list)

    def max_run_number(self) -> int:
        """The largest ``run-NNNNNN`` numeric suffix seen (0 if none);
        a recovering store starts its id counter past this so new ids
        never collide with journaled ones."""
        best = 0
        for run_id in self.runs:
            tail = run_id.rsplit("-", 1)[-1]
            if tail.isdigit():
                best = max(best, int(tail))
        return best


def _parse_line(index: int, line: str, last: bool) -> Tuple[Optional[dict], Optional[str]]:
    """(record, anomaly) for one journal line — never raises."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        kind = "torn final write" if last else "corrupt line"
        return None, f"line {index + 1}: {kind} discarded"
    if not isinstance(record, dict) or "rec" not in record or "run" not in record:
        return None, f"line {index + 1}: not a journal record; discarded"
    return record, None


def load_journal(path: str) -> JournalState:
    """Replay a journal file into a :class:`JournalState`.

    Tolerant by design — startup must never crash on a journal a dying
    process left behind.  A truncated or torn last line (the one write
    a crash can interrupt) is discarded; so is any line that is not
    valid JSON or not a journal record, any record for a run with no
    ``submit`` line, and any duplicate cell completion (first wins —
    identical by determinism, so the dedupe is idempotent).  Every
    discard is noted in :attr:`JournalState.anomalies`.
    """
    state = JournalState()
    if not os.path.exists(path):
        return state
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        raw = handle.read()
    # A complete journal ends in a newline: anything after the final
    # newline is a torn write.  splitlines() alone would hide that.
    lines = raw.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        record, anomaly = _parse_line(index, line, index == len(lines) - 1)
        if record is None:
            state.anomalies.append(anomaly)
            continue
        run_id = str(record["run"])
        kind = record["rec"]
        if kind == "submit":
            run = state.runs.get(run_id)
            if run is not None:
                state.anomalies.append(
                    f"line {index + 1}: duplicate submit for {run_id}; "
                    f"discarded"
                )
                continue
            run = JournalRun(
                run_id=run_id,
                payload=record.get("payload"),
                summary=record.get("summary") or {},
                cells_total=int(record.get("cells") or 0),
            )
            seq = record.get("seq")
            if isinstance(seq, int) and not isinstance(seq, bool):
                run.last_seq = seq
            state.runs[run_id] = run
            continue
        run = state.runs.get(run_id)
        if run is None:
            state.anomalies.append(
                f"line {index + 1}: {kind!r} record for unknown run "
                f"{run_id}; discarded"
            )
            continue
        seq = record.get("seq")
        if isinstance(seq, int) and not isinstance(seq, bool):
            run.last_seq = max(run.last_seq, seq)
        if kind == "cell":
            key = record.get("key")
            cell = record.get("cell")
            if not isinstance(key, str) or not isinstance(cell, dict):
                state.anomalies.append(
                    f"line {index + 1}: malformed cell record for "
                    f"{run_id}; discarded"
                )
            elif key in run.cells:
                state.anomalies.append(
                    f"line {index + 1}: duplicate cell {key!r} for "
                    f"{run_id}; deduped"
                )
            else:
                run.cells[key] = (str(record.get("identity") or ""), cell)
        elif kind == "done":
            run.status = "done"
            run.report = record.get("report")
        elif kind == "failed":
            run.status = "failed"
            run.error = str(record.get("error") or "unknown error")
        elif kind == "interrupted":
            if not run.finished:
                run.status = "interrupted"
        else:
            state.anomalies.append(
                f"line {index + 1}: unknown record kind {kind!r}; discarded"
            )
    return state


class RunJournal:
    """Append-only, fsync'd writer for one journal file.

    Thread-safe: job-worker threads journal cell completions while HTTP
    threads journal submissions; one lock serializes appends so records
    never interleave mid-line.  The file opens lazily on first append
    (loading state never creates the file).
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._file = None
        #: Optional :class:`~repro.metrics.telemetry.MetricsRegistry`;
        #: when set (the JobStore wires its own), every durable append
        #: bumps ``repro_journal_fsyncs_total``.
        self.metrics = None

    # -- reading --------------------------------------------------------------

    def load_state(self) -> JournalState:
        """Replay the journal from disk (see :func:`load_journal`)."""
        return load_journal(self.path)

    # -- writing --------------------------------------------------------------

    def append(self, rec: str, run_id: str, **body: object) -> None:
        """Durably append one record: write, flush, fsync."""
        record = {"rec": rec, "run": run_id, "v": JOURNAL_VERSION}
        record.update(body)
        # Insertion order, not sort_keys: a journaled report must come
        # back with its original key order so a restored snapshot is
        # byte-identical to the one served before the restart.
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            if self._file is None:
                directory = os.path.dirname(os.path.abspath(self.path))
                os.makedirs(directory, exist_ok=True)
                self._file = open(self.path, "a", encoding="utf-8")
            self._file.write(line + "\n")
            self._file.flush()
            os.fsync(self._file.fileno())
        if self.metrics is not None:
            self.metrics.counter("repro_journal_fsyncs_total").inc()

    def record_submit(
        self,
        run_id: str,
        payload: Optional[dict],
        summary: dict,
        cells: int,
        seq: Optional[int] = None,
    ) -> None:
        body: Dict[str, object] = dict(
            payload=payload, summary=summary, cells=cells
        )
        if seq is not None:
            body["seq"] = seq
        self.append("submit", run_id, **body)

    def record_cell(
        self,
        run_id: str,
        key: str,
        identity: str,
        cell_payload: dict,
        seq: Optional[int] = None,
    ) -> None:
        body: Dict[str, object] = dict(
            key=key, identity=identity, cell=cell_payload
        )
        if seq is not None:
            body["seq"] = seq
        self.append("cell", run_id, **body)

    def record_done(
        self, run_id: str, report: dict, seq: Optional[int] = None
    ) -> None:
        body: Dict[str, object] = dict(report=report)
        if seq is not None:
            body["seq"] = seq
        self.append("done", run_id, **body)

    def record_failed(
        self, run_id: str, error: str, seq: Optional[int] = None
    ) -> None:
        body: Dict[str, object] = dict(error=error)
        if seq is not None:
            body["seq"] = seq
        self.append("failed", run_id, **body)

    def record_interrupted(
        self, run_id: str, seq: Optional[int] = None
    ) -> None:
        if seq is not None:
            self.append("interrupted", run_id, seq=seq)
        else:
            self.append("interrupted", run_id)

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None
