"""``repro serve``: the long-running HTTP orchestration service.

DataFlower's thesis is that workflow orchestration should be a
persistent service reacting to data availability — this package is that
front-end for the reproduction.  ``POST /v1/runs`` submits a workload
(inline trace or synthesis parameters, optional inline tenant
profiles), a worker pool executes it through the replay engine, and
clients poll ``GET /v1/runs/<id>`` for the deterministic merged report
or follow ``GET /v1/runs/<id>/events`` for an NDJSON progress stream
fed by the engine's per-cell completion hook.

Stdlib only (:mod:`http.server`); the REST surface is specified in
``docs/serve.md`` and enforced by ``tools/check_docs.py``.
"""

from .app import ROUTES, ReproServer, create_server
from .client import ServeClient, ServeError
from .jobs import Job, JobStore, UnknownJob
from .journal import JournalRun, JournalState, RunJournal, load_journal
from .validation import BadRequest, RunRequest, parse_run_request
from .workers import (
    FleetCancelled,
    StaleLease,
    UnknownWorker,
    WorkerRegistry,
)

__all__ = [
    "BadRequest",
    "FleetCancelled",
    "Job",
    "JobStore",
    "JournalRun",
    "JournalState",
    "ROUTES",
    "ReproServer",
    "RunJournal",
    "RunRequest",
    "ServeClient",
    "ServeError",
    "StaleLease",
    "UnknownJob",
    "UnknownWorker",
    "WorkerRegistry",
    "create_server",
    "load_journal",
    "parse_run_request",
]
