"""The ``GET /dashboard`` page: one self-contained static HTML file.

No build step, no JS dependencies, no external assets — the page is a
Python string the handler serves with ``text/html``.  Everything it
shows it discovers at runtime through the documented API:

- ``GET /v1/runs`` for the run picker (newest first, auto-refreshed),
- ``GET /v1/apps`` for the workflow DAG definitions,
- ``GET /v1/runs/<id>/events`` tailed via ``fetch`` + ReadableStream —
  the same NDJSON stream ``serve/client.py`` consumes, keepalive
  comment lines and all,
- ``GET /metrics`` polled for the worker-pool gauges.

The page validates each event's schema version (:data:`~repro.metrics.\
telemetry.SCHEMA_VERSION` is baked in at render time) and surfaces a
banner instead of silently misrendering a stream from a different
build.

Design notes: colors are the skill-validated reference palette —
categorical slots assigned to tenants in fixed first-seen order (never
cycled; tenants beyond eight fold into a muted "other" series), status
colors reserved for run/cell state, all text in ink tokens, light and
dark from the same ramps.  Every tenant row is direct-labeled, so the
sub-3:1 light-mode slots lean on text, not hue.  The DAG view colors
the topological *wavefront*: cell progress is per-tenant, not
per-function, so node state is the completed fraction mapped over the
topological order — an honest approximation, labeled as such in
``docs/observability.md``.
"""

from __future__ import annotations

import json

from ..metrics.telemetry import SCHEMA_VERSION, event_kinds

__all__ = ["dashboard_html"]


def dashboard_html() -> str:
    """The dashboard page with the current schema constants baked in."""
    return (
        _PAGE
        .replace("__SCHEMA_VERSION__", json.dumps(SCHEMA_VERSION))
        .replace("__EVENT_KINDS__", json.dumps(event_kinds()))
    )


_PAGE = r"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro serve — live runs</title>
<style>
  :root {
    color-scheme: light;
    --surface-1: #fcfcfb;
    --page: #f9f9f7;
    --text-primary: #0b0b0b;
    --text-secondary: #52514e;
    --text-muted: #898781;
    --grid: #e1e0d9;
    --baseline: #c3c2b7;
    --border: rgba(11,11,11,0.10);
    --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
    --series-4: #eda100; --series-5: #e87ba4; --series-6: #008300;
    --series-7: #4a3aa7; --series-8: #e34948;
    --status-good: #0ca30c;
    --status-warning: #fab219;
    --status-serious: #ec835a;
    --status-critical: #d03b3b;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      color-scheme: dark;
      --surface-1: #1a1a19;
      --page: #0d0d0d;
      --text-primary: #ffffff;
      --text-secondary: #c3c2b7;
      --text-muted: #898781;
      --grid: #2c2c2a;
      --baseline: #383835;
      --border: rgba(255,255,255,0.10);
      --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
      --series-4: #c98500; --series-5: #d55181; --series-6: #008300;
      --series-7: #9085e9; --series-8: #e66767;
    }
  }
  * { box-sizing: border-box; }
  body {
    margin: 0; background: var(--page); color: var(--text-primary);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  header {
    display: flex; align-items: baseline; gap: 12px; flex-wrap: wrap;
    padding: 14px 20px 10px;
  }
  header h1 { font-size: 16px; margin: 0; font-weight: 650; }
  header .sub { color: var(--text-muted); font-size: 12px; }
  header select {
    font: inherit; color: var(--text-primary); background: var(--surface-1);
    border: 1px solid var(--border); border-radius: 6px; padding: 3px 8px;
  }
  #banner {
    display: none; margin: 0 20px; padding: 8px 12px; border-radius: 6px;
    background: var(--status-critical); color: #fff; font-size: 13px;
  }
  main {
    display: grid; gap: 14px; padding: 14px 20px 24px;
    grid-template-columns: repeat(auto-fit, minmax(340px, 1fr));
  }
  figure.card {
    margin: 0; background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 10px; padding: 14px 16px;
  }
  figure.card figcaption {
    font-size: 13px; font-weight: 650; margin-bottom: 2px;
  }
  figure.card .caption-sub {
    font-size: 12px; color: var(--text-muted); margin-bottom: 10px;
  }
  .stat-row { display: flex; gap: 22px; flex-wrap: wrap; margin-bottom: 10px; }
  .stat .v {
    font-size: 26px; font-weight: 650; color: var(--text-primary);
  }
  .stat .k { font-size: 11px; color: var(--text-muted); }
  .track {
    height: 10px; border-radius: 5px; background: var(--grid);
    overflow: hidden; margin: 4px 0 2px;
  }
  .track .fill {
    height: 100%; border-radius: 5px; background: var(--series-1);
    width: 0%; transition: width .3s;
  }
  .track .fill.workers { background: var(--series-3); }
  .tenant-row {
    display: grid; grid-template-columns: 14px 110px 1fr 64px;
    align-items: center; gap: 8px; padding: 3px 0;
  }
  .tenant-row .swatch {
    width: 10px; height: 10px; border-radius: 3px;
    border: 2px solid var(--surface-1);
  }
  .tenant-row .name {
    font-size: 12px; color: var(--text-secondary);
    overflow: hidden; text-overflow: ellipsis; white-space: nowrap;
  }
  .tenant-row .val {
    font-size: 12px; color: var(--text-secondary); text-align: right;
    font-variant-numeric: tabular-nums;
  }
  svg text { font: 10px system-ui, sans-serif; fill: var(--text-muted); }
  table.tbl {
    width: 100%; border-collapse: collapse; font-size: 12px;
    color: var(--text-secondary); font-variant-numeric: tabular-nums;
  }
  table.tbl th {
    text-align: left; font-weight: 600; color: var(--text-muted);
    border-bottom: 1px solid var(--grid); padding: 3px 6px 3px 0;
  }
  table.tbl td { padding: 3px 6px 3px 0; border-bottom: 1px solid var(--grid); }
  #tooltip {
    position: fixed; display: none; pointer-events: none; z-index: 10;
    background: var(--text-primary); color: var(--surface-1);
    font-size: 12px; padding: 4px 8px; border-radius: 6px;
    max-width: 280px;
  }
  .legend { display:flex; gap:14px; font-size:11px; color:var(--text-muted);
            margin-top: 8px; flex-wrap: wrap; }
  .legend .chip { display:inline-block; width:9px; height:9px;
                  border-radius:3px; margin-right:4px; }
</style>
</head>
<body>
<header>
  <h1>repro serve</h1>
  <span class="sub">live run telemetry</span>
  <label class="sub" for="run-picker">run</label>
  <select id="run-picker"></select>
  <span class="sub" id="run-status"></span>
</header>
<div id="banner"></div>
<main>
  <figure class="card">
    <figcaption>Run progress</figcaption>
    <div class="caption-sub" id="progress-sub">waiting for a run…</div>
    <div class="stat-row">
      <div class="stat"><div class="v" id="stat-cells">–</div>
        <div class="k">cells folded</div></div>
      <div class="stat"><div class="v" id="stat-completed">–</div>
        <div class="k">requests completed</div></div>
      <div class="stat"><div class="v" id="stat-failed">–</div>
        <div class="k">requests failed</div></div>
    </div>
    <div class="track"><div class="fill" id="progress-fill"></div></div>
    <div class="caption-sub" id="progress-label"></div>
  </figure>

  <figure class="card">
    <figcaption>Worker pool</figcaption>
    <div class="caption-sub">from <code>/metrics</code>, 2s poll</div>
    <div class="stat-row">
      <div class="stat"><div class="v" id="stat-inflight">–</div>
        <div class="k">jobs in flight</div></div>
      <div class="stat"><div class="v" id="stat-queued">–</div>
        <div class="k">jobs queued</div></div>
      <div class="stat"><div class="v" id="stat-workers">–</div>
        <div class="k">job workers</div></div>
    </div>
    <div class="track"><div class="fill workers" id="worker-fill"></div></div>
    <div class="caption-sub" id="worker-label"></div>
  </figure>

  <figure class="card">
    <figcaption>Remote fleet</figcaption>
    <div class="caption-sub">cell leases to <code>repro worker</code>
      processes (<code>--workers remote</code> runs)</div>
    <div class="stat-row">
      <div class="stat"><div class="v" id="stat-fleet">–</div>
        <div class="k">workers registered</div></div>
      <div class="stat"><div class="v" id="stat-leases">–</div>
        <div class="k">leases granted</div></div>
      <div class="stat"><div class="v" id="stat-expired">–</div>
        <div class="k">leases expired</div></div>
    </div>
    <div class="caption-sub" id="fleet-label">no remote workers yet</div>
  </figure>

  <figure class="card" style="grid-column: 1 / -1;">
    <figcaption>Per-tenant cells</figcaption>
    <div class="caption-sub">
      p50 latency sparkline per folded cell · right column: cell
      requests/s (completed ÷ cell wall-clock)
    </div>
    <div id="tenants"></div>
  </figure>

  <figure class="card" style="grid-column: 1 / -1;">
    <figcaption>Workflow DAG</figcaption>
    <div class="caption-sub" id="dag-sub">
      declared data edges, topological order; node state approximates
      the run's completed-cell fraction as a wavefront
    </div>
    <div id="dag" style="overflow-x:auto;"></div>
    <div class="legend">
      <span><span class="chip" style="background:var(--status-good)"></span>
        done</span>
      <span><span class="chip" style="background:var(--status-warning)"></span>
        active</span>
      <span><span class="chip" style="background:var(--grid)"></span>
        pending</span>
    </div>
  </figure>

  <figure class="card" style="grid-column: 1 / -1;">
    <figcaption>Event log</figcaption>
    <div class="caption-sub">last 12 events (table view of the stream)</div>
    <table class="tbl"><thead>
      <tr><th>seq</th><th>event</th><th>detail</th></tr>
    </thead><tbody id="log"></tbody></table>
  </figure>
</main>
<div id="tooltip"></div>
<script>
"use strict";
const SCHEMA_VERSION = __SCHEMA_VERSION__;
const EVENT_KINDS = new Set(__EVENT_KINDS__);
const SERIES = ["--series-1","--series-2","--series-3","--series-4",
                "--series-5","--series-6","--series-7","--series-8"];

const $ = (id) => document.getElementById(id);
const css = (name) =>
  getComputedStyle(document.documentElement).getPropertyValue(name).trim();

// -- shared tooltip ----------------------------------------------------------
const tip = $("tooltip");
document.addEventListener("mousemove", (e) => {
  if (tip.style.display === "block") {
    tip.style.left = (e.clientX + 12) + "px";
    tip.style.top = (e.clientY + 12) + "px";
  }
});
function hover(el, text) {
  el.addEventListener("mouseenter", () => {
    tip.textContent = typeof text === "function" ? text() : text;
    tip.style.display = "block";
  });
  el.addEventListener("mouseleave", () => { tip.style.display = "none"; });
}

// -- state -------------------------------------------------------------------
let state = null;        // per-run view model
let follower = null;     // AbortController of the active stream
let workflows = {};      // app name -> workflow def
function freshState(runId) {
  return {
    runId, status: "queued", cellsTotal: 0, cellsDone: 0,
    offered: 0, completed: 0, failed: 0, app: null,
    tenants: new Map(),  // name -> {slot, points:[{lat, rps, cell}], last}
    log: [],
  };
}

function banner(msg) {
  const el = $("banner");
  el.style.display = msg ? "block" : "none";
  el.textContent = msg || "";
}

// Fixed first-seen slot assignment; ninth tenant onward folds to muted.
function tenantSeries(name) {
  let t = state.tenants.get(name);
  if (!t) {
    const slot = state.tenants.size;
    t = { slot, points: [], last: null };
    state.tenants.set(name, t);
  }
  return t;
}
const tenantColor = (t) =>
  t.slot < SERIES.length ? `var(${SERIES[t.slot]})` : "var(--text-muted)";

// -- rendering ---------------------------------------------------------------
function sparkline(points, color) {
  const w = 220, h = 26, pad = 2;
  const svg = document.createElementNS("http://www.w3.org/2000/svg", "svg");
  svg.setAttribute("viewBox", `0 0 ${w} ${h}`);
  svg.setAttribute("width", w); svg.setAttribute("height", h);
  const vals = points.map((p) => p.lat);
  const max = Math.max(...vals, 1e-9), min = Math.min(...vals, 0);
  const x = (i) => points.length < 2
    ? w / 2 : pad + (i * (w - 2 * pad)) / (points.length - 1);
  const y = (v) => h - pad - ((v - min) / (max - min || 1)) * (h - 2 * pad);
  const base = document.createElementNS(svg.namespaceURI, "line");
  base.setAttribute("x1", 0); base.setAttribute("x2", w);
  base.setAttribute("y1", h - 1); base.setAttribute("y2", h - 1);
  base.setAttribute("stroke", "var(--baseline)");
  svg.appendChild(base);
  if (points.length > 1) {
    const line = document.createElementNS(svg.namespaceURI, "polyline");
    line.setAttribute("points",
      points.map((p, i) => `${x(i)},${y(p.lat)}`).join(" "));
    line.setAttribute("fill", "none");
    line.setAttribute("stroke", color);
    line.setAttribute("stroke-width", "2");
    line.setAttribute("stroke-linejoin", "round");
    svg.appendChild(line);
  }
  const i = points.length - 1;
  const dot = document.createElementNS(svg.namespaceURI, "circle");
  dot.setAttribute("cx", x(i)); dot.setAttribute("cy", y(points[i].lat));
  dot.setAttribute("r", 3); dot.setAttribute("fill", color);
  dot.setAttribute("stroke", "var(--surface-1)");
  dot.setAttribute("stroke-width", "2");
  svg.appendChild(dot);
  // One oversized hit target per point (>= 8px), tooltip per mark.
  points.forEach((p, idx) => {
    const hit = document.createElementNS(svg.namespaceURI, "rect");
    hit.setAttribute("x", x(idx) - 5); hit.setAttribute("y", 0);
    hit.setAttribute("width", 10); hit.setAttribute("height", h);
    hit.setAttribute("fill", "transparent");
    hover(hit, () =>
      `cell ${p.cell}: p50 ${fmtS(p.lat)} · ${p.rps.toFixed(1)} req/s`);
    svg.appendChild(hit);
  });
  return svg;
}

const fmtS = (s) => s >= 1 ? s.toFixed(2) + " s" : (s * 1000).toFixed(0) + " ms";

function renderTenants() {
  const host = $("tenants");
  host.textContent = "";
  for (const [name, t] of state.tenants) {
    if (!t.points.length) continue;
    const row = document.createElement("div");
    row.className = "tenant-row";
    const sw = document.createElement("span");
    sw.className = "swatch"; sw.style.background = tenantColor(t);
    const label = document.createElement("span");
    label.className = "name"; label.textContent = name;
    const val = document.createElement("span");
    val.className = "val";
    val.textContent = t.last.rps.toFixed(1) + "/s";
    row.appendChild(sw); row.appendChild(label);
    row.appendChild(sparkline(t.points, tenantColor(t)));
    row.appendChild(val);
    host.appendChild(row);
  }
}

function renderProgress() {
  $("stat-cells").textContent =
    `${state.cellsDone}${state.cellsTotal ? " / " + state.cellsTotal : ""}`;
  $("stat-completed").textContent = state.completed;
  $("stat-failed").textContent = state.failed;
  const frac = state.cellsTotal ? state.cellsDone / state.cellsTotal : 0;
  $("progress-fill").style.width = (frac * 100).toFixed(1) + "%";
  $("progress-label").textContent =
    `${state.offered} offered · ${(frac * 100).toFixed(0)}% of cells folded`;
  $("progress-sub").textContent = `${state.runId} — ${state.status}`;
  $("run-status").textContent = state.status;
}

function renderLog() {
  const body = $("log");
  body.textContent = "";
  for (const e of state.log.slice(-12)) {
    const tr = document.createElement("tr");
    for (const cell of [e.seq, e.event, e.detail]) {
      const td = document.createElement("td");
      td.textContent = cell;
      tr.appendChild(td);
    }
    body.appendChild(tr);
  }
}

function renderDag() {
  const host = $("dag");
  host.textContent = "";
  const wf = state.app && workflows[state.app];
  if (!wf) {
    $("dag-sub").textContent = "no workflow definition for this run";
    return;
  }
  const names = wf.functions.map((f) => f.name);
  const index = new Map(names.map((n, i) => [n, i]));
  // Layer = longest path from entry, walked in topological order.
  const depth = new Map(names.map((n) => [n, 0]));
  for (const f of wf.functions) {
    for (const e of f.edges) {
      for (const to of e.to) {
        if (!index.has(to)) continue;  // $USER sink
        depth.set(to, Math.max(depth.get(to), depth.get(f.name) + 1));
      }
    }
  }
  const cols = [];
  for (const n of names) {
    const d = depth.get(n);
    (cols[d] = cols[d] || []).push(n);
  }
  const colW = 150, rowH = 46, nodeW = 112, nodeH = 26, pad = 14;
  const width = cols.length * colW + pad;
  const height = Math.max(...cols.map((c) => c.length)) * rowH + pad;
  const pos = new Map();
  cols.forEach((col, ci) => col.forEach((n, ri) => {
    pos.set(n, { x: pad + ci * colW, y: pad + ri * rowH });
  }));
  const frac = state.cellsTotal ? state.cellsDone / state.cellsTotal : 0;
  const wavefront = frac * names.length;
  const fill = (i) =>
    i + 1 <= wavefront ? "var(--status-good)"
      : (i < wavefront || (i === Math.floor(wavefront) &&
         state.status === "running")) ? "var(--status-warning)"
      : "var(--grid)";
  const mark = (i) => i + 1 <= wavefront ? "✓"
    : (i <= wavefront && state.status === "running") ? "●" : "";
  const svg = document.createElementNS("http://www.w3.org/2000/svg", "svg");
  svg.setAttribute("viewBox", `0 0 ${width} ${height}`);
  svg.setAttribute("width", width); svg.setAttribute("height", height);
  for (const f of wf.functions) {
    const from = pos.get(f.name);
    for (const e of f.edges) {
      for (const to of e.to) {
        const dst = pos.get(to);
        if (!dst) continue;
        const p = document.createElementNS(svg.namespaceURI, "path");
        const x1 = from.x + nodeW, y1 = from.y + nodeH / 2;
        const x2 = dst.x, y2 = dst.y + nodeH / 2;
        const mx = (x1 + x2) / 2;
        p.setAttribute("d",
          `M ${x1} ${y1} C ${mx} ${y1}, ${mx} ${y2}, ${x2} ${y2}`);
        p.setAttribute("fill", "none");
        p.setAttribute("stroke",
          e.kind === "NORMAL" ? "var(--baseline)" : "var(--text-muted)");
        p.setAttribute("stroke-width", e.kind === "FOREACH" ? "2.5" : "1.5");
        if (e.kind === "SWITCH") p.setAttribute("stroke-dasharray", "4 3");
        hover(p, `${f.name} —${e.kind.toLowerCase()}→ ${to} (${e.data})`);
        svg.appendChild(p);
      }
    }
  }
  names.forEach((n, i) => {
    const { x, y } = pos.get(n);
    const g = document.createElementNS(svg.namespaceURI, "g");
    const rect = document.createElementNS(svg.namespaceURI, "rect");
    rect.setAttribute("x", x); rect.setAttribute("y", y);
    rect.setAttribute("rx", 6);
    rect.setAttribute("width", nodeW); rect.setAttribute("height", nodeH);
    rect.setAttribute("fill", fill(i));
    rect.setAttribute("stroke", "var(--border)");
    const label = document.createElementNS(svg.namespaceURI, "text");
    label.setAttribute("x", x + 8); label.setAttribute("y", y + 17);
    label.textContent = (mark(i) ? mark(i) + " " : "") + n;
    const done = i + 1 <= wavefront;
    label.setAttribute("fill",
      done ? "#ffffff" : "var(--text-secondary)");
    hover(g, `${n}${n === wf.entry ? " (entry)" : ""}`);
    g.appendChild(rect); g.appendChild(label);
    svg.appendChild(g);
  });
  host.appendChild(svg);
}

// -- event handling ----------------------------------------------------------
function detailOf(e) {
  switch (e.event) {
    case "cell":
      return `${e.cell}: ${e.completed}/${e.offered} in ${fmtS(e.wall_s)}`
        + (e.resumed ? " (resumed)" : "");
    case "progress":
      return `${e.cells_done}/${e.cells_total} cells`;
    case "counter": return `${e.name} = ${e.value}`;
    case "gauge":
      return `${e.name}${JSON.stringify(e.labels || {})} = ${e.value}`;
    case "error": return e.message;
    case "report": return `completed=${e.report.completed}`;
    case "degraded":
      return `completed=${e.report.completed}, `
        + `${e.failed_cells} cell(s) failed`;
    case "recovered": return `${e.cells_journaled} cells journaled`;
    case "lease":
      return `${e.cell} → ${e.worker} (attempt ${e.attempt})`;
    case "lease_expired":
      return `${e.cell} on ${e.worker}`
        + (e.requeued ? " — requeued" : " — attempts exhausted");
    default: return "";
  }
}

function onEvent(e) {
  if (!EVENT_KINDS.has(e.event)) {
    banner(`unknown event kind ${JSON.stringify(e.event)} on the stream`);
    return;
  }
  if (e.v !== SCHEMA_VERSION) {
    banner(`event schema v${e.v} does not match dashboard v${SCHEMA_VERSION}`);
    return;
  }
  state.log.push({ seq: e.seq, event: e.event, detail: detailOf(e) });
  switch (e.event) {
    case "queued":
      state.cellsTotal = (e.request.trace && e.request.trace.tenants) || 0;
      state.app = e.request.app || null;
      break;
    case "running": case "interrupted":
      state.status = e.event; break;
    case "cell": {
      const t = tenantSeries(e.cell);
      const p = {
        cell: e.cell,
        lat: e.latency ? e.latency.p50_s : 0,
        rps: e.wall_s > 0 ? e.completed / e.wall_s : 0,
      };
      t.points.push(p); t.last = p;
      if (t.points.length > 40) t.points.shift();
      break;
    }
    case "progress":
      state.cellsDone = e.cells_done; state.cellsTotal = e.cells_total;
      state.offered = e.offered; state.completed = e.completed;
      state.failed = e.failed;
      break;
    case "report": state.status = "done"; break;
    case "degraded": state.status = "degraded"; break;
    case "error": state.status = "failed"; break;
  }
  renderProgress(); renderTenants(); renderDag(); renderLog();
}

async function followRun(runId) {
  if (follower) follower.abort();
  follower = new AbortController();
  state = freshState(runId);
  banner("");
  renderProgress(); renderTenants(); renderDag(); renderLog();
  try {
    const resp = await fetch(`/v1/runs/${runId}/events`,
                             { signal: follower.signal });
    const reader = resp.body.getReader();
    const decoder = new TextDecoder();
    let buf = "";
    for (;;) {
      const { done, value } = await reader.read();
      if (done) break;
      buf += decoder.decode(value, { stream: true });
      const lines = buf.split("\n");
      buf = lines.pop();
      for (const line of lines) {
        if (!line || line.startsWith(":")) continue;  // keepalive comment
        onEvent(JSON.parse(line));
      }
    }
  } catch (err) {
    if (err.name !== "AbortError") banner(`event stream: ${err}`);
  }
}

// -- pollers -----------------------------------------------------------------
function parseMetric(text, name) {
  // Sums every series of `name` in Prometheus text exposition.
  let total = 0, seen = false;
  for (const line of text.split("\n")) {
    if (!line.startsWith(name) || line.startsWith("#")) continue;
    const rest = line.slice(name.length);
    if (rest[0] !== " " && rest[0] !== "{") continue;
    const v = parseFloat(line.slice(line.lastIndexOf(" ") + 1));
    if (!Number.isNaN(v)) { total += v; seen = true; }
  }
  return seen ? total : null;
}

async function pollMetrics() {
  try {
    const text = await (await fetch("/metrics")).text();
    const inflight = parseMetric(text, "repro_jobs_inflight") || 0;
    const queued = parseMetric(text, "repro_jobs_queued") || 0;
    const workers = parseMetric(text, "repro_job_workers") || 0;
    $("stat-inflight").textContent = inflight;
    $("stat-queued").textContent = queued;
    $("stat-workers").textContent = workers;
    const frac = workers ? inflight / workers : 0;
    $("worker-fill").style.width = (frac * 100).toFixed(1) + "%";
    $("worker-label").textContent =
      `${(frac * 100).toFixed(0)}% of the pool busy`;
    const fleet = parseMetric(text, "repro_workers_registered") || 0;
    const leases = parseMetric(text, "repro_leases_granted_total") || 0;
    const expired = parseMetric(text, "repro_leases_expired_total") || 0;
    const results = parseMetric(text, "repro_lease_results_total") || 0;
    $("stat-fleet").textContent = fleet;
    $("stat-leases").textContent = leases;
    $("stat-expired").textContent = expired;
    $("fleet-label").textContent = fleet || leases
      ? `${results} lease result(s) delivered`
      : "no remote workers yet";
  } catch (err) { /* next poll retries */ }
}

async function pollRuns() {
  try {
    const { runs } = await (await fetch("/v1/runs")).json();
    const picker = $("run-picker");
    const current = picker.value;
    const ids = runs.map((r) => r.id).reverse();  // newest first
    if (ids.join() !== [...picker.options].map((o) => o.value).join()) {
      picker.textContent = "";
      for (const id of ids) {
        const opt = document.createElement("option");
        opt.value = id; opt.textContent = id;
        picker.appendChild(opt);
      }
      if (ids.includes(current)) picker.value = current;
      else if (ids.length) { picker.value = ids[0]; followRun(ids[0]); }
    }
  } catch (err) { /* next poll retries */ }
}

async function boot() {
  try {
    const { apps } = await (await fetch("/v1/apps")).json();
    for (const app of apps) workflows[app.name] = app.workflow;
  } catch (err) { banner(`could not load /v1/apps: ${err}`); }
  $("run-picker").addEventListener("change", (e) => followRun(e.target.value));
  await pollRuns();
  pollMetrics();
  setInterval(pollMetrics, 2000);
  setInterval(pollRuns, 3000);
}
boot();
</script>
</body>
</html>
"""
