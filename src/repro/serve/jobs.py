"""The job store and worker pool behind ``repro serve``.

A submitted run becomes a :class:`Job` that moves through ``queued →
running → done | failed`` (or ``queued → interrupted`` when a clean
shutdown abandons it).  A fixed pool of daemon *job-worker threads*
pulls jobs off a FIFO queue and executes each through
:func:`repro.parallel.engine.run_parallel_replay` — the in-process
serial fold when the request asked for one worker, the streaming
work-stealing process pool otherwise — so the service adds scheduling
around the engine, never a second execution path.

Progress streams through the engine's ``on_cell`` hook: every folded
:class:`~repro.parallel.engine.CellResult` appends one stable event
envelope (:func:`repro.metrics.report.event_envelope`) to the job's
event log and wakes any ``GET /v1/runs/<id>/events`` subscriber waiting
on the store's condition variable.  The in-RAM log is a bounded ring
(``max_events_per_run``): when it fills, the oldest envelopes move to a
per-run disk spool (:class:`EventSpool`) the store replays history from
— a late subscriber still sees the full, gap-free, seq-ordered history,
but a long run can no longer grow resident memory without limit.  The
terminal event is always the newest, so it is never evicted before a
follower sees it.

Durability: a store built with a :class:`~repro.serve.journal.RunJournal`
persists every submission, cell completion, and terminal status to an
append-only fsync'd log.  On construction the store replays the
journal: finished runs restore read-only, and interrupted runs *resume*
— journaled cell residues fold back through ``StreamingMerge`` via the
engine's ``completed_cells`` entry point and only the missing cells
re-execute, so the resumed report is byte-identical to an uninterrupted
run at the same seed.  Restored jobs carry ``recovered: true`` in their
snapshots.

Determinism note: the *report* a job produces is the engine's merged
``to_dict`` — byte-identical to ``repro replay`` on the same spec and
seed.  The *event log* is progress telemetry: cell completion order and
wall-clock fields are scheduling-dependent and deliberately kept out of
the report.
"""

from __future__ import annotations

import itertools
import json
import os
import queue
import shutil
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from itertools import islice
from pathlib import Path
from typing import Deque, Dict, Iterator, List, Optional, Sequence, Tuple

from ..metrics.report import event_envelope
from ..metrics.telemetry import MetricsRegistry, validate_event
from ..parallel.engine import (
    CellResult,
    fold_remote_cells,
    run_parallel_replay,
)
from ..parallel.policy import get_shard_policy
from ..parallel.profiles import TenantConfig
from ..parallel.sink import record_to_payload
from .journal import JournalState, RunJournal
from .validation import RunRequest, parse_run_request
from .workers import FleetCancelled, WorkerRegistry

__all__ = [
    "AdmissionDenied",
    "EventSpool",
    "Job",
    "JobStore",
    "RecordsUnavailable",
    "UnknownJob",
]

#: States a job can rest in; the last three are terminal.
JOB_STATES = ("queued", "running", "done", "failed", "interrupted")
_TERMINAL = ("done", "failed", "interrupted")


class UnknownJob(KeyError):
    """No job with that id; the HTTP layer answers 404."""


class RecordsUnavailable(RuntimeError):
    """The run exists but its records cannot be paged (not done yet,
    journal-restored, or past the record-retention window); the HTTP
    layer answers 409 with this message."""


class AdmissionDenied(RuntimeError):
    """A run submission the front door refused (``429 Too Many
    Requests``): the queue-depth bound (``reason="queue_full"``) or the
    submitting tenant's concurrent-run quota (``reason="tenant_quota"``).
    ``retry_after_s`` feeds the response's ``Retry-After`` header."""

    def __init__(
        self, reason: str, message: str, retry_after_s: float = 1.0
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after_s = retry_after_s


class EventSpool:
    """Disk-backed history for ring-evicted event envelopes.

    When a job's in-RAM event log reaches its cap, the oldest envelopes
    move here — one NDJSON file per run, strictly append-only, written
    under the store lock and flushed per append so followers reading
    outside the lock always see complete lines.  Spool line *i* is the
    run's absolute event position *i*: events only ever leave the ring
    from the head, in order, so the file is always the dense prefix
    ``[0, events_dropped)`` of the run's history and a follower's
    catch-up read is a plain line scan, no index needed.
    """

    def __init__(self, directory: str, owned: bool = False) -> None:
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        #: Whether close() should delete the directory (tempdir spools).
        self._owned = owned
        self._handles: Dict[str, object] = {}

    def _path(self, run_id: str) -> Path:
        return self._dir / f"{run_id}.ndjson"

    def reset(self, run_id: str) -> None:
        """Drop any stale spool for a (re)created run.

        Recovery re-emits a restored run's history with fresh seqs; a
        spool file left by the previous process would misalign line
        numbers with the new log's absolute positions.
        """
        self.remove(run_id)

    def append(self, run_id: str, envelope: dict) -> None:
        handle = self._handles.get(run_id)
        if handle is None:
            handle = open(self._path(run_id), "a", encoding="utf-8")
            self._handles[run_id] = handle
        handle.write(json.dumps(envelope, separators=(",", ":")) + "\n")
        handle.flush()

    def read(self, run_id: str, start: int, stop: int) -> List[dict]:
        """Envelopes at absolute positions ``[start, stop)``."""
        out: List[dict] = []
        if start >= stop:
            return out
        try:
            with open(self._path(run_id), "r", encoding="utf-8") as handle:
                for position, line in enumerate(handle):
                    if position >= stop:
                        break
                    if position >= start:
                        out.append(json.loads(line))
        except FileNotFoundError:
            pass
        return out

    def remove(self, run_id: str) -> None:
        handle = self._handles.pop(run_id, None)
        if handle is not None:
            handle.close()
        try:
            os.unlink(self._path(run_id))
        except OSError:
            pass

    def close(self) -> None:
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()
        if self._owned:
            shutil.rmtree(self._dir, ignore_errors=True)


@dataclass
class Job:
    """One submitted run and everything it has produced so far.

    All mutable fields are guarded by the owning store's condition
    variable; readers outside the store go through
    :meth:`JobStore.snapshot` / :meth:`JobStore.follow`.
    """

    id: str
    #: ``None`` only for journal-restored terminal jobs, which never
    #: execute again and serve snapshots from :attr:`summary` instead.
    request: Optional[RunRequest]
    status: str = "queued"
    #: The deterministic merged report (``done`` jobs only).
    report: Optional[dict] = None
    error: Optional[str] = None
    #: The tail of the event log still in RAM (envelopes, append order).
    #: Bounded by the store's ``max_events_per_run``; older envelopes
    #: live in the store's :class:`EventSpool`.
    events: Deque[dict] = field(default_factory=deque)
    #: How many envelopes have been evicted from the head of
    #: :attr:`events` into the spool — i.e. the absolute position of
    #: ``events[0]`` in the run's full history.
    events_dropped: int = 0
    #: Cell events appended so far (counter, not an event-log scan —
    #: the scan would miss ring-evicted cell events).
    cells_done: int = 0
    #: The merged record sequence of a ``done`` run — an in-RAM list or
    #: a disk-backed :class:`~repro.parallel.sink.SpilledRecords` —
    #: paged by ``GET /v1/runs/<id>/records``.  ``None`` once the run
    #: leaves the record-retention window or for journal-restored runs
    #: (the journal persists reports, not merged record streams).
    records: Optional[Sequence] = None
    #: The validated request echo (kept off ``request`` so restored
    #: jobs can answer snapshots without re-validating).
    summary: dict = field(default_factory=dict)
    #: Total cells the run partitions into.
    cells: int = 0
    #: True for jobs restored or resumed from a journal at startup.
    recovered: bool = False
    #: Journal-recovered cell results awaiting the resume execution
    #: (dropped once the run reaches a terminal state).
    preloaded: Optional[List[CellResult]] = None
    #: The next event ``seq`` to assign — monotonic for the lifetime of
    #: the run *including across journal resume* (recovery seeds it
    #: past the highest journaled seq, so post-restart events never
    #: reuse a number a pre-crash follower already saw).
    next_seq: int = 0


class JobStore:
    """Thread-safe job registry plus the worker pool that drains it.

    Retention is bounded: at most ``max_finished`` terminal (``done`` /
    ``failed`` / ``interrupted``) jobs are kept, oldest evicted first at
    submission time, so a long-running service's memory is bounded by
    the retention window — never by total jobs ever submitted.  Queued
    and running jobs are never evicted; an evicted id answers 404.

    ``journal`` makes the store durable (see the module docstring);
    recovery runs inside the constructor, *before* the worker threads
    start, so resumed jobs execute exactly like fresh submissions.
    ``default_tenant_config`` mirrors the server-level ``--tenant-config``
    so journaled requests re-validate under the same defaults they were
    accepted under.
    """

    def __init__(
        self,
        workers: int = 2,
        max_finished: int = 256,
        journal: Optional[RunJournal] = None,
        default_tenant_config: Optional[TenantConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        max_events_per_run: Optional[int] = 10_000,
        max_record_runs: int = 8,
        max_queued: Optional[int] = None,
        lease_timeout_s: float = 30.0,
        heartbeat_timeout_s: float = 90.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_finished < 1:
            raise ValueError("max_finished must be >= 1")
        if max_events_per_run is not None and max_events_per_run < 1:
            raise ValueError("max_events_per_run must be >= 1 (or None)")
        if max_record_runs < 1:
            raise ValueError("max_record_runs must be >= 1")
        if max_queued is not None and max_queued < 1:
            raise ValueError("max_queued must be >= 1 (or None)")
        #: Admission control: refuse submissions once this many jobs sit
        #: queued (``None`` = unbounded, the historical behavior).
        self.max_queued = max_queued
        #: Submissions refused by admission control (process lifetime).
        self.rejected = 0
        self.max_finished = max_finished
        self.max_events_per_run = max_events_per_run
        #: Done runs whose merged records stay pageable; older runs drop
        #: their record handles first (reports are kept for all retained
        #: runs — records are the bulky part).
        self.max_record_runs = max_record_runs
        self._cond = threading.Condition()
        self._jobs: Dict[str, Job] = {}
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._ids = itertools.count(1)
        self._closed = False
        self._journal = journal
        self._default_tenant_config = default_tenant_config
        self._spool: Optional[EventSpool] = None
        if max_events_per_run is not None:
            journal_path = getattr(journal, "path", None)
            if journal_path is not None:
                # Journal-adjacent spool: history files sit next to the
                # durable log they complement.
                self._spool = EventSpool(f"{journal_path}.events")
            else:
                self._spool = EventSpool(
                    tempfile.mkdtemp(prefix="repro-serve-events-"),
                    owned=True,
                )
        #: The process-wide registry every run populates (engine cell /
        #: tenant / phase instruments, journal fsyncs, pool gauges) and
        #: ``GET /metrics`` renders.  Counts cover this process's
        #: lifetime: journal-restored terminal runs were counted by the
        #: process that executed them, so restores don't re-count.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metrics.gauge("repro_job_workers").set(workers)
        #: The remote worker fleet (``workers="remote"`` runs): the HTTP
        #: layer routes worker registration, leases, and results here.
        self.fleet = WorkerRegistry(
            lease_timeout_s=lease_timeout_s,
            heartbeat_timeout_s=heartbeat_timeout_s,
            metrics=self.metrics,
            on_event=self._fleet_event,
        )
        if journal is not None:
            journal.metrics = self.metrics
            # The worker threads don't exist yet, so recovery cannot
            # race — the lock is held only because _append notifies
            # the condition it guards.
            with self._cond:
                resumed = self._recover(journal.load_state())
            for job_id in resumed:
                self._queue.put(job_id)
        self.workers = workers
        self._threads = [
            threading.Thread(
                target=self._drain, name=f"repro-serve-job-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- journal recovery -----------------------------------------------------

    def _recover(self, state: JournalState) -> List[str]:
        """Rebuild jobs from a loaded journal; returns ids to re-enqueue.

        Runs before the worker threads exist (constructor-only, store
        lock held).
        ``done``/``failed`` runs restore read-only with their journaled
        report or error.  Anything else — ``interrupted`` by a clean
        shutdown or simply cut off mid-run by a crash — re-validates its
        journaled request body and resumes: journaled cell residues
        whose identity tokens still match the request become
        ``preloaded`` results the engine folds without re-executing.  A
        request that no longer validates (e.g. the registry changed)
        becomes ``failed``, never a startup crash.
        """
        self._ids = itertools.count(state.max_run_number() + 1)
        resume: List[str] = []
        for run in state.runs.values():
            job = Job(
                id=run.run_id,
                request=None,
                summary=dict(run.summary),
                cells=run.cells_total,
                recovered=True,
                # Resume numbering past every journaled seq: a follower
                # that saw seq N before the crash never sees a
                # *different* event reuse a number <= N after it.
                next_seq=run.last_seq + 1,
            )
            self._jobs[run.run_id] = job
            if self._spool is not None:
                # Recovery re-emits history with fresh seqs; a spool
                # file from the previous process would misalign.
                self._spool.reset(run.run_id)
            self._append(
                job, "queued", {"run_id": job.id, "request": job.summary}
            )
            if run.status == "done":
                job.status = "done"
                job.report = run.report
                self._append(
                    job, "recovered",
                    {"run_id": job.id, "cells_journaled": len(run.cells)},
                )
                failed_cells = self._report_failed_cells(run.report)
                if failed_cells:
                    # The journaled report carries a failed_cells
                    # section: restore with the same terminal kind the
                    # original execution emitted.
                    self._append(
                        job, "degraded",
                        {"run_id": job.id, "report": run.report,
                         "failed_cells": failed_cells},
                    )
                else:
                    self._append(
                        job, "report",
                        {"run_id": job.id, "report": run.report},
                    )
                continue
            if run.status == "failed":
                job.status = "failed"
                job.error = run.error
                self._append(
                    job, "recovered",
                    {"run_id": job.id, "cells_journaled": len(run.cells)},
                )
                self._append(
                    job, "error", {"run_id": job.id, "message": run.error}
                )
                continue
            try:
                if run.payload is None:
                    raise ValueError("journal has no submission body")
                request = parse_run_request(
                    run.payload, self._default_tenant_config
                )
            except Exception as exc:  # noqa: BLE001 - recovery must not crash
                job.status = "failed"
                job.error = (
                    f"recovery: journaled request no longer valid: "
                    f"{type(exc).__name__}: {exc}"
                )
                seq = self._append(
                    job, "error", {"run_id": job.id, "message": job.error}
                )
                if self._journal is not None:
                    self._journal.record_failed(job.id, job.error, seq=seq)
                self.metrics.counter("repro_runs_total", status="failed").inc()
                continue
            job.request = request
            job.summary = dict(request.summary)
            job.cells = len(request.trace.tenants())
            identities = {
                key: request.spec.cell_identity(key, cell_trace)
                for key, cell_trace in get_shard_policy("tenant").split(
                    request.trace
                )
            }
            preloaded: List[CellResult] = []
            for key, (identity, payload) in run.cells.items():
                if identities.get(key) != identity:
                    continue  # stale or foreign checkpoint: re-run the cell
                try:
                    preloaded.append(CellResult.from_payload(payload))
                except Exception:  # noqa: BLE001 - a bad residue re-runs
                    continue
            job.preloaded = preloaded
            self._append(
                job, "recovered",
                {"run_id": job.id, "cells_journaled": len(preloaded)},
            )
            totals = {"cells_done": 0, "offered": 0,
                      "completed": 0, "failed": 0}
            for cell in preloaded:
                body = self._cell_event_body(job.id, cell, resumed=True)
                self._accumulate(totals, body)
                self._append(job, "cell", body)
            if preloaded:
                self._append(
                    job, "progress", self._progress_body(job, totals)
                )
            resume.append(job.id)
        return resume

    # -- submission and lookup ------------------------------------------------

    def submit(self, request: RunRequest) -> str:
        """Enqueue a validated run; returns the new job id.

        With a journal attached, the submission record is fsync'd
        before the job becomes runnable — an accepted run survives a
        crash that lands immediately after the 202.

        Admission control runs first, under the same lock that guards
        the state it reads: the queue-depth bound, then the submitting
        tenant's concurrent-run quota (counting that tenant's queued +
        running jobs).  A refused submission raises
        :class:`AdmissionDenied` (HTTP 429 + ``Retry-After``) and
        leaves no trace beyond the rejection counters.
        """
        with self._cond:
            if self._closed:
                raise RuntimeError("job store is shut down")
            if self.max_queued is not None:
                queued = sum(
                    1 for job in self._jobs.values()
                    if job.status == "queued"
                )
                if queued >= self.max_queued:
                    self.rejected += 1
                    self.metrics.counter(
                        "repro_runs_rejected_total", reason="queue_full"
                    ).inc()
                    raise AdmissionDenied(
                        "queue_full",
                        f"run queue is full ({queued} queued, "
                        f"max {self.max_queued}); retry later",
                    )
            if (
                request.tenant is not None
                and request.max_concurrent_runs is not None
            ):
                active = sum(
                    1 for job in self._jobs.values()
                    if job.status in ("queued", "running")
                    and job.summary.get("tenant") == request.tenant
                )
                if active >= request.max_concurrent_runs:
                    self.rejected += 1
                    self.metrics.counter(
                        "repro_runs_rejected_total", reason="tenant_quota"
                    ).inc()
                    raise AdmissionDenied(
                        "tenant_quota",
                        f"tenant {request.tenant!r} already has {active} "
                        f"active run(s), quota "
                        f"{request.max_concurrent_runs}; retry later",
                    )
            job_id = f"run-{next(self._ids):06d}"
            job = Job(
                id=job_id,
                request=request,
                summary=dict(request.summary),
                cells=len(request.trace.tenants()),
            )
            self._jobs[job_id] = job
            if self._spool is not None:
                # A fresh journal in a reused directory can leave stale
                # spool files whose line numbers belong to another run.
                self._spool.reset(job_id)
            seq = self._append(job, "queued", {"run_id": job_id,
                                               "request": request.summary})
            self._evict()
        if self._journal is not None:
            self._journal.record_submit(
                job_id, request.payload, request.summary, job.cells, seq=seq
            )
        self._queue.put(job_id)
        return job_id

    def _evict(self) -> None:
        """Drop the oldest terminal jobs beyond ``max_finished``, and
        the oldest *record handles* beyond ``max_record_runs`` (lock
        held; runs on every submission and terminal transition).
        Followers mid-stream keep their Job reference — an evicted job
        is terminal, so they drain its fixed event log and finish; only
        new lookups see the 404."""
        terminal = [
            job_id
            for job_id, job in self._jobs.items()
            if job.status in _TERMINAL
        ]
        for job_id in terminal[: max(0, len(terminal) - self.max_finished)]:
            self._drop_records(self._jobs[job_id])
            if self._spool is not None:
                self._spool.remove(job_id)
            del self._jobs[job_id]
        # Records are the bulky part of a done run: keep only the most
        # recent handles pageable, release the rest (their reports stay).
        holding = [
            job for job in self._jobs.values() if job.records is not None
        ]
        for job in holding[: max(0, len(holding) - self.max_record_runs)]:
            self._drop_records(job)

    @staticmethod
    def _drop_records(job: Job) -> None:
        records = job.records
        job.records = None
        close = getattr(records, "close", None)
        if close is not None:
            close()

    def _get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJob(job_id)
        return job

    @staticmethod
    def _report_failed_cells(report: Optional[dict]) -> int:
        """How many cells a report's ``replay.failed_cells`` records."""
        if not isinstance(report, dict):
            return 0
        replay = report.get("replay")
        if not isinstance(replay, dict):
            return 0
        return len(replay.get("failed_cells") or ())

    def snapshot(self, job_id: str) -> dict:
        """A consistent JSON-ready view of one job (``GET /v1/runs/<id>``)."""
        with self._cond:
            job = self._get(job_id)
            view: dict = {
                "id": job.id,
                "status": job.status,
                "request": dict(job.summary),
                "cells_done": job.cells_done,
                "cells": job.cells,
            }
            if job.recovered:
                view["recovered"] = True
            if self._report_failed_cells(job.report):
                view["degraded"] = True
            if job.error is not None:
                view["error"] = job.error
            # The report sub-object is the engine's to_dict verbatim —
            # byte-identical to `repro replay` on the same seed.
            view["report"] = job.report
            return view

    def list(self) -> List[dict]:
        """Submission-ordered one-line summaries (``GET /v1/runs``)."""
        page, _cursor = self.list_page()
        return page

    @staticmethod
    def _run_number(job_id: str) -> int:
        """The monotonic submission number inside a ``run-NNNNNN`` id."""
        try:
            return int(job_id.rsplit("-", 1)[-1])
        except ValueError:
            return -1

    def list_page(
        self,
        cursor: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> Tuple[List[dict], Optional[str]]:
        """One page of the submission-ordered listing.

        ``cursor`` is the last job id of the previous page (an opaque
        token to clients); the page starts strictly after it.  The
        cursor is stable under eviction and new submissions: ids are
        monotonic in submission order, so already-seen ids can only
        disappear, never reorder — a paging client sees every job that
        stays retained for the duration of the walk, each exactly once.
        Returns ``(page, next_cursor)``; ``next_cursor`` is ``None`` on
        the last page.
        """
        if limit is not None and limit < 1:
            raise ValueError("limit must be >= 1")
        floor = self._run_number(cursor) if cursor is not None else -1
        with self._cond:
            rows = [
                {
                    "id": job.id,
                    "status": job.status,
                    "url": f"/v1/runs/{job.id}",
                }
                for job in self._jobs.values()
                if self._run_number(job.id) > floor
            ]
        if limit is None or len(rows) <= limit:
            return rows, None
        page = rows[:limit]
        return page, page[-1]["id"]

    def records_page(
        self, job_id: str, cursor: int = 0, limit: int = 1000
    ) -> dict:
        """One page of a done run's merged records
        (``GET /v1/runs/<id>/records``).

        ``cursor`` is the absolute record index the page starts at (the
        canonical merge order is deterministic, so indexes are stable);
        the response's ``next_cursor`` is ``None`` on the last page.
        Only ``limit`` records are serialized per request — the backing
        store is sliced (in-RAM list) or seeked (disk spill file), never
        materialized whole.
        """
        if cursor < 0:
            raise ValueError("cursor must be >= 0")
        if limit < 1:
            raise ValueError("limit must be >= 1")
        with self._cond:
            job = self._get(job_id)
            status = job.status
            records = job.records
        if status != "done":
            raise RecordsUnavailable(
                f"run {job_id} is {status}; records are available once "
                f"it is done"
            )
        if records is None:
            raise RecordsUnavailable(
                f"run {job_id} no longer retains its merged records "
                f"(journal-restored or past the record-retention "
                f"window); resubmit the run to page them"
            )
        total = len(records)
        start = min(cursor, total)
        stop = min(start + limit, total)
        iter_payloads = getattr(records, "iter_payloads", None)
        if iter_payloads is not None:
            page = list(iter_payloads(start, stop))
        else:
            page = [
                record_to_payload(record) for record in records[start:stop]
            ]
        return {
            "run": job_id,
            "total": total,
            "cursor": start,
            "records": page,
            "next_cursor": stop if stop < total else None,
        }

    def counts(self) -> Dict[str, int]:
        """Jobs per state, every state present (``GET /healthz``)."""
        with self._cond:
            counts = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                counts[job.status] += 1
            return counts

    def refresh_gauges(self) -> Dict[str, int]:
        """Recompute the pool-occupancy gauges from live job states.

        Called by the ``/metrics`` handler at scrape time — deriving
        the gauges from :meth:`counts` on read means no transition
        bookkeeping can drift.  Returns the counts for convenience.
        """
        counts = self.counts()
        self.metrics.gauge("repro_jobs_inflight").set(counts["running"])
        self.metrics.gauge("repro_jobs_queued").set(counts["queued"])
        return counts

    # -- event streaming ------------------------------------------------------

    def follow(
        self,
        job_id: str,
        poll_s: float = 0.25,
        keepalive_s: Optional[float] = None,
    ) -> Iterator[Optional[dict]]:
        """Yield a job's event envelopes: full history, then live.

        Terminates once the job is terminal and every event has been
        yielded.  ``poll_s`` bounds how long one wait sleeps, so a
        disconnected client is noticed promptly by the caller's write
        failing on the next yielded event.  The job resolves once, up
        front: eviction mid-stream cannot break an attached follower.

        ``keepalive_s`` (optional) yields ``None`` whenever that many
        seconds pass with no new event — the HTTP layer writes each
        ``None`` as a ``: keepalive`` comment line, so a follower of a
        quiet run can distinguish "alive but idle" from a dead
        connection and time out cleanly.

        ``index`` below is an *absolute* position in the run's event
        history.  History that has left the in-RAM ring is replayed
        from the disk spool (outside the lock — spool files are
        append-only and flushed per line); the ring serves the live
        tail.  Either way the yielded sequence is gap-free and
        seq-ordered.
        """
        with self._cond:
            job = self._get(job_id)
        index = 0
        last = time.monotonic()
        while True:
            batch: List[dict] = []
            spool_to = None
            with self._cond:
                if index >= job.events_dropped:
                    while (
                        job.events_dropped + len(job.events) <= index
                        and job.status not in _TERMINAL
                    ):
                        self._cond.wait(poll_s)
                        if (
                            keepalive_s is not None
                            and time.monotonic() - last >= keepalive_s
                        ):
                            break
                    dropped = job.events_dropped
                    if index >= dropped:
                        batch = list(
                            islice(job.events, index - dropped, None)
                        )
                        index += len(batch)
                    else:
                        # The ring advanced past us while we waited.
                        spool_to = dropped
                else:
                    spool_to = job.events_dropped
                finished = (
                    job.status in _TERMINAL
                    and spool_to is None
                    and index >= job.events_dropped + len(job.events)
                )
            if spool_to is not None:
                # Catch up from the spool in bounded chunks so one lap
                # never holds a huge history list in memory.
                stop = min(spool_to, index + 1000)
                batch = (
                    self._spool.read(job.id, index, stop)
                    if self._spool is not None
                    else []
                )
                if not batch:
                    # No spool (or a vanished file): the history below
                    # the ring is gone; resume at the ring start.  The
                    # suffix stays seq-ordered, so client-side
                    # monotonicity checks still hold.
                    index = spool_to
                    continue
                index += len(batch)
            if batch:
                yield from batch
                last = time.monotonic()
            elif not finished:
                yield None  # keepalive tick: no event for keepalive_s
                last = time.monotonic()
            if finished:
                return

    def _append(
        self, job: Job, kind: str, body: dict, seq: Optional[int] = None
    ) -> int:
        """Append one envelope and wake subscribers (lock held).

        ``seq`` defaults to the job's next number; passing one of a
        :meth:`_reserve`-d block appends at that reserved number.
        Every envelope is validated against the telemetry schema on the
        way in — the store structurally cannot emit an invalid event.
        Returns the assigned seq.
        """
        if seq is None:
            seq = job.next_seq
        job.next_seq = max(job.next_seq, seq + 1)
        job.events.append(
            validate_event(event_envelope(kind, body, seq=seq))
        )
        if kind == "cell":
            job.cells_done += 1
        cap = self.max_events_per_run
        if cap is not None:
            # Ring eviction: move the oldest envelopes to the disk
            # spool.  The newest event — which is the terminal one on
            # any finished run — is never evicted, so the follower
            # termination guarantee is structural.
            while len(job.events) > cap:
                evicted = job.events.popleft()
                if self._spool is not None:
                    self._spool.append(job.id, evicted)
                job.events_dropped += 1
        self._cond.notify_all()
        return seq

    @staticmethod
    def _reserve(job: Job, count: int) -> int:
        """Claim ``count`` consecutive seqs (lock held); returns the first.

        Seqs are reserved *before* the journal fsync that records them,
        so a concurrent append (e.g. the shutdown sweep) can never be
        assigned a number the journal is about to claim — the journaled
        "last emitted seq" is correct even under that race.
        """
        first = job.next_seq
        job.next_seq += count
        return first

    @staticmethod
    def _accumulate(totals: Dict[str, int], cell_body: dict) -> None:
        """Fold one cell event body into a run's running totals."""
        totals["cells_done"] += 1
        for key in ("offered", "completed", "failed"):
            totals[key] += cell_body[key]

    @staticmethod
    def _progress_body(job: Job, totals: Dict[str, int]) -> dict:
        return {
            "run_id": job.id,
            "cells_done": totals["cells_done"],
            "cells_total": job.cells,
            "offered": totals["offered"],
            "completed": totals["completed"],
            "failed": totals["failed"],
        }

    @staticmethod
    def _cell_event_body(
        job_id: str, cell: CellResult, resumed: bool = False
    ) -> dict:
        completed = failed = 0
        for record in cell.records:
            if record.completed:
                completed += 1
            elif record.failed:
                failed += 1
        body = {
            "run_id": job_id,
            "cell": cell.key,
            "offered": cell.offered,
            "completed": completed,
            "failed": failed,
            "wall_s": round(cell.wall_s, 6),
        }
        if resumed:
            body["resumed"] = True
        if cell.latency is not None:
            body["latency"] = {
                "mean_s": round(cell.latency.mean_s, 6),
                "p50_s": round(cell.latency.p50_s, 6),
                "p99_s": round(cell.latency.p99_s, 6),
            }
        return body

    # -- execution ------------------------------------------------------------

    def _drain(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            self._execute(self._jobs[job_id])

    def _execute(self, job: Job) -> None:
        request = job.request
        with self._cond:
            if job.status != "queued":
                # close() interrupted the job before a worker got it.
                return
            job.status = "running"
            self._append(job, "running", {"run_id": job.id})

        # Running totals for the progress / terminal-counter events;
        # journal-recovered cells already emitted their cell events in
        # _recover, so the resume starts from their sums.  on_cell runs
        # only on this worker thread, so the dict needs no lock.
        totals = {"cells_done": 0, "offered": 0, "completed": 0, "failed": 0}
        for cell in job.preloaded or ():
            self._accumulate(totals, self._cell_event_body(job.id, cell))

        def on_cell(cell: CellResult) -> None:
            # Durability before visibility: the residue is fsync'd to
            # the journal, then the progress events wake subscribers.
            # The hook fires only for newly executed cells — journal-
            # recovered ones folded without re-running and are already
            # journaled.  (The fsync runs outside the store lock.)
            # Seqs for the cell + progress pair are reserved first so
            # the journaled "last emitted seq" is exact even if another
            # event lands between the fsync and the append.
            body = self._cell_event_body(job.id, cell)
            with self._cond:
                first = self._reserve(job, 2)
            if self._journal is not None:
                self._journal.record_cell(
                    job.id,
                    cell.key,
                    request.spec.cell_identity(cell.key),
                    cell.to_payload(),
                    seq=first + 1,
                )
            self._accumulate(totals, body)
            progress = self._progress_body(job, totals)
            with self._cond:
                if job.status == "running":
                    self._append(job, "cell", body, seq=first)
                    self._append(job, "progress", progress, seq=first + 1)

        try:
            if request.workers == "remote":
                result = self._execute_remote(job, request, on_cell)
            else:
                # shards=workers keeps the static batched engine
                # (stream=False) actually parallel at the requested
                # width; the streaming engine ignores shards, and the
                # merged report is shard-invariant either way.
                result = run_parallel_replay(
                    request.trace,
                    request.spec,
                    shards=request.workers,
                    workers=request.workers,
                    stream=request.stream,
                    on_cell=on_cell,
                    completed_cells=job.preloaded or None,
                    metrics=self.metrics,
                    retry=request.retry,
                    fault_plan=request.faults,
                    on_cell_failure=request.on_cell_failure,
                )
            report = result.to_dict()
            failed_cells = len(result.failed_cells)
            # The terminal batch: the run's counter totals (matching
            # the report exactly), its phase-timing gauges, then the
            # report itself — seqs reserved up front so the journaled
            # done record names the report event's seq.
            counters = [
                ("requests_offered", totals["offered"]),
                ("requests_completed", totals["completed"]),
                ("requests_failed", totals["failed"]),
                ("cells_completed", totals["cells_done"]),
            ]
            gauges = [
                ("phase_seconds", {"phase": phase}, round(seconds, 6))
                for phase, seconds in sorted(result.phase_wall_s.items())
            ]
            batch = len(counters) + len(gauges) + 1
            with self._cond:
                first = self._reserve(job, batch)
            if self._journal is not None:
                self._journal.record_done(
                    job.id, report, seq=first + batch - 1
                )
            with self._cond:
                if job.status != "running":
                    return  # the shutdown sweep already closed this run
                seq = first
                for name, value in counters:
                    self._append(
                        job, "counter",
                        {"run_id": job.id, "name": name, "value": value},
                        seq=seq,
                    )
                    seq += 1
                for name, labels, value in gauges:
                    self._append(
                        job, "gauge",
                        {"run_id": job.id, "name": name, "value": value,
                         "labels": labels},
                        seq=seq,
                    )
                    seq += 1
                job.report = report
                job.status = "done"
                # Keep the merged record handle (list or disk-backed
                # SpilledRecords) pageable via /records until the run
                # leaves the record-retention window.
                job.records = result.records
                job.preloaded = None
                if failed_cells:
                    # The run finished but skipped cells that exhausted
                    # their retries (on_cell_failure="skip"): terminal
                    # kind "degraded", still a done run — the report is
                    # complete for every surviving cell.
                    self._append(
                        job, "degraded",
                        {"run_id": job.id, "report": report,
                         "failed_cells": failed_cells},
                        seq=seq,
                    )
                else:
                    self._append(
                        job, "report", {"run_id": job.id, "report": report},
                        seq=seq,
                    )
                self._evict()
            self.metrics.counter(
                "repro_runs_total",
                status="degraded" if failed_cells else "done",
            ).inc()
        except FleetCancelled:
            # Shutdown (or cancellation) cut a remote run off mid-fold:
            # interrupted, not failed — the journal resumes it from its
            # checkpointed cells on the next boot.
            with self._cond:
                if job.status != "running":
                    return
                job.status = "interrupted"
                job.preloaded = None
                seq = self._append(job, "interrupted", {"run_id": job.id})
            if self._journal is not None:
                self._journal.record_interrupted(job.id, seq=seq)
            self.metrics.counter(
                "repro_runs_total", status="interrupted"
            ).inc()
        except Exception as exc:  # noqa: BLE001 - a job must never kill its worker
            error = f"{type(exc).__name__}: {exc}"
            with self._cond:
                first = self._reserve(job, 1)
            if self._journal is not None:
                self._journal.record_failed(job.id, error, seq=first)
            with self._cond:
                if job.status != "running":
                    return  # the shutdown sweep already closed this run
                job.status = "failed"
                job.error = error
                job.preloaded = None
                self._append(
                    job, "error", {"run_id": job.id, "message": job.error},
                    seq=first,
                )
                self._evict()
            self.metrics.counter("repro_runs_total", status="failed").inc()

    def _execute_remote(self, job: Job, request: RunRequest, on_cell):
        """Run one job on the remote fleet instead of a local pool.

        The cells queue into the :class:`~repro.serve.workers.\
WorkerRegistry` and the delivered outcomes fold through
        :func:`~repro.parallel.engine.fold_remote_cells` — the same
        ``StreamingMerge`` / ``on_cell`` / journal discipline as local
        execution, so the report, the per-cell journal records, and the
        event stream are byte-identical to ``repro replay`` at the same
        seed.  Journal-recovered cells never re-queue: only the missing
        cells go to the fleet.
        """
        done = {cell.key for cell in job.preloaded or ()}
        pending = sorted(
            key
            for key, _ in get_shard_policy("tenant").split(request.trace)
            if key not in done
        )
        payload = dict(request.payload or {})
        if (
            payload.get("tenant_config") is None
            and self._default_tenant_config is not None
        ):
            # A worker rebuilds its ReplaySpec from this payload alone,
            # so the server-level --tenant-config must travel inline:
            # without it the worker replays against the bare base spec
            # and the folded cells silently diverge from the validated
            # run.
            payload["tenant_config"] = self._default_tenant_config.to_payload()
        fleet_job = self.fleet.submit(job.id, payload, pending, request.retry)
        try:
            return fold_remote_cells(
                request.trace,
                request.spec,
                self.fleet.results(fleet_job),
                on_cell=on_cell,
                completed_cells=job.preloaded or None,
                metrics=self.metrics,
                on_cell_failure=request.on_cell_failure,
            )
        finally:
            self.fleet.finish(fleet_job)

    def _fleet_event(self, job_id: str, kind: str, body: dict) -> None:
        """Mirror fleet lease activity onto the owning run's stream.

        Fired by the registry outside its own lock (lease grants and
        expirations), so taking the store lock here cannot deadlock.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is not None and job.status == "running":
                self._append(job, kind, body)

    def _interrupt(self, statuses: tuple) -> None:
        """Mark every job in ``statuses`` interrupted (event + journal).

        The terminal event is what lets an attached follower finish:
        without it, a ``GET /v1/runs/<id>/events`` stream on an
        abandoned run would wait forever.
        """
        with self._cond:
            swept = [
                job for job in self._jobs.values() if job.status in statuses
            ]
            seqs = {}
            for job in swept:
                job.status = "interrupted"
                job.preloaded = None
                seqs[job.id] = self._append(
                    job, "interrupted", {"run_id": job.id}
                )
        for job in swept:
            if self._journal is not None:
                self._journal.record_interrupted(job.id, seq=seqs[job.id])
            self.metrics.counter(
                "repro_runs_total", status="interrupted"
            ).inc()

    def close(self, timeout_s: float = 10.0) -> None:
        """Stop accepting jobs, interrupt the unfinished ones, join workers.

        A job still ``queued`` at shutdown is marked ``interrupted`` —
        in memory (so ``GET /v1/runs/<id>`` says so instead of leaving
        it ``queued`` forever) and in the journal (so the next boot on
        the same journal resumes it).  Running jobs get ``timeout_s``
        to finish; one still running after that is swept ``interrupted``
        too, so every run ends in a terminal event and no follower
        hangs on a run nobody is executing anymore.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
        self._interrupt(("queued",))
        # Wake remote folds first: a fleet run blocked on workers that
        # can no longer reach this process would otherwise pin its job
        # thread for the whole timeout.  The fold observes the
        # cancellation and marks the run interrupted (journal-resumable).
        self.fleet.close()
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=timeout_s)
        self._interrupt(("queued", "running"))
        if self._journal is not None:
            self._journal.close()
        if self._spool is not None:
            self._spool.close()
