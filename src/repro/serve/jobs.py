"""The job store and worker pool behind ``repro serve``.

A submitted run becomes a :class:`Job` that moves through ``queued →
running → done | failed``.  A fixed pool of daemon *job-worker threads*
pulls jobs off a FIFO queue and executes each through
:func:`repro.parallel.engine.run_parallel_replay` — the in-process
serial fold when the request asked for one worker, the streaming
work-stealing process pool otherwise — so the service adds scheduling
around the engine, never a second execution path.

Progress streams through the engine's ``on_cell`` hook: every folded
:class:`~repro.parallel.engine.CellResult` appends one stable event
envelope (:func:`repro.metrics.report.event_envelope`) to the job's
event log and wakes any ``GET /v1/runs/<id>/events`` subscriber waiting
on the store's condition variable.  Event logs are append-only, so a
late subscriber replays the full history before following live.

Determinism note: the *report* a job produces is the engine's merged
``to_dict`` — byte-identical to ``repro replay`` on the same spec and
seed.  The *event log* is progress telemetry: cell completion order and
wall-clock fields are scheduling-dependent and deliberately kept out of
the report.
"""

from __future__ import annotations

import itertools
import queue
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..metrics.report import event_envelope
from ..parallel.engine import CellResult, run_parallel_replay
from .validation import RunRequest

__all__ = ["Job", "JobStore", "UnknownJob"]

#: States a job can rest in; the last two are terminal.
JOB_STATES = ("queued", "running", "done", "failed")
_TERMINAL = ("done", "failed")


class UnknownJob(KeyError):
    """No job with that id; the HTTP layer answers 404."""


@dataclass
class Job:
    """One submitted run and everything it has produced so far.

    All mutable fields are guarded by the owning store's condition
    variable; readers outside the store go through
    :meth:`JobStore.snapshot` / :meth:`JobStore.follow`.
    """

    id: str
    request: RunRequest
    status: str = "queued"
    #: The deterministic merged report (``done`` jobs only).
    report: Optional[dict] = None
    error: Optional[str] = None
    #: Append-only NDJSON event log (envelopes, in append order).
    events: List[dict] = field(default_factory=list)


class JobStore:
    """Thread-safe job registry plus the worker pool that drains it.

    Retention is bounded: at most ``max_finished`` terminal (``done`` /
    ``failed``) jobs are kept, oldest evicted first at submission time,
    so a long-running service's memory is bounded by the retention
    window — never by total jobs ever submitted.  Queued and running
    jobs are never evicted; an evicted id answers 404.
    """

    def __init__(self, workers: int = 2, max_finished: int = 256) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_finished < 1:
            raise ValueError("max_finished must be >= 1")
        self.max_finished = max_finished
        self._cond = threading.Condition()
        self._jobs: Dict[str, Job] = {}
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._ids = itertools.count(1)
        self._closed = False
        self.workers = workers
        self._threads = [
            threading.Thread(
                target=self._drain, name=f"repro-serve-job-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission and lookup ------------------------------------------------

    def submit(self, request: RunRequest) -> str:
        """Enqueue a validated run; returns the new job id."""
        with self._cond:
            if self._closed:
                raise RuntimeError("job store is shut down")
            job_id = f"run-{next(self._ids):06d}"
            job = Job(id=job_id, request=request)
            self._jobs[job_id] = job
            self._append(job, "queued", {"run_id": job_id,
                                         "request": request.summary})
            self._evict()
        self._queue.put(job_id)
        return job_id

    def _evict(self) -> None:
        """Drop the oldest terminal jobs beyond ``max_finished`` (lock
        held; runs on every submission and terminal transition).
        Followers mid-stream keep their Job reference — an evicted job
        is terminal, so they drain its fixed event log and finish; only
        new lookups see the 404."""
        terminal = [
            job_id
            for job_id, job in self._jobs.items()
            if job.status in _TERMINAL
        ]
        for job_id in terminal[: max(0, len(terminal) - self.max_finished)]:
            del self._jobs[job_id]

    def _get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJob(job_id)
        return job

    def snapshot(self, job_id: str) -> dict:
        """A consistent JSON-ready view of one job (``GET /v1/runs/<id>``)."""
        with self._cond:
            job = self._get(job_id)
            view: dict = {
                "id": job.id,
                "status": job.status,
                "request": dict(job.request.summary),
                "cells_done": sum(
                    1 for event in job.events if event["event"] == "cell"
                ),
                "cells": len(job.request.trace.tenants()),
            }
            if job.error is not None:
                view["error"] = job.error
            # The report sub-object is the engine's to_dict verbatim —
            # byte-identical to `repro replay` on the same seed.
            view["report"] = job.report
            return view

    def list(self) -> List[dict]:
        """Submission-ordered one-line summaries (``GET /v1/runs``)."""
        with self._cond:
            return [
                {
                    "id": job.id,
                    "status": job.status,
                    "url": f"/v1/runs/{job.id}",
                }
                for job in self._jobs.values()
            ]

    def counts(self) -> Dict[str, int]:
        """Jobs per state, every state present (``GET /healthz``)."""
        with self._cond:
            counts = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                counts[job.status] += 1
            return counts

    # -- event streaming ------------------------------------------------------

    def follow(
        self, job_id: str, poll_s: float = 0.25
    ) -> Iterator[dict]:
        """Yield a job's event envelopes: full history, then live.

        Terminates once the job is terminal and every event has been
        yielded.  ``poll_s`` bounds how long one wait sleeps, so a
        disconnected client is noticed promptly by the caller's write
        failing on the next yielded event.  The job resolves once, up
        front: eviction mid-stream cannot break an attached follower.
        """
        with self._cond:
            job = self._get(job_id)
        index = 0
        while True:
            with self._cond:
                while len(job.events) <= index and job.status not in _TERMINAL:
                    self._cond.wait(poll_s)
                batch = job.events[index:]
                index += len(batch)
                finished = job.status in _TERMINAL and index >= len(job.events)
            yield from batch
            if finished:
                return

    def _append(self, job: Job, kind: str, body: dict) -> None:
        """Append one envelope and wake subscribers (lock held)."""
        job.events.append(event_envelope(kind, body, seq=len(job.events)))
        self._cond.notify_all()

    # -- execution ------------------------------------------------------------

    def _drain(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            self._execute(self._jobs[job_id])

    def _execute(self, job: Job) -> None:
        request = job.request
        with self._cond:
            job.status = "running"
            self._append(job, "running", {"run_id": job.id})

        def on_cell(cell: CellResult) -> None:
            completed = failed = 0
            for record in cell.records:
                if record.completed:
                    completed += 1
                elif record.failed:
                    failed += 1
            with self._cond:
                self._append(
                    job,
                    "cell",
                    {
                        "run_id": job.id,
                        "cell": cell.key,
                        "offered": cell.offered,
                        "completed": completed,
                        "failed": failed,
                        "wall_s": round(cell.wall_s, 6),
                    },
                )

        try:
            # shards=workers keeps the static batched engine
            # (stream=False) actually parallel at the requested width;
            # the streaming engine ignores shards, and the merged
            # report is shard-invariant either way.
            result = run_parallel_replay(
                request.trace,
                request.spec,
                shards=request.workers,
                workers=request.workers,
                stream=request.stream,
                on_cell=on_cell,
            )
            report = result.to_dict()
            with self._cond:
                job.report = report
                job.status = "done"
                self._append(
                    job, "report", {"run_id": job.id, "report": report}
                )
                self._evict()
        except Exception as exc:  # noqa: BLE001 - a job must never kill its worker
            with self._cond:
                job.status = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
                self._append(
                    job, "error", {"run_id": job.id, "message": job.error}
                )
                self._evict()

    def close(self, timeout_s: float = 10.0) -> None:
        """Stop accepting jobs and join the worker threads."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=timeout_s)
