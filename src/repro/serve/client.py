"""Stdlib streaming client for the ``repro serve`` REST API.

The programmatic twin of the dashboard: submit a run, iterate its
NDJSON event stream as schema-validated envelopes, fetch the final
report — three calls, no dependencies beyond :mod:`urllib`.

    from repro.serve.client import ServeClient

    client = ServeClient("http://127.0.0.1:8080")
    run_id = client.submit({"app": "wc", "seed": 7, "tenants": 4})
    for event in client.events(run_id):
        print(event["event"], event.get("cell", ""))
    report = client.report(run_id)

:meth:`ServeClient.events` validates every line against the versioned
telemetry schema (:mod:`repro.metrics.telemetry`) and checks that
``seq`` is strictly increasing — a service that emitted an unknown
kind, the wrong schema version, or a seq regression (e.g. a broken
journal resume) raises :class:`~repro.metrics.telemetry.SchemaError`
instead of silently feeding consumers drifted data.  Keepalive comment
lines (``: keepalive``) are consumed and dropped, per the NDJSON/SSE
comment convention.

The CI observability smoke test drives a live server end-to-end through
this client; ``docs/observability.md`` documents it for external
consumers.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Iterator, Optional

from ..metrics.telemetry import SchemaError, validate_event

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A non-2xx response from the service (carries status + body)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """A thin, dependency-free client for one ``repro serve`` endpoint.

    ``base_url`` is the server root (``http://host:port``); every call
    opens its own connection, so one client is safe to share across
    threads.  ``timeout_s`` applies per socket operation — on the event
    stream that means "maximum silence between lines", which the
    server's keepalive comments keep comfortably short for idle runs.

    Transient failures retry transparently, up to ``retries`` extra
    attempts per call: admission-control pushback (``429``, honoring
    the server's ``Retry-After``), ``503``, and connection resets.  The
    backoff between attempts is ``Retry-After`` when the server sent
    one, else capped exponential from ``backoff_s``.  Anything else —
    including every other 4xx/5xx — raises :class:`ServeError`
    immediately.  ``retries=0`` disables retrying entirely.
    """

    #: HTTP statuses worth retrying: admission pushback + overload.
    _RETRY_STATUSES = (429, 503)
    #: Ceiling on one computed backoff pause, seconds.
    _MAX_BACKOFF_S = 5.0

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 60.0,
        retries: int = 3,
        backoff_s: float = 0.25,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s

    # -- plumbing -------------------------------------------------------------

    @staticmethod
    def _is_reset(error: BaseException) -> bool:
        """A dropped connection (bare, or wrapped by urllib)."""
        if isinstance(error, ConnectionResetError):
            return True
        return isinstance(error, urllib.error.URLError) and isinstance(
            getattr(error, "reason", None), ConnectionResetError
        )

    def _pause_s(self, attempt: int, retry_after: Optional[str]) -> float:
        """How long to wait before retry ``attempt`` (0-based)."""
        if retry_after is not None:
            try:
                return min(float(retry_after), self._MAX_BACKOFF_S)
            except ValueError:
                pass
        return min(self.backoff_s * 2.0 ** attempt, self._MAX_BACKOFF_S)

    def _request(
        self, path: str, body: Optional[dict] = None
    ) -> "urllib.request.http.client.HTTPResponse":
        data = None if body is None else json.dumps(body).encode("utf-8")
        for attempt in range(self.retries + 1):
            # urllib consumes the Request (and HTTPError bodies) on
            # failure — build a fresh one per attempt.
            request = urllib.request.Request(
                self.base_url + path,
                data=data,
                method="GET" if data is None else "POST",
                headers={} if data is None else {
                    "Content-Type": "application/json"
                },
            )
            try:
                return urllib.request.urlopen(
                    request, timeout=self.timeout_s
                )
            except urllib.error.HTTPError as error:
                raw = error.read()
                try:
                    message = json.loads(raw).get(
                        "error", raw.decode("utf-8")
                    )
                except (ValueError, UnicodeDecodeError):
                    message = raw.decode("utf-8", "replace")
                if (
                    error.code in self._RETRY_STATUSES
                    and attempt < self.retries
                ):
                    time.sleep(
                        self._pause_s(
                            attempt, error.headers.get("Retry-After")
                        )
                    )
                    continue
                raise ServeError(error.code, message) from None
            except (urllib.error.URLError, ConnectionResetError) as error:
                if self._is_reset(error) and attempt < self.retries:
                    time.sleep(self._pause_s(attempt, None))
                    continue
                raise
        raise AssertionError("unreachable: retry loop always returns/raises")

    def _json(self, path: str, body: Optional[dict] = None) -> dict:
        with self._request(path, body) as response:
            return json.loads(response.read())

    # -- the API surface ------------------------------------------------------

    def healthz(self) -> dict:
        """``GET /healthz``: liveness plus job-state counters."""
        return self._json("/healthz")

    def apps(self) -> list:
        """``GET /v1/apps``: the app registry, workflow DAGs included."""
        return self._json("/v1/apps")["apps"]

    def runs(self, page_size: Optional[int] = None) -> list:
        """``GET /v1/runs``: the full submission-ordered run listing.

        Pages through ``?cursor=&limit=`` transparently: callers always
        get the complete listing, the wire never carries more than
        ``page_size`` rows per response.  ``None`` lets the server
        return everything in one page.
        """
        rows: list = []
        cursor: Optional[str] = None
        while True:
            query = []
            if cursor is not None:
                query.append(f"cursor={cursor}")
            if page_size is not None:
                query.append(f"limit={page_size}")
            suffix = f"?{'&'.join(query)}" if query else ""
            payload = self._json(f"/v1/runs{suffix}")
            rows.extend(payload["runs"])
            cursor = payload.get("next_cursor")
            if cursor is None:
                return rows

    def records(
        self, run_id: str, page_size: int = 1000
    ) -> Iterator[dict]:
        """``GET /v1/runs/<id>/records``: yield a done run's records.

        Pages through ``?cursor=&limit=`` transparently, yielding one
        record payload at a time in the canonical merged order — the
        client never holds more than one page in memory.  Raises
        :class:`ServeError` (409) while the run is not done or once its
        records have left the server's retention window.
        """
        cursor = 0
        while True:
            payload = self._json(
                f"/v1/runs/{run_id}/records"
                f"?cursor={cursor}&limit={page_size}"
            )
            yield from payload["records"]
            cursor = payload.get("next_cursor")
            if cursor is None:
                return

    def submit(self, body: dict) -> str:
        """``POST /v1/runs``: submit a run body; returns the run id."""
        return self._json("/v1/runs", body)["id"]

    def status(self, run_id: str) -> dict:
        """``GET /v1/runs/<id>``: the job snapshot (status, report, ...)."""
        return self._json(f"/v1/runs/{run_id}")

    def report(self, run_id: str) -> dict:
        """The final merged report; raises if the run is not ``done``."""
        snapshot = self.status(run_id)
        if snapshot["status"] != "done":
            raise ServeError(
                409,
                f"run {run_id} is {snapshot['status']}, not done"
                + (f": {snapshot['error']}" if snapshot.get("error") else ""),
            )
        return snapshot["report"]

    def metrics_text(self) -> str:
        """``GET /metrics``: the Prometheus text exposition, verbatim."""
        with self._request("/metrics") as response:
            return response.read().decode("utf-8")

    def events(
        self, run_id: str, validate: bool = True
    ) -> Iterator[dict]:
        """``GET /v1/runs/<id>/events``: yield envelopes to terminality.

        Streams one validated dict per NDJSON line — full history
        first, then live — and returns when the server closes the
        stream (the run reached a terminal state).  Keepalive comment
        lines are skipped.  With ``validate=True`` (default) each
        envelope must pass :func:`~repro.metrics.telemetry.\
validate_event` and carry a ``seq`` strictly greater than the previous
        line's; violations raise :class:`SchemaError`.
        """
        last_seq = -1
        with self._request(f"/v1/runs/{run_id}/events") as response:
            for raw in response:
                line = raw.decode("utf-8").strip()
                if not line or line.startswith(":"):
                    continue  # keepalive / comment line
                try:
                    envelope = json.loads(line)
                except ValueError as exc:
                    raise SchemaError(
                        f"event stream line is not JSON: {line!r} ({exc})"
                    ) from None
                if validate:
                    validate_event(envelope)
                    if envelope["seq"] <= last_seq:
                        raise SchemaError(
                            f"event seq went backwards: {envelope['seq']} "
                            f"after {last_seq} (kind {envelope['event']!r})"
                        )
                    last_seq = envelope["seq"]
                yield envelope

    def run(self, body: dict) -> dict:
        """Submit, drain the event stream, return the final report.

        The convenience one-liner: schema-validates every event on the
        way through, then fetches the terminal snapshot — raising
        :class:`ServeError` if the run failed rather than returning a
        partial result.
        """
        run_id = self.submit(body)
        for _ in self.events(run_id):
            pass
        return self.report(run_id)
