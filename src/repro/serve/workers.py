"""The control plane's remote worker fleet: registry, leases, requeue.

``repro serve --workers remote`` splits execution out of the service
process: cells queue here instead of feeding a local pool, and remote
``repro worker`` processes pull them over HTTP — register (``POST
/v1/workers``), long-poll for a cell lease (``POST /v1/cells/lease``),
execute it with the ordinary picklable
:class:`~repro.parallel.spec.ReplaySpec` machinery, and deliver the
:meth:`~repro.parallel.engine.CellResult.to_payload` round-trip back
(``POST /v1/cells/<lease>/result``).  See ``docs/workers.md``.

The registry's job is to make worker death boring:

* Every lease carries a **deadline** (``lease_timeout_s`` past grant).
  A lease that passes its deadline without a result is reclaimed and
  the cell is **requeued at the next attempt number** — byte-identical
  to a local retry, because ``cell_seed`` is a function of (spec, cell)
  alone.  A cell whose retry budget runs out becomes a deterministic
  :class:`~repro.parallel.resilience.CellFailure` of kind
  ``lease-expired``.
* Every worker carries a **heartbeat deadline** (``heartbeat_timeout_s``
  past its last contact).  A silent worker is evicted and its active
  leases expire immediately — a SIGKILLed worker's cells move to a
  survivor after at most one lease timeout.
* A result for a lease that already expired is rejected (the cell was
  re-leased; accepting both would double-fold).  Exactly one result per
  cell ever reaches the fold, which is what keeps journal records and
  merged reports exactly-once.

Determinism and testability: the registry never reads the wall clock
directly — it takes a ``clock`` callable (default ``time.monotonic``),
so lease expiry, requeue, and dead-worker eviction are tested with a
fake clock and zero sleeps (``tests/test_worker_fleet.py``).  Expiry is
driven opportunistically: every public entry point sweeps first, and
the blocking :meth:`WorkerRegistry.results` fold loop sweeps on a
bounded wait, so no background sweeper thread exists to race the fake
clock.
"""

from __future__ import annotations

import hmac
import secrets
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterator, List, Optional, Union

from ..parallel.engine import CellResult
from ..parallel.resilience import FAILURE_KINDS, CellFailure, RetryPolicy

__all__ = [
    "FleetCancelled",
    "FleetJob",
    "StaleLease",
    "UnknownWorker",
    "WorkerAuthError",
    "WorkerRegistry",
]

#: An outcome the registry delivers to the fold loop.
Outcome = Union[CellResult, CellFailure]


class UnknownWorker(KeyError):
    """A worker id the registry does not know (never seen, or evicted)."""

    def __init__(self, worker_id: str) -> None:
        super().__init__(worker_id)
        self.worker_id = worker_id

    def __str__(self) -> str:
        return (
            f"unknown worker {self.worker_id!r} (never registered, or "
            f"evicted after missing heartbeats; re-register)"
        )


class StaleLease(KeyError):
    """A lease id that is not active (expired, delivered, or invented).

    The holder's result is rejected: the cell either already folded or
    was re-leased to another worker, and accepting a second result
    would break the exactly-once fold.
    """

    def __init__(self, lease_id: str) -> None:
        super().__init__(lease_id)
        self.lease_id = lease_id

    def __str__(self) -> str:
        return (
            f"lease {self.lease_id!r} is not active (expired and "
            f"requeued, or already completed)"
        )


class WorkerAuthError(PermissionError):
    """A fleet request whose secret does not match the worker's.

    Registration mints a per-worker secret; the HTTP layer requires it
    on every later heartbeat/lease/result call (``403`` on mismatch),
    so a host that merely knows a worker id — they are public in
    ``GET /v1/workers`` — cannot post forged results or errors as that
    worker.  See the trust-model section of ``docs/workers.md``.
    """

    def __init__(self, worker_id: str) -> None:
        super().__init__(worker_id)
        self.worker_id = worker_id

    def __str__(self) -> str:
        return (
            f"bad or missing secret for worker {self.worker_id!r}; send "
            f"the 'secret' issued at registration"
        )


class FleetCancelled(RuntimeError):
    """The fleet shut down (or the job was cancelled) mid-fold.

    Distinct from a run failure: the control plane maps it to an
    *interrupted* run, which the durable journal resumes on restart.
    """


@dataclass
class _Worker:
    id: str
    name: Optional[str]
    registered_at: float
    last_seen: float
    #: The per-worker shared secret minted at registration; never
    #: exposed through :meth:`WorkerRegistry.snapshot`.
    secret: str = ""
    leases: set = field(default_factory=set)


@dataclass
class _Lease:
    id: str
    worker_id: str
    job: "FleetJob"
    key: str
    attempt: int
    deadline: float


@dataclass
class _PendingCell:
    job: "FleetJob"
    key: str
    attempt: int


class FleetJob:
    """One remote run's cell bookkeeping inside the registry."""

    def __init__(
        self, job_id: str, payload: dict, cells: List[str], retry: RetryPolicy
    ) -> None:
        self.id = job_id
        #: The validated ``POST /v1/runs`` payload shipped to workers so
        #: they rebuild the exact same ReplaySpec — with the server-level
        #: ``--tenant-config`` injected inline when the body carried
        #: none, since workers re-validate the payload with no server
        #: defaults in scope.
        self.payload = payload
        self.retry = retry
        self.expected = len(cells)
        self.delivered = 0
        self.outcomes: Deque[Outcome] = deque()
        self.cancelled = False

    @property
    def done(self) -> bool:
        return self.delivered >= self.expected and not self.outcomes


class WorkerRegistry:
    """Leases, heartbeats, and requeue for a remote worker fleet.

    Thread-safe; every public method is opportunistically an expiry
    sweep (late leases reclaimed, silent workers evicted) before it does
    its own work, so progress never depends on a timer thread.

    ``on_event(job_id, kind, body)`` — when given — fires *outside* the
    registry lock for every ``lease`` / ``lease_expired`` occurrence, so
    the control plane can mirror fleet activity onto a run's event
    stream without lock-order coupling.
    """

    def __init__(
        self,
        lease_timeout_s: float = 30.0,
        heartbeat_timeout_s: float = 90.0,
        clock: Callable[[], float] = time.monotonic,
        metrics=None,
        on_event: Optional[Callable[[str, str, dict], None]] = None,
    ) -> None:
        if lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be positive")
        if heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be positive")
        self.lease_timeout_s = float(lease_timeout_s)
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self._clock = clock
        self._metrics = metrics
        self._on_event = on_event
        self._cond = threading.Condition()
        self._closed = False
        self._workers: Dict[str, _Worker] = {}
        self._leases: Dict[str, _Lease] = {}
        self._pending: Deque[_PendingCell] = deque()
        self._jobs: Dict[str, FleetJob] = {}
        self._next_worker = 0
        self._next_lease = 0

    # -- internal helpers (call under self._cond) -----------------------------

    def _counter(self, name: str, **labels: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name, **labels).inc()

    def _set_worker_gauge(self) -> None:
        if self._metrics is not None:
            self._metrics.gauge("repro_workers_registered").set(
                len(self._workers)
            )

    def _deliver(self, job: FleetJob, outcome: Outcome) -> None:
        if job.cancelled:
            return
        job.outcomes.append(outcome)
        job.delivered += 1
        self._cond.notify_all()

    def _requeue(self, lease: _Lease, kind: str, message: str) -> bool:
        """Charge one attempt; requeue the cell or fail it terminally.

        Returns whether the cell was requeued (budget left).
        """
        job = lease.job
        if job.cancelled:
            return False
        if lease.attempt < job.retry.max_attempts:
            self._pending.append(
                _PendingCell(job=job, key=lease.key, attempt=lease.attempt + 1)
            )
            self._counter("repro_cell_retries_total")
            self._cond.notify_all()
            return True
        self._deliver(
            job,
            CellFailure(
                key=lease.key,
                kind=kind,
                attempts=lease.attempt,
                message=message,
            ),
        )
        return False

    def _expire_locked(self, now: float, events: List[tuple]) -> None:
        """Reclaim overdue leases and evict silent workers."""
        for worker in [
            w
            for w in self._workers.values()
            if now - w.last_seen >= self.heartbeat_timeout_s
        ]:
            del self._workers[worker.id]
            self._counter("repro_workers_evicted_total")
            # A dead worker's leases expire now — waiting out the lease
            # deadline would only delay the requeue.
            for lease_id in list(worker.leases):
                lease = self._leases.get(lease_id)
                if lease is not None:
                    lease.deadline = now
        self._set_worker_gauge()
        for lease in [
            l for l in self._leases.values() if now >= l.deadline
        ]:
            del self._leases[lease.id]
            worker = self._workers.get(lease.worker_id)
            if worker is not None:
                worker.leases.discard(lease.id)
            self._counter("repro_leases_expired_total")
            requeued = self._requeue(
                lease,
                kind="lease-expired",
                message=(
                    f"lease on cell {lease.key!r} expired before a result "
                    f"arrived"
                ),
            )
            events.append(
                (
                    lease.job.id,
                    "lease_expired",
                    {
                        "run_id": lease.job.id,
                        "cell": lease.key,
                        "worker": lease.worker_id,
                        "attempt": lease.attempt,
                        "requeued": requeued,
                    },
                )
            )

    def _next_deadline(self) -> Optional[float]:
        deadlines = [lease.deadline for lease in self._leases.values()]
        if self._workers:
            deadlines.extend(
                w.last_seen + self.heartbeat_timeout_s
                for w in self._workers.values()
            )
        return min(deadlines) if deadlines else None

    def _flush_events(self, events: List[tuple]) -> None:
        if self._on_event is not None:
            for job_id, kind, body in events:
                self._on_event(job_id, kind, body)

    # -- worker-facing surface -------------------------------------------------

    def register(self, name: Optional[str] = None) -> dict:
        """Admit a worker; returns its id, its secret, and the fleet's
        timing contract.

        The ``secret`` is the worker's proof of identity for the rest of
        its life: the HTTP layer demands it on heartbeat/lease/result
        calls (:meth:`verify_secret`), so worker ids — which the fleet
        snapshot publishes — are not enough to impersonate a worker.
        """
        events: List[tuple] = []
        with self._cond:
            if self._closed:
                raise FleetCancelled("worker fleet is shut down")
            self._expire_locked(self._clock(), events)
            self._next_worker += 1
            worker_id = f"w-{self._next_worker:06d}"
            now = self._clock()
            secret = secrets.token_hex(16)
            self._workers[worker_id] = _Worker(
                id=worker_id,
                name=str(name) if name else None,
                registered_at=now,
                last_seen=now,
                secret=secret,
            )
            self._set_worker_gauge()
        self._flush_events(events)
        return {
            "worker": worker_id,
            "secret": secret,
            "lease_timeout_s": self.lease_timeout_s,
            "heartbeat_timeout_s": self.heartbeat_timeout_s,
        }

    def verify_secret(self, worker_id: str, secret: Optional[str]) -> None:
        """Raise :class:`WorkerAuthError` unless ``secret`` matches.

        An *unknown* worker id passes: the caller's own lookup then
        raises the accurate :class:`UnknownWorker`/:class:`StaleLease`,
        and the auth path leaks nothing about which ids are live that
        the fleet snapshot doesn't already publish.
        """
        with self._cond:
            worker = self._workers.get(worker_id)
            expected = None if worker is None else worker.secret
        if expected is not None and not hmac.compare_digest(
            expected, secret or ""
        ):
            raise WorkerAuthError(worker_id)

    def heartbeat(self, worker_id: str) -> dict:
        """Refresh a worker's liveness deadline."""
        events: List[tuple] = []
        with self._cond:
            self._expire_locked(self._clock(), events)
            worker = self._workers.get(worker_id)
            if worker is not None:
                worker.last_seen = self._clock()
                leases = len(worker.leases)
        self._flush_events(events)
        if worker is None:
            raise UnknownWorker(worker_id)
        return {"worker": worker_id, "leases": leases}

    def lease(self, worker_id: str, wait_s: float = 0.0) -> Optional[dict]:
        """Grant the next queued cell to ``worker_id``, or ``None``.

        Long-poll semantics: blocks up to ``wait_s`` for a cell to
        appear (new run submitted, or an expired lease requeued).  Every
        wake-up counts as worker contact, so a long-polling worker needs
        no separate heartbeat traffic to stay live.
        """
        deadline = self._clock() + max(0.0, wait_s)
        while True:
            events: List[tuple] = []
            grant: Optional[dict] = None
            unknown = False
            waited = False
            with self._cond:
                now = self._clock()
                self._expire_locked(now, events)
                worker = self._workers.get(worker_id)
                if worker is None:
                    unknown = True
                else:
                    worker.last_seen = now
                    while self._pending and self._pending[0].job.cancelled:
                        self._pending.popleft()
                    if self._pending:
                        cell = self._pending.popleft()
                        self._next_lease += 1
                        lease = _Lease(
                            id=f"l-{self._next_lease:08d}",
                            worker_id=worker_id,
                            job=cell.job,
                            key=cell.key,
                            attempt=cell.attempt,
                            deadline=now + self.lease_timeout_s,
                        )
                        self._leases[lease.id] = lease
                        worker.leases.add(lease.id)
                        self._counter("repro_leases_granted_total")
                        events.append(
                            (
                                cell.job.id,
                                "lease",
                                {
                                    "run_id": cell.job.id,
                                    "cell": cell.key,
                                    "worker": worker_id,
                                    "attempt": cell.attempt,
                                },
                            )
                        )
                        grant = {
                            "lease": lease.id,
                            "run_id": cell.job.id,
                            "cell": cell.key,
                            "attempt": cell.attempt,
                            "request": cell.job.payload,
                        }
                    elif not self._closed and deadline - now > 0:
                        # Wake in bounded steps so the next lease or
                        # heartbeat deadline is observed even while
                        # blocked in a long poll.
                        self._cond.wait(min(deadline - now, 0.25))
                        waited = True
            self._flush_events(events)
            if unknown:
                raise UnknownWorker(worker_id)
            if grant is not None or not waited:
                return grant

    def complete(
        self,
        lease_id: str,
        worker_id: str,
        result: Optional[dict] = None,
        error: Optional[dict] = None,
    ) -> dict:
        """Deliver a leased cell's outcome (result payload xor error)."""
        if (result is None) == (error is None):
            raise ValueError("exactly one of result/error must be given")
        cell: Optional[CellResult] = None
        if result is not None:
            cell = CellResult.from_payload(result)
        else:
            kind = str(error.get("kind", "app-error"))
            if kind not in FAILURE_KINDS:
                raise ValueError(
                    f"unknown failure kind {kind!r}; expected one "
                    f"of {list(FAILURE_KINDS)}"
                )
            message = str(error.get("message", ""))
        events: List[tuple] = []
        try:
            with self._cond:
                self._expire_locked(self._clock(), events)
                worker = self._workers.get(worker_id)
                if worker is not None:
                    worker.last_seen = self._clock()
                lease = self._leases.get(lease_id)
                if lease is None or lease.worker_id != worker_id:
                    self._counter("repro_lease_results_total", status="stale")
                    raise StaleLease(lease_id)
                if cell is not None and cell.key != lease.key:
                    raise ValueError(
                        f"lease {lease_id!r} covers cell {lease.key!r}, "
                        f"got a result for {cell.key!r}"
                    )
                del self._leases[lease_id]
                if worker is not None:
                    worker.leases.discard(lease_id)
                if cell is not None:
                    self._counter("repro_lease_results_total", status="ok")
                    self._deliver(lease.job, cell)
                else:
                    self._counter("repro_lease_results_total", status="error")
                    self._requeue(lease, kind=kind, message=message)
        finally:
            self._flush_events(events)
        return {"lease": lease_id, "cell": lease.key}

    def snapshot(self) -> dict:
        """The fleet as JSON (``GET /v1/workers``): workers, queue, leases."""
        events: List[tuple] = []
        with self._cond:
            self._expire_locked(self._clock(), events)
            workers = [
                {
                    "id": worker.id,
                    "name": worker.name,
                    "leases": sorted(
                        self._leases[lease_id].key
                        for lease_id in worker.leases
                        if lease_id in self._leases
                    ),
                }
                for worker in sorted(
                    self._workers.values(), key=lambda w: w.id
                )
            ]
            payload = {
                "workers": workers,
                "queued_cells": len(self._pending),
                "active_leases": len(self._leases),
                "lease_timeout_s": self.lease_timeout_s,
                "heartbeat_timeout_s": self.heartbeat_timeout_s,
            }
        self._flush_events(events)
        return payload

    # -- control-plane surface -------------------------------------------------

    def submit(
        self,
        job_id: str,
        payload: dict,
        cells: List[str],
        retry: Optional[RetryPolicy] = None,
    ) -> FleetJob:
        """Queue a run's remaining cells for the fleet, FIFO."""
        job = FleetJob(
            job_id, payload, list(cells), retry if retry is not None
            else RetryPolicy()
        )
        with self._cond:
            if self._closed:
                raise FleetCancelled("worker fleet is shut down")
            self._jobs[job_id] = job
            for key in cells:
                self._pending.append(_PendingCell(job=job, key=key, attempt=1))
            self._cond.notify_all()
        return job

    def results(self, job: FleetJob) -> Iterator[Outcome]:
        """Block-iterate a job's outcomes until every cell resolved.

        The fold loop's entry point: yields exactly one outcome per
        submitted cell (a :class:`CellResult` or a terminal
        :class:`CellFailure`), in delivery order.  The wait doubles as
        the expiry sweep for the whole registry, so leases are reclaimed
        even when every worker is dead and no HTTP request will ever
        arrive again.  Raises :class:`FleetCancelled` when the job is
        cancelled or the registry closes mid-run.
        """
        while True:
            events: List[tuple] = []
            outcome: Optional[Outcome] = None
            with self._cond:
                now = self._clock()
                self._expire_locked(now, events)
                if job.outcomes:
                    outcome = job.outcomes.popleft()
                elif job.cancelled or self._closed:
                    self._flush_events(events)
                    raise FleetCancelled(
                        f"remote run {job.id!r} was cancelled"
                    )
                elif job.done:
                    self._flush_events(events)
                    return
                else:
                    next_deadline = self._next_deadline()
                    timeout = 0.25
                    if next_deadline is not None:
                        timeout = min(timeout, max(0.01, next_deadline - now))
                    self._cond.wait(timeout)
            self._flush_events(events)
            if outcome is not None:
                yield outcome

    def finish(self, job: FleetJob) -> None:
        """Drop a job's bookkeeping (fold done, failed, or cancelled)."""
        with self._cond:
            job.cancelled = True
            self._jobs.pop(job.id, None)
            self._pending = deque(
                cell for cell in self._pending if cell.job is not job
            )
            for lease_id in [
                lease_id
                for lease_id, lease in self._leases.items()
                if lease.job is job
            ]:
                lease = self._leases.pop(lease_id)
                worker = self._workers.get(lease.worker_id)
                if worker is not None:
                    worker.leases.discard(lease_id)
            self._cond.notify_all()

    def expire(self, now: Optional[float] = None) -> None:
        """Run one expiry sweep explicitly (tests drive fake clocks here)."""
        events: List[tuple] = []
        with self._cond:
            self._expire_locked(
                self._clock() if now is None else now, events
            )
        self._flush_events(events)

    def close(self) -> None:
        """Shut the fleet down: cancel every job, wake every waiter."""
        with self._cond:
            self._closed = True
            for job in self._jobs.values():
                job.cancelled = True
            self._jobs.clear()
            self._pending.clear()
            self._leases.clear()
            for worker in self._workers.values():
                worker.leases.clear()
            self._cond.notify_all()
