"""The HTTP front-end: stdlib ``ThreadingHTTPServer`` + route table.

``repro serve`` turns the simulator into a long-running orchestration
service (the DataFlower premise: orchestration is a persistent service
reacting to data availability, not a batch script).  The surface is
deliberately small and fully documented in ``docs/serve.md``:

=======  =====================  ==========================================
method   path                   purpose
=======  =====================  ==========================================
GET      /healthz               liveness + job-state counters
GET      /metrics               Prometheus text exposition of the registry
GET      /dashboard             live telemetry dashboard (static HTML)
GET      /v1/apps               the app registry (``repro apps``)
GET      /v1/systems            the system registry (``repro systems``)
GET      /v1/policies           placement + shard policy registries
GET      /v1/runs               submission-ordered job listing (paginated)
POST     /v1/runs               submit a run (202 + job id)
GET      /v1/runs/<id>          job status + the merged report
GET      /v1/runs/<id>/events   NDJSON progress stream (per-cell events)
GET      /v1/runs/<id>/records  paginated merged request records
GET      /v1/workers            remote worker fleet snapshot
POST     /v1/workers            register a remote worker
POST     /v1/workers/<id>/heartbeat  worker liveness refresh
POST     /v1/cells/lease        lease the next queued cell (long poll)
POST     /v1/cells/<lease>/result    deliver a leased cell's outcome
=======  =====================  ==========================================

Dependency-free by design: :mod:`http.server` handles the transport,
one daemon thread per connection, and the shared
:class:`~repro.serve.jobs.JobStore` owns all cross-request state —
optionally backed by a durable run journal
(:mod:`repro.serve.journal`, ``repro serve --journal``) so runs survive
restarts and resume from completed cells.
``tools/check_docs.py`` asserts every route in :data:`ROUTES` appears
in ``docs/serve.md``, so the table above cannot drift from the docs.
"""

from __future__ import annotations

import json
import re
from functools import lru_cache
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..metrics.report import render_event, render_json
from ..parallel.profiles import TenantConfig
from .jobs import AdmissionDenied, JobStore, RecordsUnavailable, UnknownJob
from .journal import RunJournal
from .validation import BadRequest, parse_run_request
from .workers import (
    FleetCancelled,
    StaleLease,
    UnknownWorker,
    WorkerAuthError,
)

__all__ = ["ROUTES", "ReproServer", "create_server"]

#: Every route the service answers: ``(method, path pattern, summary)``.
#: ``tools/check_docs.py`` fails if a pattern here has no matching
#: section in ``docs/serve.md`` — the docs are part of the API.
ROUTES = [
    ("GET", "/healthz", "liveness and job-state counters"),
    ("GET", "/metrics", "Prometheus text exposition of the metrics registry"),
    ("GET", "/dashboard", "live telemetry dashboard (single static page)"),
    ("GET", "/v1/apps", "registered applications"),
    ("GET", "/v1/systems", "execution systems"),
    ("GET", "/v1/policies", "placement and shard policies"),
    ("GET", "/v1/runs", "submission-ordered job listing (paginated)"),
    ("POST", "/v1/runs", "submit a run"),
    ("GET", "/v1/runs/<id>", "job status plus the merged report"),
    ("GET", "/v1/runs/<id>/events", "NDJSON progress stream"),
    ("GET", "/v1/runs/<id>/records", "paginated merged request records"),
    ("GET", "/v1/workers", "remote worker fleet snapshot"),
    ("POST", "/v1/workers", "register a remote worker"),
    ("POST", "/v1/workers/<id>/heartbeat", "worker liveness refresh"),
    ("POST", "/v1/cells/lease", "lease the next queued cell (long poll)"),
    ("POST", "/v1/cells/<lease>/result", "deliver a leased cell's outcome"),
]

#: Largest accepted request body; a trace bigger than this belongs on
#: disk and in `repro replay`, not inline in one POST.
MAX_BODY_BYTES = 64 * 1024 * 1024

_RUN_PATH = re.compile(r"^/v1/runs/([^/]+)$")
_EVENTS_PATH = re.compile(r"^/v1/runs/([^/]+)/events$")
_RECORDS_PATH = re.compile(r"^/v1/runs/([^/]+)/records$")
_HEARTBEAT_PATH = re.compile(r"^/v1/workers/([^/]+)/heartbeat$")
_RESULT_PATH = re.compile(r"^/v1/cells/([^/]+)/result$")

#: Longest lease long-poll one HTTP request may hold a thread for.
MAX_LEASE_WAIT_S = 30.0

#: ``GET /v1/runs/<id>/records`` page-size ceiling; a client asking for
#: more gets clamped, keeping one response body bounded.
MAX_RECORDS_PAGE = 10_000


@lru_cache(maxsize=1)
def _registry_payloads() -> Tuple[list, list, dict]:
    """(apps, systems, policies) registry listings, JSON-ready.

    The registries are static for the process lifetime, and building
    the apps listing constructs every registered workflow — cache the
    whole table instead of rebuilding it per GET.  Handlers treat the
    cached payloads as read-only.
    """
    from ..apps import registered_apps
    from ..experiments.common import SYSTEM_CLASSES
    from ..parallel.policy import shard_policy_names
    from ..systems.placement import policy_names

    apps = []
    for spec in registered_apps():
        workflow = spec.build()
        apps.append(
            {
                "name": spec.short_name,
                "title": spec.title,
                "functions": len(workflow.functions),
                "default_input_bytes": spec.default_input_bytes,
                "default_fanout": spec.default_fanout,
                # The declared DAG, topologically ordered — the
                # dashboard's workflow view renders straight from this.
                "workflow": {
                    "entry": workflow.entry,
                    "functions": [
                        {
                            "name": name,
                            "edges": [
                                {
                                    "data": edge.dataname,
                                    "kind": edge.kind.name,
                                    "to": list(edge.destinations),
                                }
                                for edge in workflow.functions[name].edges
                            ],
                        }
                        for name in workflow.topological_order()
                    ],
                },
            }
        )
    systems = [
        {
            "name": name,
            "class": cls.__name__,
            "summary": (cls.__doc__ or "").strip().splitlines()[0],
        }
        for name, cls in SYSTEM_CLASSES.items()
    ]
    policies = {
        "placement": policy_names(),
        "shard": shard_policy_names(),
    }
    return apps, systems, policies


class _Handler(BaseHTTPRequestHandler):
    """Route dispatch; all state lives on ``self.server`` (the store)."""

    server: "ReproServer"
    # HTTP/1.0 keeps the NDJSON stream simple: no Content-Length means
    # "read until the server closes the connection".
    protocol_version = "HTTP/1.0"

    # -- plumbing -------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)

    def _send_json(
        self,
        status: int,
        payload: object,
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        body = (render_json(payload) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self,
        status: int,
        message: str,
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        self._send_json(status, {"error": message}, headers=headers)

    def _query(self) -> dict:
        """Last-wins flat view of the request's query string."""
        return {
            key: values[-1]
            for key, values in parse_qs(urlsplit(self.path).query).items()
        }

    @staticmethod
    def _query_int(query: dict, key: str, minimum: int) -> Optional[int]:
        value = query.get(key)
        if value is None:
            return None
        try:
            parsed = int(value)
        except ValueError:
            raise BadRequest(
                f"query parameter {key!r} must be an integer, got {value!r}"
            ) from None
        if parsed < minimum:
            raise BadRequest(
                f"query parameter {key!r} must be >= {minimum}, got {parsed}"
            )
        return parsed

    # -- GET ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        try:
            if path == "/healthz":
                store = self.server.store
                counts = store.counts()
                # Load balancers shed on ready=false *before* clients
                # hit the 429 path: the flag flips as soon as the run
                # queue saturates (docs/robustness.md).
                ready = (
                    store.max_queued is None
                    or counts["queued"] < store.max_queued
                )
                return self._send_json(
                    200,
                    {
                        "status": "ok",
                        "ready": ready,
                        "jobs": counts,
                        "workers": store.workers,
                        "queued": counts["queued"],
                        "rejected": store.rejected,
                        "max_queued": store.max_queued,
                    },
                )
            if path in ("/v1/apps", "/v1/systems", "/v1/policies"):
                apps, systems, policies = _registry_payloads()
                payload = {
                    "/v1/apps": {"apps": apps},
                    "/v1/systems": {"systems": systems},
                    "/v1/policies": {"policies": policies},
                }[path]
                return self._send_json(200, payload)
            if path == "/metrics":
                store = self.server.store
                store.refresh_gauges()
                body = store.metrics.render_prometheus().encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type",
                    "text/plain; version=0.0.4; charset=utf-8",
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                return None
            if path == "/dashboard":
                if not self.server.dashboard:
                    return self._send_error_json(
                        404, "dashboard disabled (--no-dashboard)"
                    )
                from .dashboard import dashboard_html

                body = dashboard_html().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", "text/html; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                return None
            if path == "/v1/runs":
                query = self._query()
                limit = self._query_int(query, "limit", minimum=1)
                runs, next_cursor = self.server.store.list_page(
                    cursor=query.get("cursor"), limit=limit
                )
                return self._send_json(
                    200, {"runs": runs, "next_cursor": next_cursor}
                )
            match = _EVENTS_PATH.match(path)
            if match:
                return self._stream_events(match.group(1))
            match = _RECORDS_PATH.match(path)
            if match:
                query = self._query()
                cursor = self._query_int(query, "cursor", minimum=0) or 0
                limit = self._query_int(query, "limit", minimum=1)
                limit = min(limit or 1000, MAX_RECORDS_PAGE)
                return self._send_json(
                    200,
                    self.server.store.records_page(
                        match.group(1), cursor=cursor, limit=limit
                    ),
                )
            if path == "/v1/workers":
                return self._send_json(
                    200, self.server.store.fleet.snapshot()
                )
            match = _RUN_PATH.match(path)
            if match:
                return self._send_json(
                    200, self.server.store.snapshot(match.group(1))
                )
            self._send_error_json(404, f"no such path: {path}")
        except BadRequest as exc:
            self._send_error_json(400, str(exc))
        except RecordsUnavailable as exc:
            self._send_error_json(409, str(exc))
        except UnknownJob as exc:
            self._send_error_json(404, f"no such run: {exc.args[0]}")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response

    def _stream_events(self, job_id: str) -> None:
        """``GET /v1/runs/<id>/events``: one envelope per NDJSON line.

        The full history replays first (a late subscriber misses
        nothing), then lines follow live until the job is terminal.
        The response carries no Content-Length — end-of-stream is the
        connection closing.  While the run is quiet, a ``: keepalive``
        comment line goes out every ``keepalive_s`` so followers can
        distinguish an idle run from a dead connection (NDJSON
        consumers skip lines starting with ``:``).
        """
        store = self.server.store
        follower = store.follow(job_id, keepalive_s=self.server.keepalive_s)
        try:
            first = next(follower)
        except StopIteration:  # pragma: no cover - jobs always log 'queued'
            first = None
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        if first is not None:
            self.wfile.write((render_event(first) + "\n").encode("utf-8"))
            self.wfile.flush()
        for envelope in follower:
            if envelope is None:
                self.wfile.write(b": keepalive\n")
            else:
                self.wfile.write(
                    (render_event(envelope) + "\n").encode("utf-8")
                )
            self.wfile.flush()

    # -- POST -----------------------------------------------------------------

    def _read_body(self) -> Optional[dict]:
        """The POST body as a JSON object (``{}`` for an empty body).

        Returns ``None`` after answering the error itself — the caller
        just bails out.
        """
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._send_error_json(
                411, "a POST here needs a Content-Length body"
            )
            return None
        if length < 0:
            # rfile.read(-1) would block until client EOF, pinning
            # this connection thread forever.
            self._send_error_json(400, f"invalid Content-Length: {length}")
            return None
        if length > MAX_BODY_BYTES:
            self._send_error_json(
                413,
                f"request body over {MAX_BODY_BYTES} bytes; replay "
                f"large traces from disk via the CLI",
            )
            return None
        raw = self.rfile.read(length)
        if not raw:
            return {}
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            self._send_error_json(400, f"invalid JSON body: {exc}")
            return None
        if not isinstance(payload, dict):
            self._send_error_json(
                400,
                f"request body must be a JSON object, got "
                f"{type(payload).__name__}",
            )
            return None
        return payload

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        try:
            if path == "/v1/runs":
                return self._post_run()
            if path == "/v1/workers":
                return self._post_register()
            if path == "/v1/cells/lease":
                return self._post_lease()
            match = _HEARTBEAT_PATH.match(path)
            if match:
                return self._post_heartbeat(match.group(1))
            match = _RESULT_PATH.match(path)
            if match:
                return self._post_result(match.group(1))
            self._send_error_json(404, f"no such path: {path}")
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _post_run(self) -> None:
        payload = self._read_body()
        if payload is None:
            return
        try:
            request = parse_run_request(
                payload, self.server.default_tenant_config
            )
        except BadRequest as exc:
            return self._send_error_json(400, str(exc))
        try:
            job_id = self.server.store.submit(request)
        except AdmissionDenied as exc:
            # 429 + Retry-After is the documented backpressure
            # contract (docs/robustness.md); ServeClient honors it.
            retry_after = max(1, int(round(exc.retry_after_s)))
            return self._send_error_json(
                429, str(exc),
                headers=(("Retry-After", str(retry_after)),),
            )
        self._send_json(
            202,
            {
                "id": job_id,
                "status": "queued",
                "url": f"/v1/runs/{job_id}",
                "events_url": f"/v1/runs/{job_id}/events",
            },
        )

    # -- remote worker fleet (docs/workers.md) --------------------------------

    def _post_register(self) -> None:
        """``POST /v1/workers``: admit a worker into the fleet.

        The response carries the worker's per-registration ``secret``;
        every later fleet POST must echo it or is refused 403
        (``docs/workers.md``, "Trust model").
        """
        payload = self._read_body()
        if payload is None:
            return
        name = payload.get("name")
        if name is not None and not isinstance(name, str):
            return self._send_error_json(
                400, f"'name' must be a string, got {type(name).__name__}"
            )
        try:
            grant = self.server.store.fleet.register(name)
        except FleetCancelled as exc:
            return self._send_error_json(503, str(exc))
        self._send_json(200, grant)

    def _check_secret(self, worker_id: str, payload: dict) -> bool:
        """Enforce the per-worker secret on a fleet POST.

        Answers the 400/403 itself and returns False when the request
        must not proceed.  The check lives at the HTTP layer: in-process
        registry users (tests, the docs' executable block) are inside
        the trust boundary already.
        """
        secret = payload.get("secret")
        if secret is not None and not isinstance(secret, str):
            self._send_error_json(
                400,
                f"'secret' must be a string, got {type(secret).__name__}",
            )
            return False
        try:
            self.server.store.fleet.verify_secret(worker_id, secret)
        except WorkerAuthError as exc:
            self._send_error_json(403, str(exc))
            return False
        return True

    def _post_heartbeat(self, worker_id: str) -> None:
        """``POST /v1/workers/<id>/heartbeat``: refresh liveness."""
        payload = self._read_body()
        if payload is None:
            return
        if not self._check_secret(worker_id, payload):
            return
        try:
            self._send_json(
                200, self.server.store.fleet.heartbeat(worker_id)
            )
        except UnknownWorker as exc:
            self._send_error_json(404, str(exc))

    def _post_lease(self) -> None:
        """``POST /v1/cells/lease``: long-poll for the next queued cell.

        Answers 200 with the lease grant (lease id, run id, cell key,
        attempt number, and the run's validated request body), or 204
        when ``wait_s`` elapses with nothing to do.
        """
        payload = self._read_body()
        if payload is None:
            return
        worker_id = payload.get("worker")
        if not isinstance(worker_id, str):
            return self._send_error_json(
                400, "'worker' (the registered worker id) is required"
            )
        wait_s = payload.get("wait_s", 0.0)
        if isinstance(wait_s, bool) or not isinstance(wait_s, (int, float)):
            return self._send_error_json(
                400, f"'wait_s' must be a number, got {wait_s!r}"
            )
        wait_s = max(0.0, min(float(wait_s), MAX_LEASE_WAIT_S))
        if not self._check_secret(worker_id, payload):
            return
        try:
            grant = self.server.store.fleet.lease(worker_id, wait_s=wait_s)
        except UnknownWorker as exc:
            return self._send_error_json(404, str(exc))
        if grant is None:
            self.send_response(204)
            self.send_header("Content-Length", "0")
            self.end_headers()
            return
        self._send_json(200, grant)

    def _post_result(self, lease_id: str) -> None:
        """``POST /v1/cells/<lease>/result``: deliver a cell's outcome.

        The body carries the worker id plus exactly one of ``result``
        (a :meth:`~repro.parallel.engine.CellResult.to_payload` object)
        or ``error`` (``{"kind", "message"}``).  A lease that already
        expired answers 409 — the cell was re-leased, and a second
        result would break the exactly-once fold.
        """
        payload = self._read_body()
        if payload is None:
            return
        worker_id = payload.get("worker")
        if not isinstance(worker_id, str):
            return self._send_error_json(
                400, "'worker' (the registered worker id) is required"
            )
        result = payload.get("result")
        error = payload.get("error")
        if (result is None) == (error is None):
            return self._send_error_json(
                400, "exactly one of 'result' or 'error' is required"
            )
        if result is not None and not isinstance(result, dict):
            return self._send_error_json(
                400, f"'result' must be an object, got "
                     f"{type(result).__name__}"
            )
        if error is not None and not isinstance(error, dict):
            return self._send_error_json(
                400, f"'error' must be an object, got "
                     f"{type(error).__name__}"
            )
        if not self._check_secret(worker_id, payload):
            return
        try:
            ack = self.server.store.fleet.complete(
                lease_id, worker_id, result=result, error=error
            )
        except StaleLease as exc:
            return self._send_error_json(409, str(exc))
        except (KeyError, TypeError, ValueError) as exc:
            return self._send_error_json(400, f"bad result payload: {exc}")
        self._send_json(200, ack)


class ReproServer(ThreadingHTTPServer):
    """The service: transport + the shared job store."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        store: JobStore,
        default_tenant_config: Optional[TenantConfig] = None,
        quiet: bool = False,
        dashboard: bool = True,
        keepalive_s: Optional[float] = 15.0,
    ) -> None:
        super().__init__(address, _Handler)
        self.store = store
        self.default_tenant_config = default_tenant_config
        self.quiet = quiet
        self.dashboard = dashboard
        self.keepalive_s = keepalive_s

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Stop serving and join the job workers (idempotent)."""
        self.shutdown()
        self.server_close()
        self.store.close()


def create_server(
    host: str = "127.0.0.1",
    port: int = 8080,
    workers: int = 2,
    default_tenant_config: Optional[TenantConfig] = None,
    quiet: bool = False,
    max_finished: int = 256,
    journal: Optional[str] = None,
    dashboard: bool = True,
    keepalive_s: Optional[float] = 15.0,
    max_events_per_run: Optional[int] = 10_000,
    max_queued: Optional[int] = None,
    lease_timeout_s: float = 30.0,
    heartbeat_timeout_s: float = 90.0,
) -> ReproServer:
    """Build a ready-to-serve :class:`ReproServer` (port 0 = ephemeral).

    The caller drives it: ``serve_forever()`` in the foreground (the
    CLI) or a background thread (tests), then :meth:`ReproServer.close`.
    ``max_finished`` bounds how many terminal jobs stay queryable
    (oldest evicted first) so the service's memory never grows with
    total jobs ever submitted.

    ``journal`` is a path to the durable run journal (``--journal`` on
    the CLI): the store replays it before serving — finished runs
    restore read-only, interrupted runs resume from their journaled
    cells — and every subsequent submission, cell completion, and
    terminal status is fsync'd to it (``docs/serve.md``, "Durability &
    recovery").

    ``dashboard=False`` turns ``GET /dashboard`` into a 404
    (``--no-dashboard`` on the CLI) for deployments that want the API
    surface only.  ``keepalive_s`` is the idle interval between
    ``: keepalive`` comment lines on event streams (``None`` disables
    them).

    ``max_events_per_run`` caps each run's in-RAM event log
    (``--max-events-per-run`` on the CLI; ``None`` = unbounded): older
    envelopes move to a per-run disk spool that event followers replay
    history from, so a huge trace can stream without growing the
    server's resident memory per event.

    ``max_queued`` (``--max-queued`` on the CLI; ``None`` = unbounded)
    is the admission-control queue-depth bound: a submission arriving
    with that many jobs already queued is refused with ``429`` +
    ``Retry-After``, and ``/healthz`` reports ``ready: false`` until
    the queue drains (``docs/robustness.md``).

    ``lease_timeout_s`` / ``heartbeat_timeout_s`` (``--lease-timeout-s``
    / ``--heartbeat-timeout-s`` on the CLI) are the remote worker
    fleet's timing contract: how long a leased cell may run before it
    is reclaimed and requeued, and how long a worker may stay silent
    before it is evicted (``docs/workers.md``).
    """
    return ReproServer(
        (host, port),
        JobStore(
            workers=workers,
            max_finished=max_finished,
            journal=None if journal is None else RunJournal(journal),
            default_tenant_config=default_tenant_config,
            max_events_per_run=max_events_per_run,
            max_queued=max_queued,
            lease_timeout_s=lease_timeout_s,
            heartbeat_timeout_s=heartbeat_timeout_s,
        ),
        default_tenant_config=default_tenant_config,
        quiet=quiet,
        dashboard=dashboard,
        keepalive_s=keepalive_s,
    )
