"""The HTTP front-end: stdlib ``ThreadingHTTPServer`` + route table.

``repro serve`` turns the simulator into a long-running orchestration
service (the DataFlower premise: orchestration is a persistent service
reacting to data availability, not a batch script).  The surface is
deliberately small and fully documented in ``docs/serve.md``:

=======  =====================  ==========================================
method   path                   purpose
=======  =====================  ==========================================
GET      /healthz               liveness + job-state counters
GET      /metrics               Prometheus text exposition of the registry
GET      /dashboard             live telemetry dashboard (static HTML)
GET      /v1/apps               the app registry (``repro apps``)
GET      /v1/systems            the system registry (``repro systems``)
GET      /v1/policies           placement + shard policy registries
GET      /v1/runs               submission-ordered job listing (paginated)
POST     /v1/runs               submit a run (202 + job id)
GET      /v1/runs/<id>          job status + the merged report
GET      /v1/runs/<id>/events   NDJSON progress stream (per-cell events)
GET      /v1/runs/<id>/records  paginated merged request records
=======  =====================  ==========================================

Dependency-free by design: :mod:`http.server` handles the transport,
one daemon thread per connection, and the shared
:class:`~repro.serve.jobs.JobStore` owns all cross-request state —
optionally backed by a durable run journal
(:mod:`repro.serve.journal`, ``repro serve --journal``) so runs survive
restarts and resume from completed cells.
``tools/check_docs.py`` asserts every route in :data:`ROUTES` appears
in ``docs/serve.md``, so the table above cannot drift from the docs.
"""

from __future__ import annotations

import json
import re
from functools import lru_cache
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..metrics.report import render_event, render_json
from ..parallel.profiles import TenantConfig
from .jobs import AdmissionDenied, JobStore, RecordsUnavailable, UnknownJob
from .journal import RunJournal
from .validation import BadRequest, parse_run_request

__all__ = ["ROUTES", "ReproServer", "create_server"]

#: Every route the service answers: ``(method, path pattern, summary)``.
#: ``tools/check_docs.py`` fails if a pattern here has no matching
#: section in ``docs/serve.md`` — the docs are part of the API.
ROUTES = [
    ("GET", "/healthz", "liveness and job-state counters"),
    ("GET", "/metrics", "Prometheus text exposition of the metrics registry"),
    ("GET", "/dashboard", "live telemetry dashboard (single static page)"),
    ("GET", "/v1/apps", "registered applications"),
    ("GET", "/v1/systems", "execution systems"),
    ("GET", "/v1/policies", "placement and shard policies"),
    ("GET", "/v1/runs", "submission-ordered job listing (paginated)"),
    ("POST", "/v1/runs", "submit a run"),
    ("GET", "/v1/runs/<id>", "job status plus the merged report"),
    ("GET", "/v1/runs/<id>/events", "NDJSON progress stream"),
    ("GET", "/v1/runs/<id>/records", "paginated merged request records"),
]

#: Largest accepted request body; a trace bigger than this belongs on
#: disk and in `repro replay`, not inline in one POST.
MAX_BODY_BYTES = 64 * 1024 * 1024

_RUN_PATH = re.compile(r"^/v1/runs/([^/]+)$")
_EVENTS_PATH = re.compile(r"^/v1/runs/([^/]+)/events$")
_RECORDS_PATH = re.compile(r"^/v1/runs/([^/]+)/records$")

#: ``GET /v1/runs/<id>/records`` page-size ceiling; a client asking for
#: more gets clamped, keeping one response body bounded.
MAX_RECORDS_PAGE = 10_000


@lru_cache(maxsize=1)
def _registry_payloads() -> Tuple[list, list, dict]:
    """(apps, systems, policies) registry listings, JSON-ready.

    The registries are static for the process lifetime, and building
    the apps listing constructs every registered workflow — cache the
    whole table instead of rebuilding it per GET.  Handlers treat the
    cached payloads as read-only.
    """
    from ..apps import registered_apps
    from ..experiments.common import SYSTEM_CLASSES
    from ..parallel.policy import shard_policy_names
    from ..systems.placement import policy_names

    apps = []
    for spec in registered_apps():
        workflow = spec.build()
        apps.append(
            {
                "name": spec.short_name,
                "title": spec.title,
                "functions": len(workflow.functions),
                "default_input_bytes": spec.default_input_bytes,
                "default_fanout": spec.default_fanout,
                # The declared DAG, topologically ordered — the
                # dashboard's workflow view renders straight from this.
                "workflow": {
                    "entry": workflow.entry,
                    "functions": [
                        {
                            "name": name,
                            "edges": [
                                {
                                    "data": edge.dataname,
                                    "kind": edge.kind.name,
                                    "to": list(edge.destinations),
                                }
                                for edge in workflow.functions[name].edges
                            ],
                        }
                        for name in workflow.topological_order()
                    ],
                },
            }
        )
    systems = [
        {
            "name": name,
            "class": cls.__name__,
            "summary": (cls.__doc__ or "").strip().splitlines()[0],
        }
        for name, cls in SYSTEM_CLASSES.items()
    ]
    policies = {
        "placement": policy_names(),
        "shard": shard_policy_names(),
    }
    return apps, systems, policies


class _Handler(BaseHTTPRequestHandler):
    """Route dispatch; all state lives on ``self.server`` (the store)."""

    server: "ReproServer"
    # HTTP/1.0 keeps the NDJSON stream simple: no Content-Length means
    # "read until the server closes the connection".
    protocol_version = "HTTP/1.0"

    # -- plumbing -------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)

    def _send_json(
        self,
        status: int,
        payload: object,
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        body = (render_json(payload) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self,
        status: int,
        message: str,
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        self._send_json(status, {"error": message}, headers=headers)

    def _query(self) -> dict:
        """Last-wins flat view of the request's query string."""
        return {
            key: values[-1]
            for key, values in parse_qs(urlsplit(self.path).query).items()
        }

    @staticmethod
    def _query_int(query: dict, key: str, minimum: int) -> Optional[int]:
        value = query.get(key)
        if value is None:
            return None
        try:
            parsed = int(value)
        except ValueError:
            raise BadRequest(
                f"query parameter {key!r} must be an integer, got {value!r}"
            ) from None
        if parsed < minimum:
            raise BadRequest(
                f"query parameter {key!r} must be >= {minimum}, got {parsed}"
            )
        return parsed

    # -- GET ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        try:
            if path == "/healthz":
                store = self.server.store
                counts = store.counts()
                # Load balancers shed on ready=false *before* clients
                # hit the 429 path: the flag flips as soon as the run
                # queue saturates (docs/robustness.md).
                ready = (
                    store.max_queued is None
                    or counts["queued"] < store.max_queued
                )
                return self._send_json(
                    200,
                    {
                        "status": "ok",
                        "ready": ready,
                        "jobs": counts,
                        "workers": store.workers,
                        "queued": counts["queued"],
                        "rejected": store.rejected,
                        "max_queued": store.max_queued,
                    },
                )
            if path in ("/v1/apps", "/v1/systems", "/v1/policies"):
                apps, systems, policies = _registry_payloads()
                payload = {
                    "/v1/apps": {"apps": apps},
                    "/v1/systems": {"systems": systems},
                    "/v1/policies": {"policies": policies},
                }[path]
                return self._send_json(200, payload)
            if path == "/metrics":
                store = self.server.store
                store.refresh_gauges()
                body = store.metrics.render_prometheus().encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type",
                    "text/plain; version=0.0.4; charset=utf-8",
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                return None
            if path == "/dashboard":
                if not self.server.dashboard:
                    return self._send_error_json(
                        404, "dashboard disabled (--no-dashboard)"
                    )
                from .dashboard import dashboard_html

                body = dashboard_html().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", "text/html; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                return None
            if path == "/v1/runs":
                query = self._query()
                limit = self._query_int(query, "limit", minimum=1)
                runs, next_cursor = self.server.store.list_page(
                    cursor=query.get("cursor"), limit=limit
                )
                return self._send_json(
                    200, {"runs": runs, "next_cursor": next_cursor}
                )
            match = _EVENTS_PATH.match(path)
            if match:
                return self._stream_events(match.group(1))
            match = _RECORDS_PATH.match(path)
            if match:
                query = self._query()
                cursor = self._query_int(query, "cursor", minimum=0) or 0
                limit = self._query_int(query, "limit", minimum=1)
                limit = min(limit or 1000, MAX_RECORDS_PAGE)
                return self._send_json(
                    200,
                    self.server.store.records_page(
                        match.group(1), cursor=cursor, limit=limit
                    ),
                )
            match = _RUN_PATH.match(path)
            if match:
                return self._send_json(
                    200, self.server.store.snapshot(match.group(1))
                )
            self._send_error_json(404, f"no such path: {path}")
        except BadRequest as exc:
            self._send_error_json(400, str(exc))
        except RecordsUnavailable as exc:
            self._send_error_json(409, str(exc))
        except UnknownJob as exc:
            self._send_error_json(404, f"no such run: {exc.args[0]}")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response

    def _stream_events(self, job_id: str) -> None:
        """``GET /v1/runs/<id>/events``: one envelope per NDJSON line.

        The full history replays first (a late subscriber misses
        nothing), then lines follow live until the job is terminal.
        The response carries no Content-Length — end-of-stream is the
        connection closing.  While the run is quiet, a ``: keepalive``
        comment line goes out every ``keepalive_s`` so followers can
        distinguish an idle run from a dead connection (NDJSON
        consumers skip lines starting with ``:``).
        """
        store = self.server.store
        follower = store.follow(job_id, keepalive_s=self.server.keepalive_s)
        try:
            first = next(follower)
        except StopIteration:  # pragma: no cover - jobs always log 'queued'
            first = None
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        if first is not None:
            self.wfile.write((render_event(first) + "\n").encode("utf-8"))
            self.wfile.flush()
        for envelope in follower:
            if envelope is None:
                self.wfile.write(b": keepalive\n")
            else:
                self.wfile.write(
                    (render_event(envelope) + "\n").encode("utf-8")
                )
            self.wfile.flush()

    # -- POST -----------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        try:
            if path != "/v1/runs":
                return self._send_error_json(404, f"no such path: {path}")
            try:
                length = int(self.headers.get("Content-Length", ""))
            except ValueError:
                return self._send_error_json(
                    411, "a run submission needs a Content-Length body"
                )
            if length < 0:
                # rfile.read(-1) would block until client EOF, pinning
                # this connection thread forever.
                return self._send_error_json(
                    400, f"invalid Content-Length: {length}"
                )
            if length > MAX_BODY_BYTES:
                return self._send_error_json(
                    413,
                    f"request body over {MAX_BODY_BYTES} bytes; replay "
                    f"large traces from disk via the CLI",
                )
            raw = self.rfile.read(length)
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError as exc:
                return self._send_error_json(400, f"invalid JSON body: {exc}")
            try:
                request = parse_run_request(
                    payload, self.server.default_tenant_config
                )
            except BadRequest as exc:
                return self._send_error_json(400, str(exc))
            try:
                job_id = self.server.store.submit(request)
            except AdmissionDenied as exc:
                # 429 + Retry-After is the documented backpressure
                # contract (docs/robustness.md); ServeClient honors it.
                retry_after = max(1, int(round(exc.retry_after_s)))
                return self._send_error_json(
                    429, str(exc),
                    headers=(("Retry-After", str(retry_after)),),
                )
            self._send_json(
                202,
                {
                    "id": job_id,
                    "status": "queued",
                    "url": f"/v1/runs/{job_id}",
                    "events_url": f"/v1/runs/{job_id}/events",
                },
            )
        except (BrokenPipeError, ConnectionResetError):
            pass


class ReproServer(ThreadingHTTPServer):
    """The service: transport + the shared job store."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        store: JobStore,
        default_tenant_config: Optional[TenantConfig] = None,
        quiet: bool = False,
        dashboard: bool = True,
        keepalive_s: Optional[float] = 15.0,
    ) -> None:
        super().__init__(address, _Handler)
        self.store = store
        self.default_tenant_config = default_tenant_config
        self.quiet = quiet
        self.dashboard = dashboard
        self.keepalive_s = keepalive_s

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Stop serving and join the job workers (idempotent)."""
        self.shutdown()
        self.server_close()
        self.store.close()


def create_server(
    host: str = "127.0.0.1",
    port: int = 8080,
    workers: int = 2,
    default_tenant_config: Optional[TenantConfig] = None,
    quiet: bool = False,
    max_finished: int = 256,
    journal: Optional[str] = None,
    dashboard: bool = True,
    keepalive_s: Optional[float] = 15.0,
    max_events_per_run: Optional[int] = 10_000,
    max_queued: Optional[int] = None,
) -> ReproServer:
    """Build a ready-to-serve :class:`ReproServer` (port 0 = ephemeral).

    The caller drives it: ``serve_forever()`` in the foreground (the
    CLI) or a background thread (tests), then :meth:`ReproServer.close`.
    ``max_finished`` bounds how many terminal jobs stay queryable
    (oldest evicted first) so the service's memory never grows with
    total jobs ever submitted.

    ``journal`` is a path to the durable run journal (``--journal`` on
    the CLI): the store replays it before serving — finished runs
    restore read-only, interrupted runs resume from their journaled
    cells — and every subsequent submission, cell completion, and
    terminal status is fsync'd to it (``docs/serve.md``, "Durability &
    recovery").

    ``dashboard=False`` turns ``GET /dashboard`` into a 404
    (``--no-dashboard`` on the CLI) for deployments that want the API
    surface only.  ``keepalive_s`` is the idle interval between
    ``: keepalive`` comment lines on event streams (``None`` disables
    them).

    ``max_events_per_run`` caps each run's in-RAM event log
    (``--max-events-per-run`` on the CLI; ``None`` = unbounded): older
    envelopes move to a per-run disk spool that event followers replay
    history from, so a huge trace can stream without growing the
    server's resident memory per event.

    ``max_queued`` (``--max-queued`` on the CLI; ``None`` = unbounded)
    is the admission-control queue-depth bound: a submission arriving
    with that many jobs already queued is refused with ``429`` +
    ``Retry-After``, and ``/healthz`` reports ``ready: false`` until
    the queue drains (``docs/robustness.md``).
    """
    return ReproServer(
        (host, port),
        JobStore(
            workers=workers,
            max_finished=max_finished,
            journal=None if journal is None else RunJournal(journal),
            default_tenant_config=default_tenant_config,
            max_events_per_run=max_events_per_run,
            max_queued=max_queued,
        ),
        default_tenant_config=default_tenant_config,
        quiet=quiet,
        dashboard=dashboard,
        keepalive_s=keepalive_s,
    )
