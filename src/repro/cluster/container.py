"""Function containers: lifecycle, pools, and keep-alive policy.

A container pins a fixed CPU share and bandwidth cap (see
:mod:`repro.cluster.spec`), boots through a cold-start phase (sandbox boot
plus user-environment setup, the two costs called out in the paper's
Challenge-3), serves invocations, and is recycled after a keep-alive idle
period — the paper uses a fixed 15-minute keep-alive (§8).

DataFlower's consistency-aware keep-alive (§6.2) plugs in through the
pool's ``recycle_guard``: a container is only recycled when the guard
agrees, e.g. when no DLU data remains to be pumped.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from .network import SharedLink
from .node import Node
from .spec import ContainerSpec
from .telemetry import IntervalRecorder

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment
    from ..sim.events import Event

COLD_STARTING = "cold-starting"
IDLE = "idle"
BUSY = "busy"
RECYCLED = "recycled"

#: Default keep-alive from the paper's implementation section.
DEFAULT_KEEP_ALIVE_S = 15 * 60.0


class Container:
    """One sandbox running instances of a single function."""

    def __init__(
        self,
        env: "Environment",
        node: Node,
        function_name: str,
        spec: ContainerSpec,
    ) -> None:
        self.env = env
        self.node = node
        self.function_name = function_name
        self.spec = spec
        self.container_id = node.next_container_id()
        self.state = COLD_STARTING
        self.created_at = env.now
        self.recycled_at: Optional[float] = None
        self.egress: SharedLink = node.fabric.link(
            f"{self.container_id}.out", spec.net_bytes_per_s
        )
        self.ingress: SharedLink = node.fabric.link(
            f"{self.container_id}.in", spec.net_bytes_per_s
        )
        #: Compute vs transfer busy intervals, for Figure 2(b)-style plots.
        self.intervals = IntervalRecorder(env)
        self.invocations_served = 0
        #: Opaque per-container attachment point (the DLU daemon lives here).
        self.dlu = None
        self._interval_seq = 0
        self.idle_since = env.now

    # -- resource shape ---------------------------------------------------------

    @property
    def cpu_cores(self) -> float:
        return self.spec.cpu_cores

    def compute_seconds(self, core_seconds: float) -> float:
        """Wall time to burn ``core_seconds`` on this container's CPU share."""
        if core_seconds < 0:
            raise ValueError("core_seconds must be non-negative")
        return core_seconds / self.cpu_cores

    # -- lifecycle ---------------------------------------------------------------

    def compute(self, core_seconds: float, label: str = "compute"):
        """Process generator: occupy the CPU share for the given work."""
        self._interval_seq += 1
        key = (label, self._interval_seq)
        self.intervals.begin(key, "cpu")
        yield self.env.timeout(self.compute_seconds(core_seconds))
        self.intervals.end(key)

    def record_transfer(self, start: float, end: float) -> None:
        """Log a network-busy interval for utilization plots."""
        self.intervals.intervals.append((start, end, "net"))

    def mark_busy(self) -> None:
        if self.state == RECYCLED:
            raise RuntimeError(f"{self.container_id} already recycled")
        self.state = BUSY

    def mark_idle(self) -> None:
        if self.state == RECYCLED:
            raise RuntimeError(f"{self.container_id} already recycled")
        self.state = IDLE
        self.idle_since = self.env.now

    @property
    def alive(self) -> bool:
        return self.state != RECYCLED

    def __repr__(self) -> str:
        return f"<Container {self.container_id} fn={self.function_name} {self.state}>"


class ContainerPool:
    """Warm-container pool for one function on one node."""

    def __init__(
        self,
        env: "Environment",
        node: Node,
        function_name: str,
        spec: ContainerSpec,
        cold_start_s: float,
        env_setup_s: float,
        keep_alive_s: float = DEFAULT_KEEP_ALIVE_S,
        recycle_guard: Optional[Callable[[Container], bool]] = None,
    ) -> None:
        self.env = env
        self.node = node
        self.function_name = function_name
        self.spec = spec
        self.cold_start_s = cold_start_s
        self.env_setup_s = env_setup_s
        self.keep_alive_s = keep_alive_s
        self.recycle_guard = recycle_guard or (lambda _c: True)
        self.containers: List[Container] = []
        self.cold_starts = 0
        self.recycle_count = 0
        node.register_pool(self)

    # -- acquisition -------------------------------------------------------------

    def idle_container(self) -> Optional[Container]:
        """A warm, idle container, or None."""
        for container in self.containers:
            if container.state == IDLE:
                return container
        return None

    def can_start_new(self) -> bool:
        return self.node.can_fit(self.spec.cpu_cores, self.spec.memory_bytes)

    def start_new(self) -> "Event":
        """Cold-start a new container; the event fires with it once ready.

        Raises :class:`repro.cluster.node.InsufficientResources` right away
        when the node cannot host another container.
        """
        self.node.reserve(self.spec.cpu_cores, self.spec.memory_bytes)
        container = Container(self.env, self.node, self.function_name, self.spec)
        self.containers.append(container)
        self.cold_starts += 1
        ready = self.env.event()

        def boot():
            yield self.env.timeout(self.cold_start_s)
            yield self.env.timeout(self.env_setup_s)
            if container.state == COLD_STARTING:
                container.mark_idle()
                self._arm_keep_alive(container)
            ready.succeed(container)

        self.env.process(boot())
        return ready

    def checkout(self, container: Container) -> Container:
        """Claim an idle container for an invocation."""
        if container.state != IDLE:
            raise RuntimeError(f"{container.container_id} is not idle")
        container.mark_busy()
        return container

    def checkin(self, container: Container) -> None:
        """Return a container after an invocation completes."""
        container.mark_idle()
        container.invocations_served += 1
        self._arm_keep_alive(container)

    # -- keep-alive ---------------------------------------------------------------

    def _arm_keep_alive(self, container: Container) -> None:
        if self.keep_alive_s == float("inf"):
            return
        idle_stamp = container.idle_since

        def reaper():
            yield self.env.timeout(self.keep_alive_s)
            still_idle = (
                container.state == IDLE and container.idle_since == idle_stamp
            )
            if still_idle:
                if self.recycle_guard(container):
                    self.recycle(container)
                else:
                    # Consistency-aware keep-alive: data still draining from
                    # the DLU; check again after another keep-alive period.
                    self._arm_keep_alive(container)

        self.env.process(reaper())

    def recycle(self, container: Container) -> None:
        if container.state == RECYCLED:
            return
        container.state = RECYCLED
        container.recycled_at = self.env.now
        self.recycle_count += 1
        self.containers.remove(container)
        self.node.release(self.spec.cpu_cores, self.spec.memory_bytes)

    # -- introspection -------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.containers)

    def busy_count(self) -> int:
        return sum(1 for c in self.containers if c.state == BUSY)

    def __repr__(self) -> str:
        return (
            f"<ContainerPool {self.function_name}@{self.node.name} "
            f"n={self.size} busy={self.busy_count()}>"
        )
