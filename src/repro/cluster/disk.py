"""Local disk model: a bandwidth channel plus per-operation latency.

The paper's nodes carry a 200 GB SSD rated at 3000 IOPS; worker-local SSDs
back the SONIC data passing and the data-sink spill path.  We model a disk
as two :class:`SharedLink` channels (read, write) plus a fixed per-op
latency that stands in for seek/queue/IOPS cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .network import Flow, NetworkFabric

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment
    from ..sim.events import Event


class LocalDisk:
    """A node-local SSD with separate read/write channels."""

    def __init__(
        self,
        env: "Environment",
        fabric: NetworkFabric,
        name: str,
        read_bps: float,
        write_bps: float,
        op_latency_s: float,
    ) -> None:
        if op_latency_s < 0:
            raise ValueError("op_latency_s must be non-negative")
        self.env = env
        self.fabric = fabric
        self.name = name
        self.op_latency_s = op_latency_s
        self.read_link = fabric.link(f"{name}.read", read_bps)
        self.write_link = fabric.link(f"{name}.write", write_bps)
        self.bytes_read = 0.0
        self.bytes_written = 0.0

    def read(self, nbytes: float, label: str = "disk-read") -> "Event":
        """Event firing when ``nbytes`` have been read from the disk."""
        self.bytes_read += nbytes
        return self._operation(nbytes, self.read_link, label)

    def write(self, nbytes: float, label: str = "disk-write") -> "Event":
        """Event firing when ``nbytes`` have been written to the disk."""
        self.bytes_written += nbytes
        return self._operation(nbytes, self.write_link, label)

    def _operation(self, nbytes: float, link, label: str) -> "Event":
        done = self.env.event()

        def run():
            if self.op_latency_s > 0:
                yield self.env.timeout(self.op_latency_s)
            flow: Flow = self.fabric.transfer(nbytes, [link], label=label)
            yield flow.done
            done.succeed(nbytes)

        self.env.process(run())
        return done
