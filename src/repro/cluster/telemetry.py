"""Resource-usage accounting: time integrals and interval recorders.

The paper reports two integral metrics — container memory usage in GB*s
(Figure 10) and host cache usage in MB*s (Figure 14) — plus per-container
CPU/network usage timelines (Figure 2(b)).  These helpers compute all of
them exactly from the event trace, without sampling error.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment

GB = 1024.0 ** 3
MB = 1024.0 ** 2
KB = 1024.0


class TimeIntegral:
    """Integrates a piecewise-constant quantity over simulated time.

    ``add(delta)`` shifts the current level at ``env.now``; ``integral()``
    returns the exact integral of the level from t=0 (or ``since``) to now.
    """

    def __init__(self, env: "Environment", initial: float = 0.0) -> None:
        self.env = env
        self._level = float(initial)
        self._accumulated = 0.0
        self._last_change = env.now
        self._peak = float(initial)

    @property
    def level(self) -> float:
        return self._level

    @property
    def peak(self) -> float:
        return self._peak

    def add(self, delta: float) -> None:
        """Change the level by ``delta`` at the current time."""
        self._settle()
        self._level += delta
        # Sub-unit float residue from many add/remove pairs is clamped;
        # anything larger indicates a real double-release bug.
        if self._level < -1.0:
            raise ValueError(
                f"TimeIntegral level went negative ({self._level}) at "
                f"t={self.env.now}"
            )
        self._level = max(self._level, 0.0)
        self._peak = max(self._peak, self._level)

    def set(self, value: float) -> None:
        self.add(value - self._level)

    def integral(self) -> float:
        """The integral of the level from construction until now."""
        return self._accumulated + self._level * (self.env.now - self._last_change)

    def _settle(self) -> None:
        now = self.env.now
        self._accumulated += self._level * (now - self._last_change)
        self._last_change = now


class IntervalRecorder:
    """Records labelled busy intervals, e.g. compute and transfer phases."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._open: dict = {}
        self.intervals: List[Tuple[float, float, str]] = []

    def begin(self, key: object, label: str) -> None:
        if key in self._open:
            raise ValueError(f"interval {key!r} already open")
        self._open[key] = (self.env.now, label)

    def end(self, key: object) -> None:
        start, label = self._open.pop(key)
        self.intervals.append((start, self.env.now, label))

    def labelled(self, label: str) -> List[Tuple[float, float]]:
        """All closed (start, end) intervals carrying ``label``."""
        return [(s, e) for (s, e, lab) in self.intervals if lab == label]

    def busy_fraction(self, label: str, horizon: Optional[float] = None) -> float:
        """Fraction of [0, horizon] covered by ``label`` intervals (union)."""
        end_time = horizon if horizon is not None else self.env.now
        if end_time <= 0:
            return 0.0
        spans = sorted(self.labelled(label))
        covered = 0.0
        cursor = 0.0
        for start, end in spans:
            start = max(start, cursor)
            end = min(end, end_time)
            if end > start:
                covered += end - start
                cursor = end
        return covered / end_time


def overlap_seconds(
    a: List[Tuple[float, float]], b: List[Tuple[float, float]]
) -> float:
    """Total time during which an interval from ``a`` overlaps one from ``b``.

    Used to quantify computation/communication overlap (Figure 3's claim).
    Inputs need not be sorted or disjoint; unions are taken first.
    """

    def union(spans: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
        merged: List[Tuple[float, float]] = []
        for start, end in sorted(spans):
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged

    total = 0.0
    ia, ib = union(a), union(b)
    i = j = 0
    while i < len(ia) and j < len(ib):
        lo = max(ia[i][0], ib[j][0])
        hi = min(ia[i][1], ib[j][1])
        if hi > lo:
            total += hi - lo
        if ia[i][1] < ib[j][1]:
            i += 1
        else:
            j += 1
    return total
