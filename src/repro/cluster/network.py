"""Fluid-flow network model with bounded fair sharing.

Every potential bottleneck (container egress/ingress, host NIC, storage NIC,
disk channel, local memory bus) is a :class:`SharedLink`.  A :class:`Flow`
crosses one or more links; its instantaneous rate is::

    rate = min(flow.rate_cap, min over links of link.capacity / link.n_flows)

Rates therefore change only when some link's membership changes, never due
to another flow's rate — a *bounded fair-share approximation* of max-min
fairness (see DESIGN.md §4): it never oversubscribes a link, rebalances on
each flow arrival/departure, and is fully deterministic, but does not
perform multi-hop cascade rebalancing.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, List, Optional, Set

from ..sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment

_EPSILON = 1e-12


class SharedLink:
    """A capacity (bytes/second) shared equally among active flows."""

    def __init__(self, env: "Environment", name: str, capacity_bps: float) -> None:
        if capacity_bps <= 0:
            raise ValueError(f"link {name!r} capacity must be positive")
        self.env = env
        self.name = name
        self.capacity_bps = float(capacity_bps)
        self.flows: Set["Flow"] = set()

    def share(self) -> float:
        """Current per-flow fair share in bytes/second."""
        if not self.flows:
            return self.capacity_bps
        return self.capacity_bps / len(self.flows)

    def utilization(self) -> float:
        """Sum of member flow rates over capacity (always <= 1)."""
        used = sum(flow.rate for flow in self.flows)
        return used / self.capacity_bps

    def __repr__(self) -> str:
        return f"<SharedLink {self.name} {self.capacity_bps:.0f}B/s n={len(self.flows)}>"


class Flow:
    """An in-progress bulk transfer across a set of links.

    ``done`` fires with the flow when the last byte has moved.  ``cancel()``
    aborts the flow (``done`` fails with :class:`FlowCancelled`), which the
    fault-tolerance machinery uses to model data-plane interruption.
    """

    def __init__(
        self,
        fabric: "NetworkFabric",
        nbytes: float,
        links: List[SharedLink],
        rate_cap: float,
        label: str,
    ) -> None:
        self.fabric = fabric
        self.env = fabric.env
        #: Creation order within the fabric — the deterministic identity
        #: rebalancing sorts by (set iteration order is address-dependent
        #: and must never reach the event queue).
        self.index = fabric.flow_count
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.links = links
        self.rate_cap = float(rate_cap)
        self.label = label
        self.rate = 0.0
        self.started_at = self.env.now
        self.finished_at: Optional[float] = None
        self.done: Event = Event(self.env)
        self._last_update = self.env.now
        self._timer_generation = 0
        self._active = True

    @property
    def active(self) -> bool:
        return self._active

    def transferred(self) -> float:
        """Bytes moved so far (exact, accounting for the current rate)."""
        moved = self.nbytes - self.remaining
        if self._active:
            moved += self.rate * (self.env.now - self._last_update)
        return min(moved, self.nbytes)

    def cancel(self, reason: str = "cancelled") -> None:
        """Abort the flow; ``done`` fails with :class:`FlowCancelled`."""
        if not self._active:
            return
        self.fabric._settle(self)
        self.fabric._detach(self)
        self._active = False
        self.done.fail(FlowCancelled(self, reason))

    def __repr__(self) -> str:
        return (
            f"<Flow {self.label} {self.nbytes:.0f}B remaining="
            f"{self.remaining:.0f} rate={self.rate:.0f}>"
        )


class FlowCancelled(Exception):
    """Raised into waiters when a flow is cancelled mid-transfer."""

    def __init__(self, flow: Flow, reason: str) -> None:
        super().__init__(f"flow {flow.label} cancelled: {reason}")
        self.flow = flow
        self.reason = reason


class NetworkFabric:
    """Creates links and runs flows over them."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.links: dict = {}
        self.flow_count = 0
        self.bytes_moved = 0.0

    def link(self, name: str, capacity_bps: float) -> SharedLink:
        """Create (or fetch) the named link."""
        if name in self.links:
            return self.links[name]
        created = SharedLink(self.env, name, capacity_bps)
        self.links[name] = created
        return created

    def transfer(
        self,
        nbytes: float,
        links: Iterable[SharedLink],
        rate_cap: float = math.inf,
        label: str = "flow",
    ) -> Flow:
        """Start a flow of ``nbytes`` across ``links``; returns the Flow.

        Zero-byte flows complete immediately (the event still goes through
        the queue so that ordering stays deterministic).
        """
        if nbytes < 0:
            raise ValueError("cannot transfer a negative byte count")
        link_list = list(links)
        flow = Flow(self, nbytes, link_list, rate_cap, label)
        self.flow_count += 1
        if nbytes <= _EPSILON:
            flow._active = False
            flow.finished_at = self.env.now
            flow.done.succeed(flow)
            return flow
        affected = self._collect_affected(link_list)
        for link in link_list:
            link.flows.add(flow)
        affected.add(flow)
        self._rebalance(affected)
        return flow

    # -- internal -----------------------------------------------------------

    def _collect_affected(self, links: List[SharedLink]) -> Set[Flow]:
        affected: Set[Flow] = set()
        for link in links:
            affected.update(link.flows)
        return affected

    def _settle(self, flow: Flow) -> None:
        """Account bytes moved by ``flow`` since its last rate change."""
        now = self.env.now
        if flow._active and flow.rate > 0:
            moved = flow.rate * (now - flow._last_update)
            flow.remaining = max(flow.remaining - moved, 0.0)
            self.bytes_moved += moved
        flow._last_update = now

    def _detach(self, flow: Flow) -> None:
        for link in flow.links:
            link.flows.discard(flow)
        affected = self._collect_affected(flow.links)
        self._rebalance(affected)

    def _rebalance(self, flows: Set[Flow]) -> None:
        # Sorted by creation index: the iteration order schedules the
        # flows' completion timers, and the event queue breaks same-time
        # ties by insertion order — iterating the raw set would leak
        # object addresses (which vary run to run within a process) into
        # simulated results.
        for flow in sorted(flows, key=lambda f: f.index):
            if not flow._active:
                continue
            self._settle(flow)
            new_rate = flow.rate_cap
            for link in flow.links:
                new_rate = min(new_rate, link.share())
            flow.rate = new_rate
            self._arm_timer(flow)

    def _drained(self, flow: Flow) -> bool:
        """True when the flow's residue is float noise, not real bytes."""
        return flow.remaining <= max(_EPSILON, flow.nbytes * 1e-9)

    def _arm_timer(self, flow: Flow) -> None:
        flow._timer_generation += 1
        generation = flow._timer_generation
        if self._drained(flow):
            self._complete(flow)
            return
        if flow.rate <= _EPSILON:
            return  # stalled; a later rebalance will re-arm
        eta = flow.remaining / flow.rate
        if self.env.now + eta <= self.env.now:
            # eta underflows the clock's float resolution: finish now.
            self._complete(flow)
            return
        completion = Event(self.env)
        completion._state = "triggered"
        completion.callbacks.append(
            lambda _ev, f=flow, g=generation: self._on_timer(f, g)
        )
        self.env.schedule(completion, delay=eta)

    def _on_timer(self, flow: Flow, generation: int) -> None:
        if not flow._active or generation != flow._timer_generation:
            return  # stale timer from before a rate change
        self._settle(flow)
        if not self._drained(flow):
            self._arm_timer(flow)
            return
        self._complete(flow)

    def _complete(self, flow: Flow) -> None:
        self.bytes_moved += flow.remaining  # account float residue as moved
        flow.remaining = 0.0
        flow._active = False
        flow.finished_at = self.env.now
        self._detach(flow)
        flow.done.succeed(flow)
