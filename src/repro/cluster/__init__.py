"""Simulated cluster substrate: nodes, containers, network, disks, storage."""

from .cluster import Cluster, ClusterConfig
from .container import (
    BUSY,
    COLD_STARTING,
    Container,
    ContainerPool,
    DEFAULT_KEEP_ALIVE_S,
    IDLE,
    RECYCLED,
)
from .disk import LocalDisk
from .network import Flow, FlowCancelled, NetworkFabric, SharedLink
from .node import InsufficientResources, Node
from .spec import ContainerSpec, ScalingPolicy, DEFAULT_SCALING
from .storage import BackendStore, MemoryChannel
from .telemetry import GB, IntervalRecorder, KB, MB, TimeIntegral, overlap_seconds

__all__ = [
    "BUSY",
    "BackendStore",
    "COLD_STARTING",
    "Cluster",
    "ClusterConfig",
    "Container",
    "ContainerPool",
    "ContainerSpec",
    "DEFAULT_KEEP_ALIVE_S",
    "DEFAULT_SCALING",
    "Flow",
    "FlowCancelled",
    "GB",
    "IDLE",
    "InsufficientResources",
    "IntervalRecorder",
    "KB",
    "LocalDisk",
    "MB",
    "MemoryChannel",
    "NetworkFabric",
    "Node",
    "RECYCLED",
    "ScalingPolicy",
    "SharedLink",
    "TimeIntegral",
    "overlap_seconds",
]
