"""Worker-node model: cores, memory ledger, NIC, memory bus, and local SSD."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .disk import LocalDisk
from .network import NetworkFabric, SharedLink
from .telemetry import GB, MB, TimeIntegral

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment


class InsufficientResources(Exception):
    """Raised when a reservation exceeds a node's free cores or memory."""


class Node:
    """A physical machine hosting function containers.

    CPU and memory are *ledgers*: containers reserve fixed shares at start
    (the cgroup/TC model of the paper) and release them when recycled.
    Admission is synchronous — schedulers check :meth:`can_fit` and react,
    which is where scale-out limits and the Ultra-load failures of Figure 18
    come from.
    """

    def __init__(
        self,
        env: "Environment",
        fabric: NetworkFabric,
        name: str,
        cores: float,
        memory_gb: float,
        nic_bps: float,
        membus_bps: float,
        disk_read_bps: float,
        disk_write_bps: float,
        disk_op_latency_s: float,
    ) -> None:
        self.env = env
        self.fabric = fabric
        self.name = name
        self.cores_total = float(cores)
        self.memory_total = memory_gb * GB
        self.cores_free = float(cores)
        self.memory_free = self.memory_total
        self.egress: SharedLink = fabric.link(f"{name}.nic.out", nic_bps)
        self.ingress: SharedLink = fabric.link(f"{name}.nic.in", nic_bps)
        #: Local-memory channel used for intra-node data passing (Redis-like
        #: cache, FaaSFlow's local store, DataFlower's local pipe connector).
        self.membus: SharedLink = fabric.link(f"{name}.membus", membus_bps)
        self.disk = LocalDisk(
            env,
            fabric,
            f"{name}.ssd",
            read_bps=disk_read_bps,
            write_bps=disk_write_bps,
            op_latency_s=disk_op_latency_s,
        )
        #: Integral of container memory resident on this node (GB*s metric).
        self.memory_usage = TimeIntegral(env)
        #: Integral of host-side cache bytes (data sink / local stores).
        self.cache_usage = TimeIntegral(env)
        self.container_seq = 0
        #: Container pools hosted here (registered by ContainerPool).
        self.pools: list = []
        self.evictions = 0

    # -- admission ------------------------------------------------------------

    def can_fit(self, cores: float, memory_bytes: float) -> bool:
        return cores <= self.cores_free + 1e-9 and memory_bytes <= self.memory_free + 1e-6

    def reserve(self, cores: float, memory_bytes: float) -> None:
        if not self.can_fit(cores, memory_bytes):
            raise InsufficientResources(
                f"{self.name}: need {cores} cores/{memory_bytes / MB:.0f} MB, "
                f"free {self.cores_free:.2f} cores/"
                f"{self.memory_free / MB:.0f} MB"
            )
        self.cores_free -= cores
        self.memory_free -= memory_bytes
        self.memory_usage.add(memory_bytes)

    def release(self, cores: float, memory_bytes: float) -> None:
        self.cores_free = min(self.cores_free + cores, self.cores_total)
        self.memory_free = min(self.memory_free + memory_bytes, self.memory_total)
        self.memory_usage.add(-memory_bytes)

    # -- idle-container reclamation -----------------------------------------------

    def register_pool(self, pool) -> None:
        self.pools.append(pool)

    def try_reclaim(self, cores: float, memory_bytes: float,
                    exclude_pool=None) -> bool:
        """Evict idle containers from other pools until the request fits.

        Serverless platforms reclaim cold capacity under pressure rather
        than letting one function's warm pool starve its co-residents.
        Eviction is LRU over idle containers and respects each pool's
        recycle guard (e.g. DataFlower's undrained-DLU protection).
        Returns True when the reservation now fits.
        """
        if self.can_fit(cores, memory_bytes):
            return True
        candidates = []
        for pool in self.pools:
            if pool is exclude_pool:
                continue
            for container in pool.containers:
                if container.state == "idle" and pool.recycle_guard(container):
                    candidates.append((container.idle_since, pool, container))
        candidates.sort(key=lambda item: item[0])
        for _, pool, container in candidates:
            if self.can_fit(cores, memory_bytes):
                return True
            if container.state == "idle":
                pool.recycle(container)
                self.evictions += 1
        return self.can_fit(cores, memory_bytes)

    # -- introspection ----------------------------------------------------------

    @property
    def cores_used(self) -> float:
        return self.cores_total - self.cores_free

    @property
    def memory_used(self) -> float:
        return self.memory_total - self.memory_free

    def next_container_id(self) -> str:
        self.container_seq += 1
        return f"{self.name}/c{self.container_seq}"

    def __repr__(self) -> str:
        return (
            f"<Node {self.name} cores={self.cores_used:.1f}/{self.cores_total:.0f} "
            f"mem={self.memory_used / GB:.1f}/{self.memory_total / GB:.0f}GB>"
        )
