"""Backend storage (CouchDB-like) and in-memory KV cache (Redis-like).

Control-flow systems persist every intermediate datum in the backend store:
the source Puts, the destination Gets — the *double transfer* the paper
blames for heavy data-persistence overhead (§3.2.1).  The store is one
node whose service channel all operations share, plus a per-op access
latency; the shared channel is what makes the control-flow baselines
collapse at high load and prevents FaaSFlow from profiting when containers
scale up (Figure 17).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from .network import NetworkFabric, SharedLink

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment
    from ..sim.events import Event


class BackendStore:
    """A remote document store with limited aggregate service bandwidth."""

    def __init__(
        self,
        env: "Environment",
        fabric: NetworkFabric,
        name: str,
        service_bps: float,
        op_latency_s: float,
    ) -> None:
        self.env = env
        self.fabric = fabric
        self.name = name
        self.op_latency_s = op_latency_s
        #: All Puts funnel through this channel...
        self.ingress: SharedLink = fabric.link(f"{name}.in", service_bps)
        #: ...and all Gets through this one.
        self.egress: SharedLink = fabric.link(f"{name}.out", service_bps)
        self.objects: Dict[Tuple, float] = {}
        self.put_count = 0
        self.get_count = 0
        self.bytes_in = 0.0
        self.bytes_out = 0.0

    def put(
        self,
        key: Tuple,
        nbytes: float,
        via: Iterable[SharedLink],
        rate_cap: float = float("inf"),
    ) -> "Event":
        """Persist ``nbytes`` under ``key``; fires when the write completes.

        ``via`` carries the sender-side links (container egress, node NIC);
        the store's ingress channel is appended automatically.
        """
        self.put_count += 1
        self.bytes_in += nbytes
        links = list(via) + [self.ingress]
        done = self.env.event()

        def run():
            if self.op_latency_s > 0:
                yield self.env.timeout(self.op_latency_s)
            flow = self.fabric.transfer(
                nbytes, links, rate_cap=rate_cap, label=f"put:{key}"
            )
            yield flow.done
            self.objects[key] = nbytes
            done.succeed(nbytes)

        self.env.process(run())
        return done

    def get(
        self,
        key: Tuple,
        via: Iterable[SharedLink],
        rate_cap: float = float("inf"),
        nbytes: Optional[float] = None,
    ) -> "Event":
        """Load the object under ``key``; fires when the read completes.

        When ``nbytes`` is given the size check is skipped (used by harness
        code that does not bother recording the Put first).
        """
        if nbytes is None:
            if key not in self.objects:
                raise KeyError(f"{self.name}: no object under {key!r}")
            nbytes = self.objects[key]
        self.get_count += 1
        self.bytes_out += nbytes
        links = [self.egress] + list(via)
        done = self.env.event()

        def run():
            if self.op_latency_s > 0:
                yield self.env.timeout(self.op_latency_s)
            flow = self.fabric.transfer(
                nbytes, links, rate_cap=rate_cap, label=f"get:{key}"
            )
            yield flow.done
            done.succeed(nbytes)

        self.env.process(run())
        return done

    def delete(self, key: Tuple) -> None:
        self.objects.pop(key, None)

    def __repr__(self) -> str:
        return f"<BackendStore {self.name} puts={self.put_count} gets={self.get_count}>"


class MemoryChannel:
    """Intra-node data passing through local memory (Redis-like cache).

    Used by FaaSFlow for co-located functions and by DataFlower's local
    pipe connector.  Near-memory speed, but still a shared bus so extreme
    co-location pressure shows up.
    """

    def __init__(self, env: "Environment", fabric: NetworkFabric, membus: SharedLink,
                 op_latency_s: float) -> None:
        self.env = env
        self.fabric = fabric
        self.membus = membus
        self.op_latency_s = op_latency_s
        self.bytes_moved = 0.0

    def copy(self, nbytes: float, label: str = "memcopy") -> "Event":
        """Move ``nbytes`` across the local memory bus."""
        self.bytes_moved += nbytes
        done = self.env.event()

        def run():
            if self.op_latency_s > 0:
                yield self.env.timeout(self.op_latency_s)
            flow = self.fabric.transfer(nbytes, [self.membus], label=label)
            yield flow.done
            done.succeed(nbytes)

        self.env.process(run())
        return done
