"""Cluster assembly: the paper's 5-node testbed as a simulated topology.

Section 9.1: one load-generator node, one backend-storage node (CouchDB for
the control-flow baselines, Kafka for DataFlower's pipe connectors), and
three 16-core/64 GB worker nodes.  The load generator needs no resources
of its own here (arrivals are generated directly by the load generator
processes), so the cluster materializes the storage node and the workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

from .network import NetworkFabric
from .node import Node
from .storage import BackendStore, MemoryChannel

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment


@dataclass(frozen=True)
class ClusterConfig:
    """Topology and device parameters (paper defaults, see DESIGN.md)."""

    worker_count: int = 3
    worker_cores: float = 16.0
    worker_memory_gb: float = 64.0
    #: 10 GbE worker NICs.
    worker_nic_bps: float = 1.25e9
    #: Local memory bus for intra-node data passing.
    membus_bps: float = 4.0e9
    membus_latency_s: float = 0.0002
    #: 200 GB SSD, 3000 IOPS: modest bandwidth plus per-op latency.
    disk_read_bps: float = 150e6
    disk_write_bps: float = 100e6
    disk_op_latency_s: float = 0.002
    #: Effective CouchDB service bandwidth via REST (well below NIC speed;
    #: §8 calls out its performance degradation) and per-op access latency.
    storage_service_bps: float = 100e6
    storage_op_latency_s: float = 0.004

    def validate(self) -> None:
        if self.worker_count < 1:
            raise ValueError("worker_count must be >= 1")
        for name in (
            "worker_cores",
            "worker_memory_gb",
            "worker_nic_bps",
            "membus_bps",
            "disk_read_bps",
            "disk_write_bps",
            "storage_service_bps",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


class Cluster:
    """The simulated testbed: workers plus a backend storage node."""

    def __init__(self, env: "Environment", config: ClusterConfig = ClusterConfig()) -> None:
        config.validate()
        self.env = env
        self.config = config
        self.fabric = NetworkFabric(env)
        self.workers: List[Node] = [
            Node(
                env,
                self.fabric,
                name=f"worker{i + 1}",
                cores=config.worker_cores,
                memory_gb=config.worker_memory_gb,
                nic_bps=config.worker_nic_bps,
                membus_bps=config.membus_bps,
                disk_read_bps=config.disk_read_bps,
                disk_write_bps=config.disk_write_bps,
                disk_op_latency_s=config.disk_op_latency_s,
            )
            for i in range(config.worker_count)
        ]
        self.storage = BackendStore(
            env,
            self.fabric,
            name="backend",
            service_bps=config.storage_service_bps,
            op_latency_s=config.storage_op_latency_s,
        )
        #: The load-generator/gateway node: requests enter and results return
        #: here; the centralized production orchestrator also lives on it.
        self.gateway = Node(
            env,
            self.fabric,
            name="gateway",
            cores=8.0,
            memory_gb=16.0,
            nic_bps=config.worker_nic_bps,
            membus_bps=config.membus_bps,
            disk_read_bps=config.disk_read_bps,
            disk_write_bps=config.disk_write_bps,
            disk_op_latency_s=config.disk_op_latency_s,
        )
        self._memory_channels: Dict[str, MemoryChannel] = {}

    def node(self, name: str) -> Node:
        for worker in self.workers:
            if worker.name == name:
                return worker
        raise KeyError(f"no worker named {name!r}")

    def memory_channel(self, node: Node) -> MemoryChannel:
        """The intra-node memory channel for ``node`` (created lazily)."""
        if node.name not in self._memory_channels:
            self._memory_channels[node.name] = MemoryChannel(
                self.env,
                self.fabric,
                node.membus,
                op_latency_s=self.config.membus_latency_s,
            )
        return self._memory_channels[node.name]

    def total_memory_gbs(self) -> float:
        """Sum of per-node container-memory integrals, in GB*s."""
        from .telemetry import GB

        return sum(worker.memory_usage.integral() for worker in self.workers) / GB

    def total_cache_mbs(self) -> float:
        """Sum of per-node host-cache integrals, in MB*s."""
        from .telemetry import MB

        return sum(worker.cache_usage.integral() for worker in self.workers) / MB

    def __repr__(self) -> str:
        return f"<Cluster workers={len(self.workers)}>"
