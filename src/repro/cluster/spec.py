"""Container sizing rules.

Section 9.1 of the paper: "we allocate 0.1 core and 40 Mbps network
bandwidth for a 128MB-sized container.  The resources are allocated
proportionally according to the container memory size."  Figure 17 scales
containers from 128 MB to 640 MB under the same linear rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from .telemetry import MB

#: Paper baseline: resources granted per 128 MB of container memory.
BASE_MEMORY_MB = 128
BASE_CPU_CORES = 0.1
BASE_NET_MBPS = 40.0

BITS_PER_BYTE = 8.0


@dataclass(frozen=True)
class ScalingPolicy:
    """Linear memory -> (cpu, bandwidth) proportionality rule."""

    cores_per_base: float = BASE_CPU_CORES
    mbps_per_base: float = BASE_NET_MBPS
    base_memory_mb: int = BASE_MEMORY_MB

    def cpu_cores(self, memory_mb: float) -> float:
        return self.cores_per_base * memory_mb / self.base_memory_mb

    def net_bytes_per_s(self, memory_mb: float) -> float:
        mbps = self.mbps_per_base * memory_mb / self.base_memory_mb
        return mbps * 1e6 / BITS_PER_BYTE


DEFAULT_SCALING = ScalingPolicy()


@dataclass(frozen=True)
class ContainerSpec:
    """Resource specification of one function container."""

    memory_mb: int = BASE_MEMORY_MB
    scaling: ScalingPolicy = DEFAULT_SCALING

    def __post_init__(self) -> None:
        if self.memory_mb <= 0:
            raise ValueError(f"memory_mb must be positive, got {self.memory_mb}")

    @property
    def cpu_cores(self) -> float:
        """Fractional cores pinned to this container (cgroup share)."""
        return self.scaling.cpu_cores(self.memory_mb)

    @property
    def net_bytes_per_s(self) -> float:
        """Per-container bandwidth cap (Linux TC limit in the paper)."""
        return self.scaling.net_bytes_per_s(self.memory_mb)

    @property
    def memory_bytes(self) -> float:
        return self.memory_mb * MB

    def scaled_to(self, memory_mb: int) -> "ContainerSpec":
        """The same policy at a different memory size (Figure 17 sweeps)."""
        return ContainerSpec(memory_mb=memory_mb, scaling=self.scaling)
