"""Quantify computation/communication overlap and triggering behaviour.

The paper's §3.3 argues the data-flow paradigm wins through three
mechanisms; this module measures each one directly from a finished run:

* **overlap_ratio** — seconds during which a container computed *while*
  its network was busy, over total network-busy seconds.  Control-flow
  systems score ~0 (Figure 2(b)); DataFlower scores high (Figure 3).
* **trigger statistics** — the gap between a task's readiness and its
  trigger (Figure 2(c) vs DataFlower's ~2 ms).
* **early starts** — tasks that began before some predecessor finished,
  which only data-availability triggering makes possible (Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..cluster.telemetry import overlap_seconds
from ..metrics.latency import RequestRecord
from ..metrics.stats import mean
from ..systems.base import WorkflowSystem


@dataclass(frozen=True)
class OverlapReport:
    """Compute/communication concurrency of one system run."""

    cpu_busy_s: float
    net_busy_s: float
    overlap_s: float

    @property
    def overlap_ratio(self) -> float:
        """Fraction of network time hidden behind computation."""
        if self.net_busy_s <= 0:
            return 0.0
        return self.overlap_s / self.net_busy_s


def measure_overlap(system: WorkflowSystem) -> OverlapReport:
    """Aggregate container CPU/network interval overlap across pools."""
    cpu_busy = net_busy = overlap = 0.0
    for deployment in system.deployments.values():
        for dispatcher in deployment.dispatchers.values():
            for container in dispatcher.pool.containers:
                cpu = container.intervals.labelled("cpu")
                net = container.intervals.labelled("net")
                cpu_busy += sum(end - start for start, end in cpu)
                net_busy += sum(end - start for start, end in net)
                overlap += overlap_seconds(cpu, net)
    return OverlapReport(cpu_busy_s=cpu_busy, net_busy_s=net_busy,
                         overlap_s=overlap)


@dataclass(frozen=True)
class TriggerReport:
    """Triggering behaviour over a set of request records."""

    mean_overhead_s: float
    max_overhead_s: float
    early_start_count: int
    task_count: int


def measure_triggering(records: List[RequestRecord]) -> TriggerReport:
    """Trigger overheads and early (pre-predecessor-completion) starts."""
    overheads: List[float] = []
    early = 0
    total = 0
    for record in records:
        if not record.completed:
            continue
        for task in record.tasks:
            total += 1
            overheads.append(task.trigger_overhead)
        # Early (pipelined) start: a task begins while a task of a
        # *different* function that started earlier is still executing.
        # Same-function fan-out branches run concurrently under every
        # system, so they are excluded; cross-function overlap is what
        # only data-availability triggering produces (Figure 13).
        ordered = sorted(record.tasks, key=lambda t: t.exec_start)
        for i, task in enumerate(ordered[1:], start=1):
            upstream_end = max(
                (t.exec_end for t in ordered[:i] if t.function != task.function),
                default=float("-inf"),
            )
            if task.exec_start < upstream_end:
                early += 1
    if not overheads:
        raise ValueError("no completed requests to analyze")
    return TriggerReport(
        mean_overhead_s=mean(overheads),
        max_overhead_s=max(overheads),
        early_start_count=early,
        task_count=total,
    )
