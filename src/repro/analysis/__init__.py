"""Post-run analysis: overlap measurement and paper-claims checking."""

from .claims import ClaimCheck, check_claims
from .overlap import (
    OverlapReport,
    TriggerReport,
    measure_overlap,
    measure_triggering,
)

__all__ = [
    "ClaimCheck",
    "OverlapReport",
    "TriggerReport",
    "check_claims",
    "measure_overlap",
    "measure_triggering",
]
