"""Headline-claims checker: does a set of runs support the paper's abstract?

The abstract claims: "DataFlower reduces the 99%-ile latency of the
benchmarks by up to 35.4%, and improves the peak throughput by up to
3.8X" (and §9.2 adds: memory usage down by up to 69.3%).  Given matched
run results from this repo's harness, :func:`check_claims` evaluates each
claim and reports the measured factor — the EXPERIMENTS.md table is
generated from exactly this structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..loadgen.runner import RunResult


@dataclass(frozen=True)
class ClaimCheck:
    """One claim, its paper bound, and the measured value."""

    claim: str
    paper_bound: float
    measured: float
    holds: bool

    def describe(self) -> str:
        status = "HOLDS" if self.holds else "DIFFERS"
        return (
            f"[{status}] {self.claim}: measured {self.measured:.3f} "
            f"(paper: up to {self.paper_bound:.3f})"
        )


def _best_reduction(flower: List[float], baseline: List[float]) -> float:
    """Largest pairwise relative reduction across matched points."""
    best = 0.0
    for ours, theirs in zip(flower, baseline):
        if theirs > 0:
            best = max(best, 1.0 - ours / theirs)
    return best


def check_claims(
    dataflower: Dict[str, RunResult],
    faasflow: Dict[str, RunResult],
    sonic: Optional[Dict[str, RunResult]] = None,
) -> List[ClaimCheck]:
    """Evaluate the abstract's claims over matched per-benchmark runs.

    All three dicts map benchmark name -> RunResult produced under the
    same workload.  Throughput claims need closed-loop runs; latency and
    memory claims work with either pattern.
    """
    shared = sorted(set(dataflower) & set(faasflow))
    if not shared:
        raise ValueError("no common benchmarks between the run sets")

    flower_p99, faas_p99 = [], []
    flower_mem, faas_mem = [], []
    flower_tput, faas_tput = [], []
    for bench in shared:
        ours, theirs = dataflower[bench], faasflow[bench]
        if ours.completed and theirs.completed:
            flower_p99.append(ours.latency().p99_s)
            faas_p99.append(theirs.latency().p99_s)
            flower_mem.append(ours.usage.memory_gbs_per_request)
            faas_mem.append(theirs.usage.memory_gbs_per_request)
            flower_tput.append(ours.throughput_rpm())
            faas_tput.append(theirs.throughput_rpm())

    checks = [
        ClaimCheck(
            claim="p99 latency reduction vs FaaSFlow",
            paper_bound=0.354,
            measured=_best_reduction(flower_p99, faas_p99),
            holds=_best_reduction(flower_p99, faas_p99) > 0.05,
        ),
        ClaimCheck(
            claim="memory usage reduction vs FaaSFlow",
            paper_bound=0.693,
            measured=_best_reduction(flower_mem, faas_mem),
            holds=_best_reduction(flower_mem, faas_mem) > 0.10,
        ),
        ClaimCheck(
            claim="peak throughput gain vs FaaSFlow (x)",
            paper_bound=3.8,
            measured=max(
                (ours / theirs for ours, theirs in zip(flower_tput, faas_tput)
                 if theirs > 0),
                default=0.0,
            ),
            holds=any(
                ours > theirs for ours, theirs in zip(flower_tput, faas_tput)
            ),
        ),
    ]

    if sonic:
        shared_sonic = sorted(set(dataflower) & set(sonic))
        s_p99 = [
            sonic[b].latency().p99_s
            for b in shared_sonic
            if sonic[b].completed
        ]
        f_p99 = [
            dataflower[b].latency().p99_s
            for b in shared_sonic
            if sonic[b].completed
        ]
        checks.append(
            ClaimCheck(
                claim="p99 latency reduction vs SONIC",
                paper_bound=0.292,
                measured=_best_reduction(f_p99, s_p99),
                holds=_best_reduction(f_p99, s_p99) > 0.05,
            )
        )
    return checks
