"""Data-availability-based container prewarming (paper §10, future work).

The paper's conclusion sketches the idea: "The data-flow paradigm
provides an alternative way to prewarm containers based on the data
dependencies and availability.  With the prior knowledge of the data
dependencies, we are designing a policy to warm up a container for a
function based on the data-availability instead of predicting function
execution patterns."

This module implements that policy.  The signal is the *start* of a DLU
push toward a destination function: at that moment the destination is
guaranteed to be invoked soon (its data is already in flight), so booting
a container now overlaps the cold start with the remaining computation
and the data transfer — by the time the sink completes the datum, a warm
FLU is waiting.

The policy is deliberately conservative to avoid inflating the memory
footprint (DataFlower's Figure 10 advantage): it only boots when the
destination's warm-or-booting supply is below the number of in-flight
data streams headed its way, capped by ``max_prewarm``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple

from ..cluster.node import InsufficientResources

if TYPE_CHECKING:  # pragma: no cover
    from ..systems.base import FunctionDispatcher


class PrewarmPolicy:
    """Boots destination containers when data starts flowing toward them."""

    def __init__(self, max_prewarm: int = 2) -> None:
        if max_prewarm < 1:
            raise ValueError("max_prewarm must be >= 1")
        self.max_prewarm = max_prewarm
        #: (workflow, function) -> data streams currently in flight.
        self._inflight: Dict[Tuple[str, str], int] = {}
        self.prewarms = 0
        self.suppressed = 0

    def data_in_flight(self, workflow: str, function: str,
                       dispatcher: "FunctionDispatcher") -> None:
        """A DLU began pushing a datum whose consumer is ``function``."""
        key = (workflow, function)
        self._inflight[key] = self._inflight.get(key, 0) + 1
        self._maybe_boot(key, dispatcher)

    def data_arrived(self, workflow: str, function: str) -> None:
        """The datum finished (delivered or abandoned)."""
        key = (workflow, function)
        current = self._inflight.get(key, 0)
        if current > 0:
            self._inflight[key] = current - 1

    # -- internal -----------------------------------------------------------

    def _maybe_boot(self, key: Tuple[str, str],
                    dispatcher: "FunctionDispatcher") -> None:
        pool = dispatcher.pool
        supply = (
            sum(1 for c in dispatcher.idle.items if c.alive)
            + dispatcher.booting
            + pool.busy_count()
        )
        want = min(self._inflight.get(key, 0), self.max_prewarm)
        if supply >= want:
            self.suppressed += 1
            return
        if not pool.can_start_new():
            self.suppressed += 1
            return
        try:
            ready = pool.start_new()
        except InsufficientResources:
            self.suppressed += 1
            return
        dispatcher.booting += 1
        self.prewarms += 1

        def on_ready(event, dispatcher=dispatcher):
            dispatcher.booting -= 1
            dispatcher.idle.put(event.value)

        if ready.callbacks is not None:
            ready.callbacks.append(on_ready)
