"""Per-request data plane: routing tables and data-availability tracking.

When a workflow is invoked, the load balancer's placement plus the task
graph yield a routing table (Figure 8): for every data edge, which node's
sink receives the datum and which task it wakes.  Each node's engine only
needs the slice touching its own functions; here one object tracks the
whole request and the engines query it — semantically equivalent to the
paper's synchronized per-node subgraphs, with the synchronization latency
modelled by ``DataFlowerConfig.dataplane_sync_s``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from ..workflow.instance import Task, TaskEdge, TaskGraph

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.node import Node
    from ..systems.base import Deployment

#: The sink key of the user's input datum for the entry task.
USER_INPUT = "$input"


class RequestDataPlane:
    """Routing and readiness state for one in-flight request."""

    def __init__(self, graph: TaskGraph, deployment: "Deployment") -> None:
        self.graph = graph
        self.deployment = deployment
        self.request_id = graph.request.request_id
        #: Inputs still missing before each task can trigger.
        self._waiting: Dict[str, int] = {}
        #: Edge keys already delivered (exactly-once accounting).
        self.delivered: Set[Tuple] = set()
        #: $USER outputs not yet received by the gateway.
        self.user_outputs_pending = 0
        for task in graph.tasks:
            waiting = len(task.inputs)
            if task.is_entry:
                waiting += 1  # the user input datum
            self._waiting[task.task_id] = waiting
            for edge in task.outputs:
                if edge.dst is None:
                    self.user_outputs_pending += 1

    # -- routing -----------------------------------------------------------------

    def node_of_task(self, task: Task) -> "Node":
        return self.deployment.node_of(task.function)

    def input_key(self, task: Task, edge: TaskEdge) -> Tuple[str, str, str]:
        """Sink key under which ``edge``'s datum waits for ``task``."""
        return (self.request_id, task.task_id, edge.dataname)

    def user_input_key(self, task: Task) -> Tuple[str, str, str]:
        return (self.request_id, task.task_id, USER_INPUT)

    # -- readiness ----------------------------------------------------------------

    def waiting_count(self, task: Task) -> int:
        return self._waiting[task.task_id]

    def mark_arrived(self, task: Task, key: Tuple) -> bool:
        """Record a datum arrival; True when the task just became ready."""
        if key in self.delivered:
            return False
        self.delivered.add(key)
        remaining = self._waiting[task.task_id] - 1
        if remaining < 0:
            raise RuntimeError(
                f"task {task.task_id} received more inputs than declared"
            )
        self._waiting[task.task_id] = remaining
        return remaining == 0

    def mark_user_output(self, edge: TaskEdge) -> bool:
        """Record a $USER datum arrival; True if it was not a duplicate."""
        key = ("$USER",) + edge.key
        if key in self.delivered:
            return False
        self.delivered.add(key)
        self.user_outputs_pending -= 1
        return True

    def involved_nodes(self) -> List["Node"]:
        """Every node hosting at least one task of this request."""
        seen: Dict[str, "Node"] = {}
        for task in self.graph.tasks:
            node = self.node_of_task(task)
            seen[node.name] = node
        return list(seen.values())
