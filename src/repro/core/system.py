"""DataFlower: the data-flow paradigm serverless workflow system.

Execution of one request (paper §4, Figure 4):

1. The load balancer's placement plus the task graph form the request's
   data plane; it is synchronized to the involved node engines.
2. The user's input datum flows (at host speed, not through a container
   TC cap) into the entry function's node sink.
3. A node engine triggers a task the moment *all* of its inputs sit in
   the local sink — out-of-order, data-availability driven.
4. The FLU loads inputs from the sink (memory bus; disk if spilled),
   computes, and frees the container at compute end.  The DLU starts
   streaming outputs when the first chunk exists, so computation and
   communication overlap.
5. The DLU evaluates Equation (1); positive pressure blocks the FLU for
   the pressure time (Callstack blocking) while the engine scales out.
6. The request completes when every task ran and every $USER output
   reached the gateway.

Fault tolerance (§6.2): container crashes cancel the container's pipe
connectors; completed checkpoints survive; the engine ReDoes the failed
function on a fresh container; sink-level dedup keeps delivery exactly
once.  Consistency-aware keep-alive never recycles a container whose DLU
still holds undrained data.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Set

from ..cluster.container import Container
from ..cluster.node import Node
from ..sim.process import Interrupt
from ..workflow.instance import Task
from ..systems.base import Deployment, RequestState, WorkflowSystem
from .config import DataFlowerConfig
from .dataflow_graph import RequestDataPlane
from .dlu import DLU, ReDoSignal
from .engine import NodeEngine
from .flu import FluInvocation
from .pipes import PipeRouter
from .scaling import evaluate as evaluate_pressure
from .sink import WaitMatchMemory

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment


class DataFlowerSystem(WorkflowSystem):
    """The DataFlower scheme on the simulated cluster."""

    name = "dataflower"

    def __init__(self, env: "Environment", cluster,
                 config: DataFlowerConfig = DataFlowerConfig()) -> None:
        config.validate()
        super().__init__(env, cluster, config)
        self.config: DataFlowerConfig = config
        self.router = PipeRouter(env, cluster, config)
        self.engines: Dict[str, NodeEngine] = {}
        #: container_id -> the Process of the FLU currently running there.
        self.active_flus: Dict[str, object] = {}
        self.redo_count = 0
        from .prewarm import PrewarmPolicy

        self.prewarm_policy = (
            PrewarmPolicy(config.max_prewarm) if config.prewarm else None
        )

    # -- infrastructure ----------------------------------------------------------

    def engine_of(self, node: Node) -> NodeEngine:
        if node.name not in self.engines:
            sink = WaitMatchMemory(
                self.env,
                node,
                self.cluster,
                ttl_s=self.config.sink_ttl_s,
                proactive_release=self.config.proactive_release,
                passive_expire=self.config.passive_expire,
            )
            self.engines[node.name] = NodeEngine(
                self.env, node, sink, trigger_cost=self._trigger_cost
            )
        return self.engines[node.name]

    def _trigger_cost(self) -> float:
        rng = self.rng.stream("trigger")
        jitter = rng.gauss(0.0, self.config.trigger_jitter_s)
        return max(self.config.trigger_mean_s + jitter, 0.0002)

    def recycle_guard(self, container: Container) -> bool:
        """Consistency-aware keep-alive: recycle only when the DLU is dry."""
        dlu: Optional[DLU] = container.dlu
        return dlu is None or dlu.idle

    def _dlu_of(self, container: Container) -> DLU:
        if container.dlu is None:
            DLU(self.env, container, self.router)
        return container.dlu

    # -- request execution ----------------------------------------------------------

    def _execute_request(self, deployment: Deployment, state: RequestState, finish):
        plane = RequestDataPlane(state.graph, deployment)
        state.plane = plane  # type: ignore[attr-defined]
        state.task_done = {t.task_id: False for t in state.graph.tasks}  # type: ignore[attr-defined]
        state.finished = False  # type: ignore[attr-defined]
        state.redo_guard = set()  # type: ignore[attr-defined]
        state.finish = finish  # type: ignore[attr-defined]

        # Make sure each involved node has its engine before data arrives.
        for node in plane.involved_nodes():
            self.engine_of(node)

        entry_tasks = [t for t in state.graph.tasks if t.is_entry]

        def ship_user_input():
            # Synchronize the per-request data plane to the engines, then
            # move the user datum to the entry node's sink at host speed.
            yield self.env.timeout(self.config.dataplane_sync_s)
            for task in entry_tasks:
                node = plane.node_of_task(task)
                nbytes = state.graph.request.input_bytes
                if not self.config.input_local and nbytes > 0:
                    flow = self.cluster.fabric.transfer(
                        nbytes,
                        [self.cluster.gateway.egress, node.ingress],
                        label="user-input",
                    )
                    yield flow.done
                self._deposit(
                    deployment, state, task, plane.user_input_key(task), nbytes
                )

        self.env.process(ship_user_input())

    # -- data arrival -----------------------------------------------------------------

    def _deposit(self, deployment, state: RequestState, task: Task, key,
                 nbytes: float) -> None:
        """A datum reached ``task``'s node sink; trigger the task if ready."""
        plane: RequestDataPlane = state.plane
        node = plane.node_of_task(task)
        engine = self.engine_of(node)
        if not engine.sink.deposit(key, nbytes):
            return  # duplicate delivery (retry/ReDo path): exactly once
        if not plane.mark_arrived(task, key):
            return
        record = state.task_record(task.task_id)
        record.ready_time = self.env.now
        record.node = node.name
        dispatcher = deployment.dispatcher(task.function)
        engine.trigger(
            dispatch=lambda: dispatcher.submit(
                lambda container: self._start_flu(
                    deployment, state, task, container
                )
            ),
            on_triggered=lambda: setattr(record, "trigger_time", self.env.now),
        )

    # -- the FLU lifecycle ----------------------------------------------------------

    def _start_flu(self, deployment, state, task: Task,
                   container: Container) -> None:
        if not hasattr(state, "exec_seq"):
            state.exec_seq = {}
        sequence = state.exec_seq.get(task.task_id, 0) + 1
        state.exec_seq[task.task_id] = sequence
        invocation = FluInvocation(
            task=task,
            container=container,
            record=state.task_record(task.task_id),
            attempt=sequence,
            compute_done=self.env.event(),
        )
        process = self.env.process(
            self._run_flu(deployment, state, invocation)
        )
        self.active_flus[container.container_id] = process

    def _run_flu(self, deployment, state, invocation: FluInvocation):
        task = invocation.task
        container = invocation.container
        record = invocation.record
        plane: RequestDataPlane = state.plane
        node = plane.node_of_task(task)
        engine = self.engine_of(node)
        sink = engine.sink
        function = deployment.workflow.functions[task.function]
        profile = function.profile
        dispatcher = deployment.dispatcher(task.function)

        try:
            record.exec_start = self.env.now
            record.cold_start = container.invocations_served == 0

            # Load inputs from the Wait-Match Memory.
            fetch_start = self.env.now
            fetches = []
            if task.is_entry and state.graph.request.input_bytes > 0:
                fetches.append(
                    self.env.process(sink.fetch(plane.user_input_key(task)))
                )
            for edge in task.inputs:
                fetches.append(
                    self.env.process(sink.fetch(plane.input_key(task, edge)))
                )
            if fetches:
                yield self.env.all_of(fetches)
            record.get_s = self.env.now - fetch_start

            # Compute, with the DLU starting pushes at the first chunk.
            core_seconds = profile.compute.core_seconds(
                task.input_bytes, self.rng.stream(f"compute:{task.function}")
            )
            duration = container.compute_seconds(core_seconds)
            compute_start = self.env.now
            self._schedule_pushes(deployment, state, invocation, duration)
            yield self.env.process(container.compute(core_seconds))
            record.compute_s = self.env.now - compute_start
            record.exec_end = self.env.now
            invocation.compute_done.succeed()

            # Pressure-aware scaling (Equation 1).
            size = invocation.remote_stream_bytes(
                plane, node, self.cluster.gateway, self.config.small_data_bytes
            )
            decision = evaluate_pressure(
                size,
                container.spec.net_bytes_per_s,
                duration,
                self.config.pressure_alpha,
                enabled=self.config.pressure_aware,
            )
            self.active_flus.pop(container.container_id, None)
            dispatcher.release(container, delay_s=decision.block_s)
            if decision.backpressure:
                # The engine reacts to the Callstack blocking signal by
                # scaling out in the normal serverless manner.
                dispatcher.maybe_scale_out()

            self._complete_task(deployment, state, task)
        except Interrupt:
            # Container crashed mid-invocation: sever its connectors and
            # ReDo on a fresh container (§6.2).
            self.active_flus.pop(container.container_id, None)
            invocation.cancel_token[0] = True
            if not invocation.compute_done.triggered:
                invocation.compute_done.fail(ReDoSignal())
                invocation.compute_done.defused = True
            for gate in invocation.edge_events.values():
                if not gate.triggered:
                    gate.fail(ReDoSignal())
                    gate.defused = True
            self.router.cancel_container_flows(container)
            dispatcher.pool.recycle(container)
            self._redo_task(deployment, state, task, ("exec", invocation.attempt))

    # -- DLU pushes -------------------------------------------------------------------

    def _schedule_pushes(self, deployment, state, invocation: FluInvocation,
                         duration: float) -> None:
        task = invocation.task
        plane: RequestDataPlane = state.plane
        src_node = plane.node_of_task(task)
        profile = deployment.workflow.functions[task.function].profile
        delay = invocation.first_chunk_delay(
            profile, duration, self.config.streaming
        )

        # Per-output production gates: fan-out branches complete
        # progressively (Figure 5(b)); a lone output completes with the FLU.
        total = len(task.outputs)
        for index, edge in enumerate(task.outputs):
            gate = self.env.event()
            invocation.edge_events[id(edge)] = gate
            if not self.config.streaming:
                fraction = 1.0
            else:
                fraction = invocation.edge_ready_fraction(index, total, profile)

            def produce(gate=gate, fraction=fraction):
                yield self.env.timeout(duration * fraction)
                if not gate.triggered:
                    gate.succeed()

            self.env.process(produce())

        def start():
            yield self.env.timeout(delay)
            if invocation.cancel_token[0]:
                return
            dlu = self._dlu_of(invocation.container)
            for edge in task.outputs:
                self._push_edge(deployment, state, invocation, dlu, src_node, edge)

        self.env.process(start())

    def _push_edge(self, deployment, state, invocation: FluInvocation, dlu: DLU,
                   src_node: Node, edge) -> None:
        plane: RequestDataPlane = state.plane
        task = invocation.task
        record = invocation.record
        invocation.pushes_pending += 1

        if edge.dst is None:
            dst_node = self.cluster.gateway

            def delivered_user(edge=edge):
                self._push_done(state, invocation)
                if plane.mark_user_output(edge):
                    self._maybe_finish(deployment, state)

            on_delivered = delivered_user
        else:
            dst_task = edge.dst
            dst_node = plane.node_of_task(dst_task)
            if self.prewarm_policy is not None:
                # §10: the datum is in flight, so its consumer will run
                # soon — boot a container now to hide the cold start.
                self.prewarm_policy.data_in_flight(
                    deployment.workflow.name,
                    dst_task.function,
                    deployment.dispatcher(dst_task.function),
                )

            def delivered_data(edge=edge, dst_task=dst_task):
                self._push_done(state, invocation)
                if self.prewarm_policy is not None:
                    self.prewarm_policy.data_arrived(
                        deployment.workflow.name, dst_task.function
                    )
                self._deposit(
                    deployment, state, dst_task,
                    plane.input_key(dst_task, edge), edge.nbytes,
                )

            on_delivered = delivered_data

        def abandoned():
            self._push_done(state, invocation)
            self._redo_task(deployment, state, task, ("exec", invocation.attempt))

        produced = invocation.edge_events.get(id(edge), invocation.compute_done)
        dlu.push(
            src_node,
            dst_node,
            edge.nbytes,
            produced,
            label=f"pipe:{task.task_id}:{edge.dataname}",
            cancel_token=invocation.cancel_token,
            on_delivered=on_delivered,
            on_abandoned=abandoned,
        )

    def _push_done(self, state, invocation: FluInvocation) -> None:
        invocation.pushes_pending -= 1
        invocation.last_push_done_at = self.env.now
        record = invocation.record
        if invocation.pushes_pending == 0 and record.exec_end > 0:
            # The asynchronous drain tail beyond FLU completion; records
            # how much communication the DLU hid behind/after compute.
            record.put_s = max(self.env.now - record.exec_end, 0.0)

    # -- completion and ReDo ------------------------------------------------------------

    def _complete_task(self, deployment, state, task: Task) -> None:
        if state.task_done[task.task_id]:
            return
        state.task_done[task.task_id] = True
        state.remaining_tasks -= 1
        # Input entries were proactively released when the FLU fetched
        # them (§7); any stragglers (e.g. non-proactive mode) go at
        # request completion.
        self._maybe_finish(deployment, state)

    def _maybe_finish(self, deployment, state) -> None:
        plane: RequestDataPlane = state.plane
        if state.finished:
            return
        if state.remaining_tasks == 0 and plane.user_outputs_pending == 0:
            state.finished = True
            for node in plane.involved_nodes():
                self.engine_of(node).sink.release_request(plane.request_id)
            state.finish()

    def _redo_task(self, deployment, state, task: Task, attempt: int) -> None:
        """ReDo a failed function execution, backtracking if needed (§6.2).

        Proactive release means a crashed FLU's inputs may already be gone
        from the sink.  The engine then backtracks: it resets the task's
        readiness bookkeeping for the missing data and ReDoes the producing
        tasks (recursively, back to the last data that still exists — the
        user input at the gateway is always durable).

        ``attempt`` is an opaque dedupe token: multiple failure signals
        from one execution (or multiple consumers backtracking one
        producer) schedule exactly one ReDo.
        """
        guard_key = (task.task_id, attempt)
        if guard_key in state.redo_guard or state.finished:
            return
        state.redo_guard.add(guard_key)
        record = state.task_record(task.task_id)
        if record.retries >= self.config.max_retries:
            state.finished = True
            state.finish(failed=True, error=f"task {task.task_id} exceeded retries")
            return
        record.retries += 1
        self.redo_count += 1
        if state.task_done[task.task_id]:
            state.task_done[task.task_id] = False
            state.remaining_tasks += 1

        plane: RequestDataPlane = state.plane
        sink = self.engine_of(plane.node_of_task(task)).sink

        missing_edges = [
            edge
            for edge in task.inputs
            if not sink.is_present(plane.input_key(task, edge))
        ]
        user_input_missing = (
            task.is_entry
            and state.graph.request.input_bytes > 0
            and not sink.is_present(plane.user_input_key(task))
        )

        if not missing_edges and not user_input_missing:
            def resubmit():
                yield self.env.timeout(self.config.retry_delay_s)
                dispatcher = deployment.dispatcher(task.function)
                dispatcher.submit(
                    lambda container: self._start_flu(
                        deployment, state, task, container
                    )
                )

            self.env.process(resubmit())
            return

        # Backtracking: mark the missing data undelivered so the normal
        # availability-triggered path re-fires this task on re-arrival.
        for edge in missing_edges:
            key = plane.input_key(task, edge)
            plane.delivered.discard(key)
            plane._waiting[task.task_id] += 1
        if user_input_missing:
            plane.delivered.discard(plane.user_input_key(task))
            plane._waiting[task.task_id] += 1

        for edge in missing_edges:
            producer = edge.src
            self._redo_task(
                deployment, state, producer,
                attempt=("bt", state.task_record(producer.task_id).retries),
            )
        if user_input_missing:
            def reship():
                yield self.env.timeout(self.config.retry_delay_s)
                nbytes = state.graph.request.input_bytes
                node = plane.node_of_task(task)
                if not self.config.input_local:
                    flow = self.cluster.fabric.transfer(
                        nbytes,
                        [self.cluster.gateway.egress, node.ingress],
                        label="user-input-redo",
                    )
                    yield flow.done
                self._deposit(
                    deployment, state, task, plane.user_input_key(task), nbytes
                )

            self.env.process(reship())

    # -- fault injection -----------------------------------------------------------------

    def crash_container(self, container: Container) -> None:
        """Kill a container: interrupt its FLU and sever its connectors."""
        process = self.active_flus.get(container.container_id)
        if process is not None and getattr(process, "is_alive", False):
            process.interrupt("container crash")
            return
        # No FLU running: the container may still be draining DLU data.
        self.router.cancel_container_flows(container)
        for deployment in self.deployments.values():
            for dispatcher in deployment.dispatchers.values():
                if container in dispatcher.pool.containers:
                    dispatcher.pool.recycle(container)
                    return
