"""Failure injection for the fault-tolerance model (paper §6.2).

DataFlower's guarantees under test:

* a function is never triggered on partial data (deposits happen only
  when a connector completes);
* pipe connectors checkpoint incrementally, so a transient data-plane
  interrupt resumes from the last checkpoint instead of byte zero;
* a container crash ReDoes the failed function on a fresh container, and
  sink-level dedup keeps end-to-end delivery exactly once;
* consistency-aware keep-alive refuses to recycle containers with
  undrained DLUs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from ..cluster.container import Container

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment
    from .system import DataFlowerSystem


@dataclass
class InjectionLog:
    """What the injector did, for test assertions."""

    crashes: List[tuple] = field(default_factory=list)
    flow_cancellations: List[tuple] = field(default_factory=list)


class FailureInjector:
    """Schedules failures against a running DataFlower system."""

    def __init__(self, system: "DataFlowerSystem") -> None:
        self.system = system
        self.env: "Environment" = system.env
        self.log = InjectionLog()

    def crash_container_at(self, container: Container, at_time: float) -> None:
        """Kill ``container`` at the given simulated time."""

        def schedule():
            delay = max(at_time - self.env.now, 0.0)
            yield self.env.timeout(delay)
            if container.alive:
                self.log.crashes.append((self.env.now, container.container_id))
                self.system.crash_container(container)

        self.env.process(schedule())

    def crash_function_container_at(
        self, workflow: str, function: str, at_time: float
    ) -> None:
        """Kill whichever container of ``function`` is busy at ``at_time``."""

        def schedule():
            delay = max(at_time - self.env.now, 0.0)
            yield self.env.timeout(delay)
            deployment = self.system.deployment(workflow)
            pool = deployment.dispatcher(function).pool
            victims = [c for c in pool.containers if c.state == "busy"]
            if not victims:
                victims = list(pool.containers)
            if victims:
                victim = victims[0]
                self.log.crashes.append((self.env.now, victim.container_id))
                self.system.crash_container(victim)

        self.env.process(schedule())

    def crash_when_busy(
        self,
        workflow: str,
        function: str,
        check_interval_s: float = 0.005,
        give_up_after_s: float = 60.0,
    ) -> None:
        """Kill a container of ``function`` the moment one is executing."""

        def watch():
            deadline = self.env.now + give_up_after_s
            while self.env.now < deadline:
                deployment = self.system.deployment(workflow)
                pool = deployment.dispatcher(function).pool
                busy = [c for c in pool.containers if c.state == "busy"]
                if busy:
                    victim = busy[0]
                    self.log.crashes.append((self.env.now, victim.container_id))
                    self.system.crash_container(victim)
                    return
                yield self.env.timeout(check_interval_s)

        self.env.process(watch())

    def cancel_random_flow_at(self, at_time: float, seed: int = 0) -> None:
        """Cancel one in-flight pipe stream (pure data-plane interrupt)."""

        def schedule():
            delay = max(at_time - self.env.now, 0.0)
            yield self.env.timeout(delay)
            rng = random.Random(seed)
            candidates = [
                flow
                for flows in self.system.router._active_flows.values()
                for flow in flows
                if flow.active
            ]
            if candidates:
                victim = rng.choice(sorted(candidates, key=lambda f: f.label))
                self.log.flow_cancellations.append((self.env.now, victim.label))
                victim.cancel("injected data-plane interrupt")

        self.env.process(schedule())
