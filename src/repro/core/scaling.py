"""Pressure-aware function scaling (paper §5.2, Equation 1).

::

    Pressure(FLU_f) = alpha * Size / Bw  -  T_FLU

``Size/Bw`` is the ideal time to drain the FLU's output through the
container's bandwidth cap; ``alpha`` is the connector's loss factor;
``T_FLU`` is the FLU execution time.  Non-positive pressure means the DLU
keeps up and dispatch continues on idle FLUs.  Positive pressure means
backpressure: the DLU sends a *Callstack blocking* signal that blocks the
FLU for exactly ``Pressure`` seconds — capping the FLU production rate at
the DLU drain rate — while the engine scales out containers in the normal
serverless manner.
"""

from __future__ import annotations

from dataclasses import dataclass


def pressure(size_bytes: float, bandwidth_bps: float, t_flu_s: float,
             alpha: float) -> float:
    """Equation (1).  Positive values indicate backpressure."""
    if bandwidth_bps <= 0:
        raise ValueError("bandwidth must be positive")
    if size_bytes < 0 or t_flu_s < 0:
        raise ValueError("size and T_FLU must be non-negative")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    return alpha * size_bytes / bandwidth_bps - t_flu_s


@dataclass(frozen=True)
class ScalingDecision:
    """What the DLU tells the engine after one FLU invocation."""

    pressure_s: float

    @property
    def backpressure(self) -> bool:
        return self.pressure_s > 0

    @property
    def block_s(self) -> float:
        """How long the Callstack blocking signal holds the FLU."""
        return max(self.pressure_s, 0.0)


def evaluate(size_bytes: float, bandwidth_bps: float, t_flu_s: float,
             alpha: float, enabled: bool = True) -> ScalingDecision:
    """The DLU-side decision; ``enabled=False`` is DataFlower-Non-aware."""
    if not enabled:
        return ScalingDecision(pressure_s=0.0)
    return ScalingDecision(
        pressure_s=pressure(size_bytes, bandwidth_bps, t_flu_s, alpha)
    )
