"""The Function Logic Unit: one function invocation inside a container.

The FLU is the computation half of the paper's container abstraction
(§5.1): it loads inputs from the host sink, runs the (possibly pipelined)
computation, hands outputs to the DLU as soon as they materialize, and
frees the container at *compute end* — not at transfer end — which is
what lets a container serve the next request while the previous one's
data is still draining (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from ..cluster.container import Container
from ..workflow.instance import Task
from ..workflow.profiles import FunctionProfile

if TYPE_CHECKING:  # pragma: no cover
    from ..metrics.latency import TaskRecord
    from ..sim.events import Event


@dataclass
class FluInvocation:
    """Invocation-scoped context shared between the FLU and its DLU pushes."""

    task: Task
    container: Container
    record: "TaskRecord"
    attempt: int
    #: Fails with ReDoSignal if the FLU dies mid-computation, so that
    #: streaming pushes gated on it abandon cleanly.
    compute_done: "Event"
    #: Shared flag; ``[True]`` stops checkpoint retries of this attempt.
    cancel_token: List[bool] = field(default_factory=lambda: [False])
    #: Per-output "datum fully produced" events; for fan-out outputs the
    #: branches complete progressively (Figure 5(b)'s pipelined FLUs), so
    #: early branches can trigger consumers before the FLU finishes.
    edge_events: dict = field(default_factory=dict)
    pushes_pending: int = 0
    last_push_done_at: float = 0.0

    def edge_ready_fraction(self, index: int, total_edges: int,
                            profile: FunctionProfile) -> float:
        """Fraction of the computation after which output ``index`` exists.

        With a single output the datum is complete only at compute end.
        With N outputs (FOREACH splits), branch j is fully produced at
        ``first_output + (1 - first_output) * (j+1)/N`` — data for early
        branches flows out while later branches are still being computed,
        which is what lets DataFlower trigger the consumer *before* the
        producer completes (Figure 13).
        """
        if total_edges <= 1:
            return 1.0
        first = profile.first_output_at
        return first + (1.0 - first) * (index + 1) / total_edges

    def first_chunk_delay(self, profile: FunctionProfile, duration_s: float,
                          streaming: bool) -> float:
        """When (relative to compute start) the DLU may begin pushing.

        Without streaming the DLU waits for function completion.  With
        pipelined sub-FLUs (``flu_stages > 1``) the first stage's output
        exists after ``1/stages`` of the work, whichever is earlier than
        the profile's declared first-output point (§5.1).
        """
        if not streaming:
            return duration_s
        fraction = profile.first_output_at
        if profile.flu_stages > 1:
            fraction = min(fraction, 1.0 / profile.flu_stages)
        return duration_s * fraction

    def remote_stream_bytes(self, plane, src_node, gateway,
                            small_data_bytes: float) -> float:
        """Bytes this invocation must drain through the container NIC.

        This is the ``Size`` of Equation (1): local-pipe and small-socket
        data do not pressure the bandwidth-capped connector.
        """
        total = 0.0
        for edge in self.task.outputs:
            if edge.nbytes <= small_data_bytes:
                continue
            dst_node = gateway if edge.dst is None else plane.node_of_task(edge.dst)
            if dst_node is not src_node:
                total += edge.nbytes
        return total
