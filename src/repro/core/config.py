"""DataFlower configuration: every mechanism has an explicit knob.

The ablation experiments flip these toggles: Figure 12 disables
``pressure_aware`` (DataFlower-Non-aware); the Figure 14 cache study
exercises ``proactive_release`` and ``passive_expire``; fault-tolerance
tests tune ``checkpoint_fraction``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.telemetry import KB
from ..systems.base import SystemConfig


@dataclass(frozen=True)
class DataFlowerConfig(SystemConfig):
    """Knobs of the DataFlower scheme (defaults follow the paper)."""

    #: Data-availability triggering is cheap: the per-node engine reacts in
    #: ~2 ms (Figure 13: merge fires 2 ms after count's data arrives).
    trigger_mean_s: float = 0.002
    #: Gaussian sigma on the trigger reaction time (run-to-run variance).
    trigger_jitter_s: float = 0.0005

    #: Loss factor alpha of Equation (1): actual transfer time over ideal
    #: Size/Bw, determined by the pipe-connector implementation.
    pressure_alpha: float = 1.2
    #: Pressure-aware function scaling (§5.2).  Off = DataFlower-Non-aware.
    pressure_aware: bool = True

    #: Data below this size bypasses the pipe connector and travels by
    #: direct socket (§7: "for small data under 16K").
    small_data_bytes: float = 16 * KB
    #: One-way latency of that direct-socket small-data path.
    socket_latency_s: float = 0.0008

    #: Streaming: the DLU begins pushing once the FLU has produced its
    #: first chunk instead of waiting for function completion (§3.3.1).
    streaming: bool = True

    #: Wait-Match Memory lifetime management (§7): free a sink entry the
    #: moment its last consumer has fetched it.
    proactive_release: bool = True
    #: Expire sink entries nobody claimed after ``sink_ttl_s`` (leak guard).
    passive_expire: bool = True
    #: Time-to-live for passive expiration of unclaimed sink data.
    sink_ttl_s: float = 45.0

    #: Pipe-connector checkpoints for fault tolerance (§6.2): on a data
    #: plane interrupt, transfer restarts from the last completed fraction.
    checkpoint_fraction: float = 0.25
    #: Delay before a failed push/execution is retried.
    retry_delay_s: float = 0.05
    #: Maximum ReDo attempts per task before the request is failed.
    max_retries: int = 3

    #: Synchronizing the per-request data plane to the involved engines.
    dataplane_sync_s: float = 0.001

    #: Data-availability-based container prewarming (§10, future work):
    #: boot the destination's container when its input data starts
    #: flowing, hiding the cold start behind the transfer.
    prewarm: bool = False
    #: Cap on concurrently prewarming containers per function (boot storms).
    max_prewarm: int = 2

    def validate(self) -> None:
        if not 0 < self.checkpoint_fraction <= 1:
            raise ValueError("checkpoint_fraction must lie in (0, 1]")
        if self.pressure_alpha <= 0:
            raise ValueError("pressure_alpha must be positive")
        if self.sink_ttl_s <= 0:
            raise ValueError("sink_ttl_s must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
