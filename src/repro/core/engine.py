"""The per-node workflow scheduling engine (paper §4, §6).

One engine runs on every node that hosts at least one function of a
deployed workflow.  It is decentralized: it parses only the local slice of
the data-flow graph, watches the local data sink for input availability,
and triggers a function the moment all of its inputs are present —
no central orchestrator, no topological-order serialization.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..cluster.node import Node
from ..sim.resources import Resource
from .sink import WaitMatchMemory

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment
    from .config import DataFlowerConfig


class NodeEngine:
    """Scheduling engine plus data sink of one host node."""

    def __init__(
        self,
        env: "Environment",
        node: Node,
        sink: WaitMatchMemory,
        trigger_cost: Callable[[], float],
    ) -> None:
        self.env = env
        self.node = node
        self.sink = sink
        self._trigger_cost = trigger_cost
        #: Data-availability checks serialize through the engine, but at
        #: ~2 ms each this never becomes the bottleneck the centralized
        #: orchestrator is (Figure 2(c) vs Figure 13).
        self._slot = Resource(env, capacity=1)
        self.triggers = 0

    def trigger(self, dispatch: Callable[[], None],
                on_triggered: Callable[[], None]) -> None:
        """Fire a ready task: account the engine's reaction time, then
        hand the invocation to the function's dispatcher."""
        self.triggers += 1

        def run():
            with self._slot.request() as slot:
                yield slot
                yield self.env.timeout(self._trigger_cost())
            on_triggered()
            dispatch()

        self.env.process(run())

    def __repr__(self) -> str:
        return f"<NodeEngine {self.node.name} triggers={self.triggers}>"
