"""Pipe connectors: the DataFlower data plane (paper §7, Figure 9).

Three transports, chosen by data locality and size:

* **Local pipe** — source and destination on one node: the stream is
  pumped straight into the data sink across the memory bus.
* **Streaming pipe** — cross-node: a Kafka-like streaming channel over the
  fabric (container egress -> host NIC -> destination host NIC).  Supports
  chunked checkpoints: on a data-plane interrupt the retry resumes from
  the last completed checkpoint fraction rather than byte zero.
* **Direct socket** — data under 16 KB skips the pipe connector entirely
  and goes by socket (latency-bound, no bandwidth reservation).

Streaming overlaps with computation: a push may *start* as soon as the
FLU emits its first chunk, but never *completes* before the FLU does
(the last byte does not exist earlier).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from ..cluster.container import Container
from ..cluster.network import FlowCancelled
from ..cluster.node import Node

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.cluster import Cluster
    from ..sim.environment import Environment
    from ..sim.events import Event
    from .config import DataFlowerConfig


class ReDoSignal(Exception):
    """The producing FLU died; this push attempt is abandoned (ReDo repushes)."""


@dataclass
class PushOutcome:
    """What a completed push reports back to the DLU."""

    nbytes: float
    transport: str
    retries: int = 0
    checkpoint_restarts: int = 0


class PipeRouter:
    """Builds and drives pipe connectors for one cluster."""

    def __init__(self, env: "Environment", cluster: "Cluster",
                 config: "DataFlowerConfig") -> None:
        self.env = env
        self.cluster = cluster
        self.config = config
        self.pushes = 0
        self.socket_pushes = 0
        self.local_pushes = 0
        self.stream_pushes = 0
        self.checkpoint_restarts = 0
        #: Active streaming flows per container id, so a container crash
        #: can sever its connectors (fault model, §6.2).
        self._active_flows: dict = {}
        #: When enabled, every completed push appends
        #: (label, transport, nbytes, duration_s) here (Figure 19 study).
        self.record_log = False
        self.push_log: list = []

    def cancel_container_flows(self, container: Container,
                               reason: str = "container crash") -> int:
        """Cancel every in-flight stream from ``container``; returns count."""
        flows = list(self._active_flows.get(container.container_id, ()))
        for flow in flows:
            flow.cancel(reason)
        return len(flows)

    def push(
        self,
        container: Container,
        src_node: Node,
        dst_node: Node,
        nbytes: float,
        compute_done: "Event",
        label: str,
        cancel_token: Optional[List[bool]] = None,
    ):
        """Process generator moving ``nbytes`` to ``dst_node``'s sink.

        Returns a :class:`PushOutcome`.  ``compute_done`` gates completion:
        the datum is only fully materialized when the FLU finishes.
        ``cancel_token`` is a one-element list; ``[True]`` aborts retries
        (the source container died and ReDo will repush from a new one).
        """
        self.pushes += 1
        outcome = PushOutcome(nbytes=nbytes, transport="?")
        push_start = self.env.now

        if nbytes <= self.config.small_data_bytes:
            # Direct socket path: split and pass directly (§7).
            self.socket_pushes += 1
            outcome.transport = "socket"
            yield self.env.timeout(self.config.socket_latency_s)
        elif src_node is dst_node:
            self.local_pushes += 1
            outcome.transport = "local-pipe"
            channel = self.cluster.memory_channel(src_node)
            yield channel.copy(nbytes, label=label)
        else:
            self.stream_pushes += 1
            outcome.transport = "stream-pipe"
            yield from self._stream(
                container, src_node, dst_node, nbytes, label, outcome,
                cancel_token,
            )

        transport_s = self.env.now - push_start
        # Streaming cannot complete before the producer has produced the
        # last byte.
        if not compute_done.processed:
            yield compute_done
        elif not compute_done.ok:
            # The producer died before finishing this datum.
            raise ReDoSignal(label)
        if self.record_log:
            # Pure transport time (the Figure 19 metric), excluding the
            # wait for the producer to emit its final byte.
            self.push_log.append((label, outcome.transport, nbytes, transport_s))
        return outcome

    # -- streaming with checkpointed retry ------------------------------------

    def _stream(
        self,
        container: Container,
        src_node: Node,
        dst_node: Node,
        nbytes: float,
        label: str,
        outcome: PushOutcome,
        cancel_token: Optional[List[bool]],
    ):
        checkpoint_bytes = max(nbytes * self.config.checkpoint_fraction, 1.0)
        sent = 0.0
        while sent < nbytes:
            links = [container.egress, src_node.egress, dst_node.ingress]
            flow = self.cluster.fabric.transfer(
                nbytes - sent,
                links,
                rate_cap=container.spec.net_bytes_per_s,
                label=label,
            )
            registry = self._active_flows.setdefault(container.container_id, set())
            registry.add(flow)
            start = self.env.now
            try:
                yield flow.done
                container.record_transfer(start, self.env.now)
                sent = nbytes
            except FlowCancelled:
                registry.discard(flow)
                container.record_transfer(start, self.env.now)
                if cancel_token is not None and cancel_token[0]:
                    raise
                # Resume from the last completed checkpoint (§6.2): the
                # connector checkpoints asynchronously and incrementally.
                moved = flow.nbytes - flow.remaining
                completed = sent + moved
                sent = (completed // checkpoint_bytes) * checkpoint_bytes
                outcome.retries += 1
                outcome.checkpoint_restarts += 1
                self.checkpoint_restarts += 1
                yield self.env.timeout(self.config.retry_delay_s)
            else:
                registry.discard(flow)
