"""The per-host function data sink: Wait-Match Memory (paper §7, Figure 9).

Every host node runs one sink that caches the input data of all functions
deployed there *before* they are triggered — the heart of the
host-container collaborative communication mechanism.  Entries are indexed
by the multi-level key ``(RequestID, TaskID, DataName)``.

Lifetime management (the Figure 14 win over FaaSFlow):

* **Proactive release** — an entry is freed as soon as the destination FLU
  has received the data *and completed*, instead of at request completion.
  (Completion, not fetch, so a crashed FLU can ReDo from the sink.)
* **Passive expire** — entries not consumed within a TTL spill to the
  function-exclusive disk, trading memory for a later disk read.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..cluster.node import Node

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.cluster import Cluster
    from ..sim.environment import Environment

SinkKey = Tuple[str, str, str]  # (request_id, dst_task_id, dataname)


class EntryState(enum.Enum):
    IN_MEMORY = "in-memory"
    SPILLED = "spilled"
    RELEASED = "released"


@dataclass
class SinkEntry:
    key: SinkKey
    nbytes: float
    state: EntryState = EntryState.IN_MEMORY
    deposited_at: float = 0.0
    fetched: bool = False
    generation: int = 0  # bumps on fetch/release to invalidate TTL timers


class WaitMatchMemory:
    """The data sink of one host node."""

    def __init__(
        self,
        env: "Environment",
        node: Node,
        cluster: "Cluster",
        ttl_s: float,
        proactive_release: bool = True,
        passive_expire: bool = True,
    ) -> None:
        if ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        self.env = env
        self.node = node
        self.cluster = cluster
        self.ttl_s = ttl_s
        self.proactive_release = proactive_release
        self.passive_expire = passive_expire
        #: Multi-level index: request -> task -> dataname -> entry.
        self._index: Dict[str, Dict[str, Dict[str, SinkEntry]]] = {}
        self.deposits = 0
        self.duplicate_deposits = 0
        self.spills = 0
        self.releases = 0

    # -- index ------------------------------------------------------------------

    def _lookup(self, key: SinkKey) -> Optional[SinkEntry]:
        request_id, task_id, dataname = key
        return self._index.get(request_id, {}).get(task_id, {}).get(dataname)

    def _insert(self, entry: SinkEntry) -> None:
        request_id, task_id, dataname = entry.key
        self._index.setdefault(request_id, {}).setdefault(task_id, {})[
            dataname
        ] = entry

    def _remove(self, key: SinkKey) -> None:
        request_id, task_id, dataname = key
        tasks = self._index.get(request_id)
        if not tasks:
            return
        datas = tasks.get(task_id)
        if not datas:
            return
        datas.pop(dataname, None)
        if not datas:
            tasks.pop(task_id, None)
        if not tasks:
            self._index.pop(request_id, None)

    # -- deposit -----------------------------------------------------------------

    def deposit(self, key: SinkKey, nbytes: float) -> bool:
        """Cache a datum; returns False on duplicate (exactly-once dedup)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self._lookup(key) is not None:
            self.duplicate_deposits += 1
            return False
        entry = SinkEntry(key=key, nbytes=nbytes, deposited_at=self.env.now)
        self._insert(entry)
        self.node.cache_usage.add(nbytes)
        self.deposits += 1
        if self.passive_expire:
            self._arm_ttl(entry)
        return True

    def is_present(self, key: SinkKey) -> bool:
        entry = self._lookup(key)
        return entry is not None and entry.state is not EntryState.RELEASED

    # -- fetch ------------------------------------------------------------------

    def fetch(self, key: SinkKey):
        """Process generator: copy the datum into a container's WORKDIR.

        In-memory entries cross the local memory bus; spilled entries incur
        the disk read first.  Once the destination FLU has received the
        data the entry is **proactively released** (§7) — if that FLU later
        crashes, the engine backtracks and ReDoes the producer (§6.2).
        """
        entry = self._lookup(key)
        if entry is None:
            raise KeyError(f"sink {self.node.name}: no entry for {key!r}")
        entry.generation += 1
        if entry.state is EntryState.SPILLED:
            yield self.node.disk.read(entry.nbytes, label="sink-unspill")
        channel = self.cluster.memory_channel(self.node)
        yield channel.copy(entry.nbytes, label="sink-fetch")
        entry.fetched = True
        if self.proactive_release:
            self._free(entry)

    # -- lifetime management -----------------------------------------------------

    def release(self, key: SinkKey) -> None:
        """Proactively free an entry (destination FLU received and done)."""
        entry = self._lookup(key)
        if entry is None or entry.state is EntryState.RELEASED:
            return
        if not self.proactive_release:
            # Without lifetime knowledge the entry lingers until the
            # request-level cleanup, like FaaSFlow's cache.
            return
        self._free(entry)

    def release_request(self, request_id: str) -> None:
        """Request-completion cleanup (safety net; main path is proactive)."""
        tasks = self._index.get(request_id, {})
        entries = [
            entry for datas in tasks.values() for entry in datas.values()
        ]
        for entry in entries:
            self._free(entry)

    def _free(self, entry: SinkEntry) -> None:
        if entry.state is EntryState.IN_MEMORY:
            self.node.cache_usage.add(-entry.nbytes)
        entry.state = EntryState.RELEASED
        entry.generation += 1
        self.releases += 1
        self._remove(entry.key)

    def _arm_ttl(self, entry: SinkEntry) -> None:
        generation = entry.generation

        def expire():
            yield self.env.timeout(self.ttl_s)
            stale = (
                entry.state is EntryState.IN_MEMORY
                and entry.generation == generation
                and not entry.fetched
            )
            if stale:
                # Passive expire: keep freshness in memory, persist the
                # datum to the function-exclusive disk.
                entry.state = EntryState.SPILLED
                self.node.cache_usage.add(-entry.nbytes)
                self.spills += 1
                self.node.disk.write(entry.nbytes, label="sink-spill")

        self.env.process(expire())

    # -- introspection ------------------------------------------------------------

    def resident_bytes(self) -> float:
        return sum(
            entry.nbytes
            for tasks in self._index.values()
            for datas in tasks.values()
            for entry in datas.values()
            if entry.state is EntryState.IN_MEMORY
        )

    def entry_count(self) -> int:
        return sum(
            len(datas)
            for tasks in self._index.values()
            for datas in tasks.values()
        )

    def __repr__(self) -> str:
        return (
            f"<WaitMatchMemory {self.node.name} entries={self.entry_count()} "
            f"bytes={self.resident_bytes():.0f}>"
        )
