"""The Data Logic Unit: the per-container data daemon (paper §5.1).

The DLU runs beside the FLU, receives the function's output data, and
pushes it to destination sinks through pipe connectors — asynchronously,
so the FLU can serve the next invocation while data drains.  Pushes go
out **in FIFO order** through one connector at a time (§7: "The DLU of
the predecessor will send the data to child functions through different
pipe connectors in a FIFO fashion"), which is why a backlog at the DLU
translates directly into the queueing delay that Equation (1)'s pressure
term models (Figure 6).

The DLU also:

* counts pending transfers (the consistency-aware keep-alive refuses to
  recycle a container whose DLU still has data to pump, §6.2);
* tracks active flows so a container crash cancels them (fault model);
* reports the per-invocation transfer size for the pressure calculation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional

from ..cluster.container import Container
from ..cluster.network import FlowCancelled
from ..cluster.node import Node
from ..sim.resources import Store

from .pipes import ReDoSignal

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment
    from ..sim.events import Event
    from .pipes import PipeRouter


@dataclass
class _PushJob:
    src_node: Node
    dst_node: Node
    nbytes: float
    produced: "Event"
    label: str
    cancel_token: List[bool]
    on_delivered: Callable[[], None]
    on_abandoned: Optional[Callable[[], None]]


class DLU:
    """One container's data logic unit."""

    def __init__(self, env: "Environment", container: Container,
                 router: "PipeRouter") -> None:
        self.env = env
        self.container = container
        self.router = router
        self.pending = 0
        self.pushed_bytes = 0.0
        self.push_count = 0
        self._queue: Store = Store(env)
        self._worker = env.process(self._drain())
        container.dlu = self

    @property
    def idle(self) -> bool:
        """True when no data remains to be pumped (keep-alive condition)."""
        return self.pending == 0

    def push(
        self,
        src_node: Node,
        dst_node: Node,
        nbytes: float,
        compute_done: "Event",
        label: str,
        cancel_token: List[bool],
        on_delivered: Callable[[], None],
        on_abandoned: Optional[Callable[[], None]] = None,
    ) -> None:
        """Enqueue an asynchronous push; callbacks fire on the outcome."""
        self.pending += 1
        self.push_count += 1
        self._queue.put(
            _PushJob(
                src_node=src_node,
                dst_node=dst_node,
                nbytes=nbytes,
                produced=compute_done,
                label=label,
                cancel_token=cancel_token,
                on_delivered=on_delivered,
                on_abandoned=on_abandoned,
            )
        )

    # -- internal ------------------------------------------------------------

    def _drain(self):
        """FIFO worker: one pipe connector transmits at a time."""
        while True:
            job = yield self._queue.get()
            try:
                if job.cancel_token[0]:
                    raise ReDoSignal()
                outcome = yield from self.router.push(
                    self.container,
                    job.src_node,
                    job.dst_node,
                    job.nbytes,
                    job.produced,
                    label=job.label,
                    cancel_token=job.cancel_token,
                )
                self.pushed_bytes += outcome.nbytes
                job.on_delivered()
            except (FlowCancelled, ReDoSignal):
                # The producing FLU crashed: ReDo re-executes it on another
                # container, which repushes this datum from scratch.
                if job.on_abandoned is not None:
                    job.on_abandoned()
            finally:
                self.pending -= 1
