"""DataFlower core: the paper's primary contribution.

Public surface::

    from repro.core import DataFlowerConfig, DataFlowerSystem

    system = DataFlowerSystem(env, cluster, DataFlowerConfig())
    system.deploy(workflow, placement)
    done = system.submit(workflow.name, request)
"""

from .config import DataFlowerConfig
from .dataflow_graph import RequestDataPlane, USER_INPUT
from .dlu import DLU, ReDoSignal
from .engine import NodeEngine
from .fault import FailureInjector, InjectionLog
from .flu import FluInvocation
from .pipes import PipeRouter, PushOutcome
from .prewarm import PrewarmPolicy
from .scaling import ScalingDecision, evaluate, pressure
from .sink import EntryState, SinkEntry, WaitMatchMemory
from .system import DataFlowerSystem

__all__ = [
    "DLU",
    "DataFlowerConfig",
    "DataFlowerSystem",
    "EntryState",
    "FailureInjector",
    "FluInvocation",
    "InjectionLog",
    "NodeEngine",
    "PipeRouter",
    "PrewarmPolicy",
    "PushOutcome",
    "ReDoSignal",
    "RequestDataPlane",
    "ScalingDecision",
    "SinkEntry",
    "USER_INPUT",
    "WaitMatchMemory",
    "evaluate",
    "pressure",
]
