"""The unified ``repro`` command-line front-end.

One entry point for everything the reproduction can do::

    repro run --app wc --system dataflower --arrivals constant:60:20
    repro run --app ml_ensemble --format json \\
        --arrivals trace:examples/traces/mixed_tenants.csv
    repro replay examples/traces/mixed_tenants.csv --shards 4 --workers 4
    repro synth --tenants 16 --duration-s 120 --mean-rpm 30 \\
        --apps wc,etl --seed 7 --output big.csv
    repro experiments fig11 --scale 0.25
    repro apps
    repro systems
    repro validate my_workflow.dsl
    repro serve --port 8080 --workers 2
    repro worker --server http://127.0.0.1:8080

Installed as a ``console_scripts`` entry (``repro``) and runnable as
``python -m repro``.  Subcommands:

``run``
    Drive any registered app on any system under an arrival pattern and
    print a latency/usage report (table or JSON).  Arrival specs:

    * ``constant:<rpm>:<duration_s>`` — paced open loop;
    * ``burst:<base_rpm>:<burst_rpm>:<base_s>:<burst_s>`` — Figure 15 step;
    * ``closed:<clients>:<duration_s>`` — synchronous closed loop;
    * ``trace:<path.json|path.csv>`` — multi-tenant trace replay
      (see :mod:`repro.loadgen.trace`).

``replay``
    Streaming parallel trace replay (:mod:`repro.parallel`): partition a
    trace into cells by ``--policy`` and replay them across ``--workers``
    processes — by default through the cell-granular work-stealing
    scheduler with an online merge (``--stream``); ``--no-stream`` falls
    back to the static hash-batched engine (``--shards`` batches).  The
    merged report is bit-identical at any shard/worker/scheduling
    setting (``docs/scaling.md``); wall-clock and peak-RSS facts print
    separately under ``parallel``.
    ``--tenant-config`` makes the replay heterogeneous: each tenant's
    cell runs under its own profile — system, placement, cluster, and
    request limits — and the report tags per-tenant sections with the
    profile used (``docs/tenancy.md``).

``synth``
    Generate a deterministic multi-tenant trace file (Azure-trace-style
    skewed Poisson arrivals) for ``replay``/``run`` to consume; the
    ``--seed`` makes every synthesis reproducible.

``experiments``
    List or re-run the paper-figure registry (wraps
    ``python -m repro.experiments``).

``apps`` / ``systems``
    Show the registries the ``run`` flags accept.

``validate``
    Lint a Figure-7 DSL workflow file and print its structure.

``serve``
    Run the long-running HTTP orchestration service
    (:mod:`repro.serve`): submit runs over REST (``POST /v1/runs``),
    poll for merged reports, and stream NDJSON per-cell progress
    (``docs/serve.md``).

``worker``
    Join a ``repro serve`` control plane as a remote replay worker:
    register, long-poll for cell leases, replay them, and report the
    results.  Runs submitted with ``"workers": "remote"`` execute on
    the fleet and merge byte-identically to a local replay
    (``docs/workers.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .apps import get_app, registered_apps
from .experiments.common import make_setup, system_names
from .experiments.registry import experiment_ids, run_experiment
from .loadgen.arrivals import burst, constant
from .loadgen.runner import RunResult, run_closed_loop, run_open_loop
from .loadgen.trace import InvocationTrace, run_trace
from .metrics.report import render_json, render_table
from .workflow.dsl import DslError, parse_size
from .workflow.validation import WorkflowValidationError


class CliError(ValueError):
    """A bad flag/spec; printed as an error and exit code 2."""


# -- arrival-spec parsing ----------------------------------------------------------


def _split_spec(spec: str, kind: str, argc: int) -> List[str]:
    parts = spec.split(":")[1:]
    if len(parts) != argc:
        raise CliError(
            f"arrivals spec {spec!r}: {kind} takes {argc} ':'-separated "
            f"values after the kind"
        )
    return parts


def parse_arrivals(spec: str):
    """Parse an ``--arrivals`` spec into (kind, payload).

    Returns one of ``("open", schedule)``, ``("closed", (clients,
    duration_s))``, or ``("trace", InvocationTrace)``.
    """
    kind = spec.split(":", 1)[0]
    if kind == "constant":
        rpm, duration = _split_spec(spec, kind, 2)
        return "open", constant(float(rpm), float(duration))
    if kind == "burst":
        base, surge, base_s, surge_s = _split_spec(spec, kind, 4)
        return "open", burst(float(base), float(surge), float(base_s), float(surge_s))
    if kind == "closed":
        clients, duration = _split_spec(spec, kind, 2)
        return "closed", (int(clients), float(duration))
    if kind == "trace":
        path = spec.partition(":")[2]
        if not path:
            raise CliError("arrivals spec 'trace:' needs a file path")
        return "trace", _load_trace(path)
    raise CliError(
        f"unknown arrivals kind {kind!r}; expected constant, burst, "
        f"closed, or trace"
    )


# -- subcommands --------------------------------------------------------------------


def _emit(text: str, output: Optional[str]) -> None:
    """Print a report, or write it to ``output`` and say so."""
    if output:
        with open(output, "w") as handle:
            handle.write(text + "\n")
        print(f"[wrote {output}]")
    else:
        print(text)


def _load_tenant_config(path: str, base_system: str, base_placement: str):
    """Load + fail-fast-validate a ``--tenant-config`` file.

    Validation happens here, against the system/placement registries,
    so a profile naming an unknown system dies with a named-tenant
    message at the CLI — never deep inside a replay worker process.
    """
    from .parallel.profiles import TenantConfig, TenantProfileError

    try:
        config = TenantConfig.load(path)
        config.validate(base_system, base_placement)
    except FileNotFoundError:
        raise CliError(f"tenant config not found: {path}") from None
    except OSError as exc:
        raise CliError(f"cannot read tenant config {path}: {exc}") from None
    except TenantProfileError as exc:
        raise CliError(f"tenant config {path}: {exc}") from None
    return config


def _profile_table(spec, trace) -> str:
    """The resolved per-tenant profile table a heterogeneous run echoes."""
    rows = []
    for tenant in trace.tenants():
        resolved = spec.resolve(tenant)
        rows.append(
            [
                tenant,
                resolved.system,
                resolved.placement,
                resolved.timeout_s,
                resolved.source,
            ]
        )
    return render_table(
        ["tenant", "system", "placement", "timeout_s", "source"],
        rows,
        title="tenant profiles",
    )


def cmd_run(args: argparse.Namespace) -> int:
    app = get_app(args.app)
    kind, payload = parse_arrivals(args.arrivals)
    if kind == "trace" and args.poisson:
        raise CliError(
            "--poisson only applies to constant/burst arrivals; trace "
            "events carry their own timestamps"
        )
    if args.tenant_config:
        if kind != "trace":
            raise CliError(
                "--tenant-config requires trace arrivals "
                "(--arrivals trace:<file>); per-tenant profiles have no "
                "meaning under single-tenant open/closed loops"
            )
        return _run_heterogeneous_trace(args, payload)

    deploy_apps = [args.app]
    if kind == "trace":
        deploy_apps += [a for a in payload.apps() if a != args.app]
    overrides = {"seed": args.seed} if args.seed else None
    setup = make_setup(
        args.system,
        args.app,
        system_overrides=overrides,
        placement=args.placement,
        apps=deploy_apps,
    )

    input_bytes = parse_size(args.input_bytes) if args.input_bytes else None
    factory = setup.request_factory(
        input_bytes=input_bytes, fanout=args.fanout
    )
    if kind == "open":
        result: RunResult = run_open_loop(
            setup.system,
            app.workflow_name,
            factory,
            payload,
            timeout_s=args.timeout_s,
            poisson=args.poisson,
            seed=args.seed,
        )
    elif kind == "closed":
        clients, duration_s = payload
        result = run_closed_loop(
            setup.system,
            app.workflow_name,
            factory,
            clients,
            duration_s,
            timeout_s=args.timeout_s,
        )
    else:
        result = run_trace(
            setup.system,
            payload,
            default_app=args.app,
            timeout_s=args.timeout_s,
            input_bytes=input_bytes,
            fanout=args.fanout,
        )

    payload_dict = result.to_dict()
    payload_dict["app"] = args.app
    payload_dict["arrivals"] = args.arrivals
    text = (
        render_json(payload_dict)
        if args.format == "json"
        else _run_report_table(payload_dict)
    )
    _emit(text, args.output)
    return _report_exit_code(payload_dict)


def _replay_spec_from_args(args: argparse.Namespace):
    """The ReplaySpec shared by ``repro replay`` and the heterogeneous
    ``repro run`` path — one place to thread new spec fields through."""
    from .parallel import ReplaySpec
    from .parallel.sink import DEFAULT_MAX_RECORDS_IN_MEMORY, RecordSinkSpec

    # Either spill flag opts into the disk-spilling record sink; the
    # sink never changes the report, only where merged records live.
    record_sink = None
    spill_dir = getattr(args, "spill_dir", None)
    max_records = getattr(args, "max_records_in_memory", None)
    if spill_dir is not None or max_records is not None:
        if max_records is not None and max_records < 1:
            raise CliError("--max-records-in-memory must be >= 1")
        record_sink = RecordSinkSpec(
            kind="spill",
            spill_dir=spill_dir,
            max_records_in_memory=(
                max_records
                if max_records is not None
                else DEFAULT_MAX_RECORDS_IN_MEMORY
            ),
        )
    return ReplaySpec(
        system_name=args.system,
        default_app=args.app,
        placement=args.placement,
        seed=args.seed,
        timeout_s=args.timeout_s,
        input_bytes=parse_size(args.input_bytes) if args.input_bytes else None,
        fanout=args.fanout,
        record_sink=record_sink,
    )


def _run_heterogeneous_trace(args: argparse.Namespace, trace) -> int:
    """``repro run --tenant-config``: per-tenant worlds via the replay
    engine's serial path (one cell per tenant, merged report)."""
    from .parallel import run_parallel_replay

    config = _load_tenant_config(args.tenant_config, args.system, args.placement)
    spec = _replay_spec_from_args(args).with_tenant_config(config)
    result = run_parallel_replay(trace, spec, shards=1, workers=1)
    payload = result.to_dict()
    payload["app"] = args.app
    payload["arrivals"] = args.arrivals
    if args.format == "json":
        text = render_json(payload)
    else:
        text = _profile_table(spec, trace) + "\n\n" + _run_report_table(payload)
    _emit(text, args.output)
    return _report_exit_code(payload)


def _report_table(title: str, identity_rows: List[List], report: dict) -> str:
    """Render the common report-table tail after caller-specific rows."""
    rows = identity_rows + [
        ["offered", report["offered"]],
        ["completed", report["completed"]],
        ["failed", report["failed"]],
        ["failure_rate", report["failure_rate"]],
        ["throughput_rpm", report["throughput_rpm"]],
    ]
    latency = report.get("latency")
    if latency:
        for key in ("mean_s", "p50_s", "p99_s", "max_s"):
            rows.append([f"latency.{key}", latency[key]])
    usage = report.get("usage")
    if usage:
        rows.append(["memory_gbs", usage["memory_gbs"]])
        rows.append(["cache_mbs", usage["cache_mbs"]])
    parts = [render_table(["metric", "value"], rows, title=title)]
    tenants = report.get("tenants")
    if tenants and len(tenants) > 1:
        tenant_rows = [
            [
                tenant,
                stats["offered"],
                stats["completed"],
                stats["latency"]["p50_s"] if stats["latency"] else None,
                stats["latency"]["p99_s"] if stats["latency"] else None,
            ]
            for tenant, stats in tenants.items()
        ]
        parts.append("")
        parts.append(
            render_table(
                ["tenant", "offered", "completed", "p50_s", "p99_s"],
                tenant_rows,
                title="per-tenant",
            )
        )
    return "\n".join(parts)


def _run_report_table(report: dict) -> str:
    return _report_table(
        "run report",
        [
            ["app", report["app"]],
            ["system", report["system"]],
            ["workflow", report["workflow"]],
            ["arrivals", report["arrivals"]],
        ],
        report,
    )


def _load_trace(path: str) -> InvocationTrace:
    try:
        return InvocationTrace.load(path)
    except FileNotFoundError:
        raise CliError(f"trace file not found: {path}") from None
    except ValueError as exc:
        raise CliError(f"bad trace file {path}: {exc}") from None


def _report_exit_code(payload: dict) -> int:
    """Exit code from a finished report: 3 degraded, 1 failed, 0 clean.

    Degraded means the replay completed but skipped cells
    (``replay.failed_cells`` non-empty under ``--on-cell-failure
    skip``); failed means individual requests inside the run errored
    (``failed > 0``).  Degraded outranks failed: a partial report is
    the stronger signal for scripts gating on the exit code.
    """
    if payload.get("replay", {}).get("failed_cells"):
        return 3
    if payload.get("failed", 0) > 0:
        return 1
    return 0


def _parse_fault(text: str):
    """Parse one ``--fault KIND:CELL[:ATTEMPT[:DELAY_S]]`` spec."""
    from .parallel import FaultSpec

    parts = text.split(":")
    if not 2 <= len(parts) <= 4:
        raise CliError(
            f"fault spec {text!r}: expected KIND:CELL[:ATTEMPT[:DELAY_S]]"
        )
    kind, cell = parts[0], parts[1]
    try:
        attempt = int(parts[2]) if len(parts) >= 3 else 1
        delay_s = float(parts[3]) if len(parts) >= 4 else 0.0
    except ValueError as exc:
        raise CliError(f"fault spec {text!r}: {exc}") from None
    fault = FaultSpec(kind=kind, cell=cell, attempt=attempt, delay_s=delay_s)
    try:
        fault.validate()
    except ValueError as exc:
        raise CliError(f"fault spec {text!r}: {exc}") from None
    return fault


def cmd_replay(args: argparse.Namespace) -> int:
    from .parallel import (
        HostFaultPlan,
        RetryPolicy,
        get_shard_policy,
        run_parallel_replay,
    )
    from .systems.placement import get_policy as get_placement_policy

    trace = _load_trace(args.trace)
    try:
        policy = get_shard_policy(args.policy)
    except ValueError as exc:
        raise CliError(str(exc)) from None
    try:
        get_placement_policy(args.placement)
    except (KeyError, ValueError) as exc:
        raise CliError(str(exc.args[0] if exc.args else exc)) from None
    if args.shards < 1:
        raise CliError("--shards must be >= 1")
    if args.workers is not None and args.workers < 1:
        raise CliError("--workers must be >= 1")
    retry = RetryPolicy(
        max_attempts=args.max_attempts, deadline_s=args.deadline_s
    )
    try:
        retry.validate()
    except ValueError as exc:
        raise CliError(str(exc)) from None
    fault_plan = None
    if args.fault:
        fault_plan = HostFaultPlan(
            faults=tuple(_parse_fault(text) for text in args.fault)
        )
    spec = _replay_spec_from_args(args)
    if args.tenant_config:
        if policy.name != "tenant":
            # Profiles key on tenants; under other partitions a tenant's
            # events can land in mixed or multiple cells, and the echoed
            # profile table would not describe what actually ran.
            raise CliError(
                f"--tenant-config requires --policy tenant (got "
                f"{args.policy!r}): profiles resolve per tenant cell"
            )
        config = _load_tenant_config(
            args.tenant_config, args.system, args.placement
        )
        spec = spec.with_tenant_config(config)
    metrics = None
    if args.metrics_out:
        from .metrics.telemetry import MetricsRegistry

        metrics = MetricsRegistry()
    result = run_parallel_replay(
        trace, spec, shards=args.shards, workers=args.workers, policy=policy,
        stream=args.stream, retry=retry, fault_plan=fault_plan,
        on_cell_failure=args.on_cell_failure, metrics=metrics,
    )
    if metrics is not None:
        # The same Prometheus text GET /metrics serves, dumped for
        # one-shot runs (scrapeless CI, ad-hoc analysis).
        with open(args.metrics_out, "w") as handle:
            handle.write(metrics.render_prometheus())
        print(f"[wrote {args.metrics_out}]", file=sys.stderr)

    payload = result.to_dict()
    payload["trace"] = args.trace
    # Scheduling facts live outside the deterministic report body: the
    # merged results above are identical at any --shards/--workers and
    # with or without --stream.
    payload["parallel"] = {
        "policy": result.policy_name,
        "cells": result.cell_count,
        "shards": result.shards,
        "workers": result.workers,
        "stream": result.streamed,
        "wall_s": result.wall_s,
        "events_per_s": result.events_per_s(),
        "max_rss_mb": result.rss_mb,
    }
    if args.format == "json":
        text = render_json(payload)
    else:
        text = _replay_report_table(payload)
        if spec.has_profiles:
            # Echo the resolved profile table so heterogeneous runs are
            # auditable at a glance.
            text = _profile_table(spec, trace) + "\n\n" + text
    _emit(text, args.output)
    return _report_exit_code(payload)


def _replay_report_table(report: dict) -> str:
    parallel = report["parallel"]
    return _report_table(
        "sharded replay report",
        [
            ["trace", report["trace"]],
            ["system", report["system"]],
            ["workflow", report["workflow"]],
            ["policy", parallel["policy"]],
            ["cells", parallel["cells"]],
            ["shards", parallel["shards"]],
            ["workers", parallel["workers"]],
            ["stream", parallel["stream"]],
            ["wall_s", parallel["wall_s"]],
            ["events_per_s", parallel["events_per_s"]],
            ["max_rss_mb", parallel["max_rss_mb"]],
        ],
        report,
    )


def cmd_synth(args: argparse.Namespace) -> int:
    from .loadgen.trace import synthesize_trace

    apps = [a for a in (args.apps or "").split(",") if a] or None
    if apps:
        for app in apps:
            get_app(app)  # raises KeyError -> exit 2 on unknown names
    try:
        trace = synthesize_trace(
            tenants=args.tenants,
            duration_s=args.duration_s,
            mean_rpm=args.mean_rpm,
            apps=apps,
            rate_sigma=args.rate_sigma,
            input_bytes=parse_size(args.input_bytes) if args.input_bytes else None,
            seed=args.seed,
            name=args.name,
        )
    except ValueError as exc:
        raise CliError(str(exc)) from None
    if args.output:
        text = (
            trace.to_csv()
            if args.output.lower().endswith(".csv")
            else trace.to_json() + "\n"
        )
        with open(args.output, "w") as handle:
            handle.write(text)
        print(
            f"[wrote {args.output}: {len(trace)} events, "
            f"{len(trace.tenants())} tenants, {trace.duration_s:.1f}s]"
        )
    else:
        print(trace.to_json())
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    if not args.experiment:
        print("available experiments:")
        for experiment_id in experiment_ids():
            print(f"  {experiment_id}")
        return 0
    targets = experiment_ids() if args.experiment == "all" else [args.experiment]
    for experiment_id in targets:
        results = run_experiment(experiment_id, scale=args.scale)
        for result in results:
            print(result.render())
            print()
            if args.csv_dir:
                import pathlib

                directory = pathlib.Path(args.csv_dir)
                directory.mkdir(parents=True, exist_ok=True)
                path = directory / f"{result.experiment_id}.csv"
                path.write_text(result.to_csv())
                print(f"[wrote {path}]")
    return 0


def cmd_apps(args: argparse.Namespace) -> int:
    rows = []
    for spec in registered_apps():
        workflow = spec.build()
        rows.append(
            [
                spec.short_name,
                spec.title,
                len(workflow.functions),
                f"{spec.default_input_bytes / (1024 * 1024):g}MB",
                spec.default_fanout,
            ]
        )
    print(
        render_table(
            ["name", "title", "functions", "input", "fanout"],
            rows,
            title="registered apps",
        )
    )
    return 0


def cmd_systems(args: argparse.Namespace) -> int:
    from .experiments.common import SYSTEM_CLASSES

    rows = [
        [name, cls.__name__, (cls.__doc__ or "").strip().splitlines()[0]]
        for name, cls in SYSTEM_CLASSES.items()
    ]
    print(render_table(["name", "class", "summary"], rows, title="systems"))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .serve import create_server

    if not 0 <= args.port <= 65535:
        raise CliError(f"--port must be 0..65535, got {args.port}")
    if args.workers < 1:
        raise CliError("--workers must be >= 1")
    if args.max_events_per_run is not None and args.max_events_per_run < 1:
        raise CliError("--max-events-per-run must be >= 1")
    if args.max_queued is not None and args.max_queued < 1:
        raise CliError("--max-queued must be >= 1")
    if args.lease_timeout_s <= 0:
        raise CliError("--lease-timeout-s must be > 0")
    if args.heartbeat_timeout_s <= 0:
        raise CliError("--heartbeat-timeout-s must be > 0")
    default_config = None
    if args.tenant_config:
        # Same fail-fast gate as replay: a bad profile file kills the
        # server at boot with the tenant's name, not the first request.
        default_config = _load_tenant_config(
            args.tenant_config, "dataflower", "round_robin"
        )
    try:
        server = create_server(
            host=args.host,
            port=args.port,
            workers=args.workers,
            default_tenant_config=default_config,
            journal=args.journal,
            dashboard=not args.no_dashboard,
            max_events_per_run=args.max_events_per_run,
            max_queued=args.max_queued,
            lease_timeout_s=args.lease_timeout_s,
            heartbeat_timeout_s=args.heartbeat_timeout_s,
        )
    except OSError as exc:
        raise CliError(
            f"cannot bind {args.host}:{args.port}: {exc}"
        ) from None
    # Ctrl-C raises KeyboardInterrupt already; make SIGTERM (what CI,
    # shells backgrounding the server, and orchestrators send) take the
    # same clean-shutdown path instead of the default hard kill.
    import signal

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _terminate)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass
    durability = f"journal: {args.journal}" if args.journal else "no journal"
    dash = "dashboard off" if args.no_dashboard else \
        f"dashboard: {server.url}/dashboard"
    # flush: orchestrators and test harnesses parse this line from a
    # pipe to learn the ephemeral port before the first request.
    print(f"repro serve listening on {server.url} "
          f"({args.workers} job worker(s); {durability}; {dash}; "
          f"see docs/serve.md)", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.close()
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    from .worker import run_worker

    if args.poll_s <= 0:
        raise CliError("--poll-s must be > 0")
    if args.max_cells is not None and args.max_cells < 1:
        raise CliError("--max-cells must be >= 1")
    return run_worker(
        args.server,
        name=args.name,
        poll_s=args.poll_s,
        max_cells=args.max_cells,
        quiet=args.quiet,
    )


def cmd_validate(args: argparse.Namespace) -> int:
    try:
        text = open(args.file).read()
    except FileNotFoundError:
        raise CliError(f"no such file: {args.file}") from None
    try:
        from .workflow.dsl import parse_workflow

        workflow = parse_workflow(text)
    except (DslError, WorkflowValidationError) as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    from .workflow.visualize import render_workflow

    print(f"OK: workflow {workflow.name!r}, entry {workflow.entry!r}, "
          f"{len(workflow.functions)} functions")
    print(render_workflow(workflow))
    return 0


# -- parser -------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DataFlower reproduction: run workloads, experiments, "
        "and workflow validation from one entry point.",
    )
    sub = parser.add_subparsers(dest="command")

    run = sub.add_parser("run", help="run one app x system x arrival pattern")
    run.add_argument("--app", required=True,
                     help="registered app short name (see 'repro apps')")
    run.add_argument("--system", default="dataflower", choices=system_names(),
                     help="execution system (default: dataflower)")
    run.add_argument("--arrivals", default="constant:60:20",
                     help="constant:<rpm>:<s> | burst:<rpm>:<rpm>:<s>:<s> | "
                     "closed:<clients>:<s> | trace:<file> "
                     "(default: constant:60:20)")
    run.add_argument("--placement", default="round_robin",
                     help="placement policy (round_robin, single_node, "
                     "hashed, offset:<n>)")
    run.add_argument("--tenant-config", default=None,
                     help="per-tenant profile file (JSON or YAML-lite; "
                     "requires trace arrivals, see docs/tenancy.md)")
    run.add_argument("--input-bytes", default=None,
                     help="request input size, e.g. 4MB (default: app default)")
    run.add_argument("--fanout", type=int, default=None,
                     help="FOREACH width (default: app default)")
    run.add_argument("--timeout-s", type=float, default=60.0,
                     help="per-request timeout (default: 60)")
    run.add_argument("--poisson", action="store_true",
                     help="Poisson (instead of paced) open-loop arrivals")
    run.add_argument("--seed", type=int, default=0,
                     help="system + arrival RNG seed")
    run.add_argument("--format", choices=["table", "json"], default="table",
                     help="report format (default: table)")
    run.add_argument("--output", default=None,
                     help="write the report to a file instead of stdout")
    run.set_defaults(func=cmd_run)

    replay = sub.add_parser(
        "replay",
        help="sharded parallel trace replay with a merged report",
    )
    replay.add_argument("trace", help="trace file (.json or .csv)")
    replay.add_argument("--app", default=None,
                        help="default app for events naming none")
    replay.add_argument("--system", default="dataflower",
                        choices=system_names(),
                        help="execution system (default: dataflower)")
    replay.add_argument("--placement", default="round_robin",
                        help="placement policy (round_robin, single_node, "
                        "hashed, offset:<n>)")
    replay.add_argument("--tenant-config", default=None,
                        help="per-tenant profile file: default profile + "
                        "per-tenant system/placement/limit overrides "
                        "(JSON or YAML-lite, see docs/tenancy.md)")
    replay.add_argument("--shards", type=int, default=1,
                        help="cell batches for --no-stream; also the "
                        "--workers default (default: 1, serial)")
    replay.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: min(shards, cores))")
    replay.add_argument("--stream", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="cell-granular work-stealing scheduler with "
                        "online merge (default); --no-stream uses the "
                        "static hash-batched engine")
    replay.add_argument("--spill-dir", default=None, metavar="PATH",
                        help="spill merged records to sorted run files "
                        "under this directory instead of holding them in "
                        "RAM (bounded-memory merge; the report is "
                        "byte-identical either way)")
    replay.add_argument("--max-records-in-memory", type=int, default=None,
                        metavar="N",
                        help="records buffered before cells spill to disk "
                        "(default: 10000; setting this enables spilling "
                        "even without --spill-dir)")
    replay.add_argument("--policy", default="tenant",
                        help="cell partition policy: tenant | "
                        "timeslice[:<seconds>] (default: tenant)")
    replay.add_argument("--seed", type=int, default=0,
                        help="root seed; per-cell seeds derive from it")
    replay.add_argument("--input-bytes", default=None,
                        help="input size for events carrying none, e.g. 4MB")
    replay.add_argument("--fanout", type=int, default=None,
                        help="FOREACH width for events carrying none")
    replay.add_argument("--timeout-s", type=float, default=60.0,
                        help="per-request timeout (default: 60)")
    replay.add_argument("--max-attempts", type=int, default=3,
                        help="replays of one cell before it counts as "
                        "failed; worker crashes, deadlines, and cell "
                        "errors all consume attempts (default: 3)")
    replay.add_argument("--deadline-s", type=float, default=None,
                        help="wall-clock budget per cell attempt; an "
                        "attempt over budget fails as 'timeout' and "
                        "retries (default: none)")
    replay.add_argument("--on-cell-failure", choices=["fail", "skip"],
                        default="fail",
                        help="after attempts are exhausted: 'fail' aborts "
                        "the replay, 'skip' drops the cell and reports it "
                        "under replay.failed_cells — exit code 3 "
                        "(default: fail)")
    replay.add_argument("--fault", action="append", default=None,
                        metavar="KIND:CELL[:ATTEMPT[:DELAY_S]]",
                        help="inject a host fault for chaos testing: kill "
                        "(SIGKILL the worker mid-cell), delay (sleep "
                        "DELAY_S first), or poison (raise); ATTEMPT picks "
                        "which attempt fires (1-based; 0 = every "
                        "attempt).  Repeatable (see docs/robustness.md)")
    replay.add_argument("--format", choices=["table", "json"],
                        default="table", help="report format (default: table)")
    replay.add_argument("--output", default=None,
                        help="write the report to a file instead of stdout")
    replay.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="also write the run's telemetry counters and "
                        "histograms as Prometheus text — the same format "
                        "'repro serve' exposes at GET /metrics "
                        "(see docs/observability.md)")
    replay.set_defaults(func=cmd_replay)

    synth = sub.add_parser(
        "synth", help="synthesize a deterministic multi-tenant trace file"
    )
    synth.add_argument("--tenants", type=int, default=8,
                       help="tenant count (default: 8)")
    synth.add_argument("--duration-s", type=float, default=60.0,
                       help="trace length in seconds (default: 60)")
    synth.add_argument("--mean-rpm", type=float, default=30.0,
                       help="mean per-tenant request rate (default: 30)")
    synth.add_argument("--apps", default=None,
                       help="comma-separated app names cycled over tenants")
    synth.add_argument("--rate-sigma", type=float, default=1.0,
                       help="lognormal tenant-rate skew; 0 = uniform "
                       "(default: 1.0)")
    synth.add_argument("--input-bytes", default=None,
                       help="mean input size with jitter, e.g. 4MB")
    synth.add_argument("--seed", type=int, default=0,
                       help="synthesis RNG seed (default: 0)")
    synth.add_argument("--name", default="synthetic",
                       help="trace name (default: synthetic)")
    synth.add_argument("--output", default=None,
                       help="output file; .csv writes CSV, anything else "
                       "JSON (default: JSON to stdout)")
    synth.set_defaults(func=cmd_synth)

    experiments = sub.add_parser(
        "experiments", help="list or re-run the paper-figure registry"
    )
    experiments.add_argument(
        "experiment", nargs="?",
        help=f"experiment id ({', '.join(experiment_ids())}) or 'all'"
    )
    experiments.add_argument("--scale", type=float, default=1.0,
                             help="shrink sweeps/durations (0 < scale <= 1)")
    experiments.add_argument("--csv-dir", default=None,
                             help="also write each table as <dir>/<id>.csv")
    experiments.set_defaults(func=cmd_experiments)

    apps = sub.add_parser("apps", help="list registered applications")
    apps.set_defaults(func=cmd_apps)

    systems = sub.add_parser("systems", help="list execution systems")
    systems.set_defaults(func=cmd_systems)

    validate = sub.add_parser(
        "validate", help="lint a Figure-7 DSL workflow file"
    )
    validate.add_argument("file", help="path to a workflow definition")
    validate.set_defaults(func=cmd_validate)

    serve = sub.add_parser(
        "serve",
        help="long-running HTTP orchestration service (REST + NDJSON)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port; 0 picks an ephemeral port "
                       "(default: 8080)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent job worker threads; each run may "
                       "additionally request its own replay process pool "
                       "(default: 2)")
    serve.add_argument("--tenant-config", default=None,
                       help="default per-tenant profile file applied to "
                       "runs that carry no inline tenant_config "
                       "(JSON or YAML-lite, see docs/tenancy.md)")
    serve.add_argument("--journal", default=None, metavar="PATH",
                       help="durable run journal (append-only JSONL): "
                       "runs survive restarts and resume from completed "
                       "cells; restarting on the same path recovers all "
                       "journaled runs (see docs/serve.md)")
    serve.add_argument("--max-events-per-run", type=int, default=10_000,
                       metavar="N",
                       help="in-RAM event-log cap per run (default "
                       "10000); older events spill to a per-run disk "
                       "spool that history replays come from")
    serve.add_argument("--max-queued", type=int, default=None, metavar="N",
                       help="admission control: reject new runs with "
                       "429 + Retry-After once N submissions are queued "
                       "(default: unbounded; see docs/robustness.md)")
    serve.add_argument("--lease-timeout-s", type=float, default=30.0,
                       metavar="S",
                       help="remote fleet: seconds a leased cell may run "
                       "before the lease expires and the cell requeues "
                       "(default: 30; see docs/workers.md)")
    serve.add_argument("--heartbeat-timeout-s", type=float, default=90.0,
                       metavar="S",
                       help="remote fleet: seconds of worker silence "
                       "before it is evicted and its leases expire "
                       "(default: 90; see docs/workers.md)")
    serve.add_argument("--no-dashboard", action="store_true",
                       help="disable GET /dashboard (the live telemetry "
                       "page); the API and GET /metrics stay up "
                       "(see docs/observability.md)")
    serve.set_defaults(func=cmd_serve)

    worker = sub.add_parser(
        "worker",
        help="join a 'repro serve' control plane as a remote replay "
        "worker (lease cells, replay, report)",
    )
    worker.add_argument("--server", required=True, metavar="URL",
                        help="control plane base URL, e.g. "
                        "http://127.0.0.1:8080")
    worker.add_argument("--name", default=None,
                        help="human-readable label shown in GET "
                        "/v1/workers and the dashboard")
    worker.add_argument("--poll-s", type=float, default=20.0, metavar="S",
                        help="long-poll length per lease request; the "
                        "server caps it at 30 (default: 20)")
    worker.add_argument("--max-cells", type=int, default=None, metavar="N",
                        help="exit cleanly after executing N cells "
                        "(default: run until SIGTERM)")
    worker.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress lines")
    worker.set_defaults(func=cmd_worker)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from .parallel import CellFailedError

    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "func", None):
        parser.print_help()
        return 0
    try:
        return args.func(args)
    except CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except CellFailedError as exc:
        # A cell exhausted its retries under --on-cell-failure fail:
        # a run outcome (exit 1, like failed requests), not a usage
        # error — and never a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
