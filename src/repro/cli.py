"""The unified ``repro`` command-line front-end.

One entry point for everything the reproduction can do::

    repro run --app wc --system dataflower --arrivals constant:60:20
    repro run --app ml_ensemble --format json \\
        --arrivals trace:examples/traces/mixed_tenants.csv
    repro experiments fig11 --scale 0.25
    repro apps
    repro systems
    repro validate my_workflow.dsl

Installed as a ``console_scripts`` entry (``repro``) and runnable as
``python -m repro``.  Subcommands:

``run``
    Drive any registered app on any system under an arrival pattern and
    print a latency/usage report (table or JSON).  Arrival specs:

    * ``constant:<rpm>:<duration_s>`` — paced open loop;
    * ``burst:<base_rpm>:<burst_rpm>:<base_s>:<burst_s>`` — Figure 15 step;
    * ``closed:<clients>:<duration_s>`` — synchronous closed loop;
    * ``trace:<path.json|path.csv>`` — multi-tenant trace replay
      (see :mod:`repro.loadgen.trace`).

``experiments``
    List or re-run the paper-figure registry (wraps
    ``python -m repro.experiments``).

``apps`` / ``systems``
    Show the registries the ``run`` flags accept.

``validate``
    Lint a Figure-7 DSL workflow file and print its structure.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .apps import get_app, registered_apps
from .experiments.common import make_setup, system_names
from .experiments.registry import experiment_ids, run_experiment
from .loadgen.arrivals import burst, constant
from .loadgen.runner import RunResult, run_closed_loop, run_open_loop
from .loadgen.trace import InvocationTrace, run_trace
from .metrics.report import render_json, render_table
from .workflow.dsl import DslError, parse_size
from .workflow.validation import WorkflowValidationError


class CliError(ValueError):
    """A bad flag/spec; printed as an error and exit code 2."""


# -- arrival-spec parsing ----------------------------------------------------------


def _split_spec(spec: str, kind: str, argc: int) -> List[str]:
    parts = spec.split(":")[1:]
    if len(parts) != argc:
        raise CliError(
            f"arrivals spec {spec!r}: {kind} takes {argc} ':'-separated "
            f"values after the kind"
        )
    return parts


def parse_arrivals(spec: str):
    """Parse an ``--arrivals`` spec into (kind, payload).

    Returns one of ``("open", schedule)``, ``("closed", (clients,
    duration_s))``, or ``("trace", InvocationTrace)``.
    """
    kind = spec.split(":", 1)[0]
    if kind == "constant":
        rpm, duration = _split_spec(spec, kind, 2)
        return "open", constant(float(rpm), float(duration))
    if kind == "burst":
        base, surge, base_s, surge_s = _split_spec(spec, kind, 4)
        return "open", burst(float(base), float(surge), float(base_s), float(surge_s))
    if kind == "closed":
        clients, duration = _split_spec(spec, kind, 2)
        return "closed", (int(clients), float(duration))
    if kind == "trace":
        path = spec.partition(":")[2]
        if not path:
            raise CliError("arrivals spec 'trace:' needs a file path")
        try:
            return "trace", InvocationTrace.load(path)
        except FileNotFoundError:
            raise CliError(f"trace file not found: {path}") from None
        except ValueError as exc:
            raise CliError(f"bad trace file {path}: {exc}") from None
    raise CliError(
        f"unknown arrivals kind {kind!r}; expected constant, burst, "
        f"closed, or trace"
    )


# -- subcommands --------------------------------------------------------------------


def cmd_run(args: argparse.Namespace) -> int:
    app = get_app(args.app)
    kind, payload = parse_arrivals(args.arrivals)

    deploy_apps = [args.app]
    if kind == "trace":
        deploy_apps += [a for a in payload.apps() if a != args.app]
    overrides = {"seed": args.seed} if args.seed else None
    setup = make_setup(
        args.system,
        args.app,
        system_overrides=overrides,
        placement=args.placement,
        apps=deploy_apps,
    )

    input_bytes = parse_size(args.input_bytes) if args.input_bytes else None
    factory = setup.request_factory(
        input_bytes=input_bytes, fanout=args.fanout
    )
    if kind == "open":
        result: RunResult = run_open_loop(
            setup.system,
            app.workflow_name,
            factory,
            payload,
            timeout_s=args.timeout_s,
            poisson=args.poisson,
            seed=args.seed,
        )
    elif kind == "closed":
        clients, duration_s = payload
        result = run_closed_loop(
            setup.system,
            app.workflow_name,
            factory,
            clients,
            duration_s,
            timeout_s=args.timeout_s,
        )
    else:
        if args.poisson:
            raise CliError(
                "--poisson only applies to constant/burst arrivals; trace "
                "events carry their own timestamps"
            )
        result = run_trace(
            setup.system,
            payload,
            default_app=args.app,
            timeout_s=args.timeout_s,
            input_bytes=input_bytes,
            fanout=args.fanout,
        )

    payload_dict = result.to_dict()
    payload_dict["app"] = args.app
    payload_dict["arrivals"] = args.arrivals
    text = (
        render_json(payload_dict)
        if args.format == "json"
        else _run_report_table(payload_dict)
    )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"[wrote {args.output}]")
    else:
        print(text)
    return 0


def _run_report_table(report: dict) -> str:
    rows = [
        ["app", report["app"]],
        ["system", report["system"]],
        ["workflow", report["workflow"]],
        ["arrivals", report["arrivals"]],
        ["offered", report["offered"]],
        ["completed", report["completed"]],
        ["failed", report["failed"]],
        ["failure_rate", report["failure_rate"]],
        ["throughput_rpm", report["throughput_rpm"]],
    ]
    latency = report.get("latency")
    if latency:
        for key in ("mean_s", "p50_s", "p99_s", "max_s"):
            rows.append([f"latency.{key}", latency[key]])
    usage = report.get("usage")
    if usage:
        rows.append(["memory_gbs", usage["memory_gbs"]])
        rows.append(["cache_mbs", usage["cache_mbs"]])
    parts = [render_table(["metric", "value"], rows, title="run report")]
    tenants = report.get("tenants")
    if tenants and len(tenants) > 1:
        tenant_rows = [
            [
                tenant,
                stats["offered"],
                stats["completed"],
                stats["latency"]["p50_s"] if stats["latency"] else None,
                stats["latency"]["p99_s"] if stats["latency"] else None,
            ]
            for tenant, stats in tenants.items()
        ]
        parts.append("")
        parts.append(
            render_table(
                ["tenant", "offered", "completed", "p50_s", "p99_s"],
                tenant_rows,
                title="per-tenant",
            )
        )
    return "\n".join(parts)


def cmd_experiments(args: argparse.Namespace) -> int:
    if not args.experiment:
        print("available experiments:")
        for experiment_id in experiment_ids():
            print(f"  {experiment_id}")
        return 0
    targets = experiment_ids() if args.experiment == "all" else [args.experiment]
    for experiment_id in targets:
        results = run_experiment(experiment_id, scale=args.scale)
        for result in results:
            print(result.render())
            print()
            if args.csv_dir:
                import pathlib

                directory = pathlib.Path(args.csv_dir)
                directory.mkdir(parents=True, exist_ok=True)
                path = directory / f"{result.experiment_id}.csv"
                path.write_text(result.to_csv())
                print(f"[wrote {path}]")
    return 0


def cmd_apps(args: argparse.Namespace) -> int:
    rows = []
    for spec in registered_apps():
        workflow = spec.build()
        rows.append(
            [
                spec.short_name,
                spec.title,
                len(workflow.functions),
                f"{spec.default_input_bytes / (1024 * 1024):g}MB",
                spec.default_fanout,
            ]
        )
    print(
        render_table(
            ["name", "title", "functions", "input", "fanout"],
            rows,
            title="registered apps",
        )
    )
    return 0


def cmd_systems(args: argparse.Namespace) -> int:
    from .experiments.common import SYSTEM_CLASSES

    rows = [
        [name, cls.__name__, (cls.__doc__ or "").strip().splitlines()[0]]
        for name, cls in SYSTEM_CLASSES.items()
    ]
    print(render_table(["name", "class", "summary"], rows, title="systems"))
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    try:
        text = open(args.file).read()
    except FileNotFoundError:
        raise CliError(f"no such file: {args.file}") from None
    try:
        from .workflow.dsl import parse_workflow

        workflow = parse_workflow(text)
    except (DslError, WorkflowValidationError) as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    from .workflow.visualize import render_workflow

    print(f"OK: workflow {workflow.name!r}, entry {workflow.entry!r}, "
          f"{len(workflow.functions)} functions")
    print(render_workflow(workflow))
    return 0


# -- parser -------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DataFlower reproduction: run workloads, experiments, "
        "and workflow validation from one entry point.",
    )
    sub = parser.add_subparsers(dest="command")

    run = sub.add_parser("run", help="run one app x system x arrival pattern")
    run.add_argument("--app", required=True,
                     help="registered app short name (see 'repro apps')")
    run.add_argument("--system", default="dataflower", choices=system_names(),
                     help="execution system (default: dataflower)")
    run.add_argument("--arrivals", default="constant:60:20",
                     help="constant:<rpm>:<s> | burst:<rpm>:<rpm>:<s>:<s> | "
                     "closed:<clients>:<s> | trace:<file> "
                     "(default: constant:60:20)")
    run.add_argument("--placement", default="round_robin",
                     help="placement policy (round_robin, single_node, hashed)")
    run.add_argument("--input-bytes", default=None,
                     help="request input size, e.g. 4MB (default: app default)")
    run.add_argument("--fanout", type=int, default=None,
                     help="FOREACH width (default: app default)")
    run.add_argument("--timeout-s", type=float, default=60.0,
                     help="per-request timeout (default: 60)")
    run.add_argument("--poisson", action="store_true",
                     help="Poisson (instead of paced) open-loop arrivals")
    run.add_argument("--seed", type=int, default=0,
                     help="system + arrival RNG seed")
    run.add_argument("--format", choices=["table", "json"], default="table",
                     help="report format (default: table)")
    run.add_argument("--output", default=None,
                     help="write the report to a file instead of stdout")
    run.set_defaults(func=cmd_run)

    experiments = sub.add_parser(
        "experiments", help="list or re-run the paper-figure registry"
    )
    experiments.add_argument(
        "experiment", nargs="?",
        help=f"experiment id ({', '.join(experiment_ids())}) or 'all'"
    )
    experiments.add_argument("--scale", type=float, default=1.0,
                             help="shrink sweeps/durations (0 < scale <= 1)")
    experiments.add_argument("--csv-dir", default=None,
                             help="also write each table as <dir>/<id>.csv")
    experiments.set_defaults(func=cmd_experiments)

    apps = sub.add_parser("apps", help="list registered applications")
    apps.set_defaults(func=cmd_apps)

    systems = sub.add_parser("systems", help="list execution systems")
    systems.set_defaults(func=cmd_systems)

    validate = sub.add_parser(
        "validate", help="lint a Figure-7 DSL workflow file"
    )
    validate.add_argument("file", help="path to a workflow definition")
    validate.set_defaults(func=cmd_validate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "func", None):
        parser.print_help()
        return 0
    try:
        return args.func(args)
    except CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
