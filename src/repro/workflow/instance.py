"""Per-request task-graph instantiation.

A workflow invocation expands the static DAG into a concrete *task graph*:
FOREACH edges fan out into ``fanout`` destination tasks, MERGE edges fan
back into one, SWITCH edges pick one destination per source task.  Data
sizes are propagated topologically from the request's input size through
each function's output model, so every execution system sees exactly the
same bytes on exactly the same edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .model import EdgeKind, USER, Workflow


@dataclass(frozen=True)
class RequestSpec:
    """One workflow invocation."""

    request_id: str
    input_bytes: float
    #: Width used by FOREACH edges in this invocation.
    fanout: int = 4
    #: Seed for SWITCH selectors (dynamic DAG decisions).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.input_bytes < 0:
            raise ValueError("input_bytes must be non-negative")
        if self.fanout < 1:
            raise ValueError("fanout must be >= 1")


@dataclass
class TaskEdge:
    """A concrete datum flowing between two task instances."""

    src: "Task"
    dst: Optional["Task"]  # None means $USER
    nbytes: float
    dataname: str

    @property
    def key(self) -> Tuple[str, str, str]:
        """(request-scoped) identity used by sinks and checkpoint tables."""
        dst_id = self.dst.task_id if self.dst is not None else USER
        return (self.src.task_id, dst_id, self.dataname)


@dataclass
class Task:
    """One function invocation inside one workflow request."""

    task_id: str
    function: str
    branch: int
    input_bytes: float = 0.0
    output_bytes: float = 0.0
    inputs: List[TaskEdge] = field(default_factory=list)
    outputs: List[TaskEdge] = field(default_factory=list)

    @property
    def is_entry(self) -> bool:
        return not self.inputs

    @property
    def is_terminal(self) -> bool:
        return all(edge.dst is None for edge in self.outputs) or not self.outputs

    def __repr__(self) -> str:
        return f"<Task {self.task_id} in={self.input_bytes:.0f}B>"


class TaskGraph:
    """The expanded, sized task graph of one request."""

    def __init__(self, workflow: Workflow, request: RequestSpec) -> None:
        self.workflow = workflow
        self.request = request
        self.tasks: List[Task] = []
        self.edges: List[TaskEdge] = []
        self._by_function: Dict[str, List[Task]] = {}
        self._expand()

    # -- public queries ---------------------------------------------------------

    def tasks_of(self, function: str) -> List[Task]:
        return list(self._by_function.get(function, []))

    @property
    def terminal_tasks(self) -> List[Task]:
        return [task for task in self.tasks if task.is_terminal]

    def task(self, task_id: str) -> Task:
        for task in self.tasks:
            if task.task_id == task_id:
                return task
        raise KeyError(task_id)

    def total_transfer_bytes(self) -> float:
        """Bytes crossing inter-function edges (excluding returns to $USER)."""
        return sum(edge.nbytes for edge in self.edges if edge.dst is not None)

    # -- expansion ---------------------------------------------------------------

    def _expand(self) -> None:
        workflow = self.workflow
        request = self.request
        order = workflow.topological_order()
        if workflow.entry is None:
            raise ValueError("workflow has no entry function")

        self._ensure_instances(workflow.entry, 1)

        for name in order:
            instances = self._by_function.get(name)
            if not instances:
                continue  # unreached (e.g. non-selected SWITCH candidate)
            function = workflow.functions[name]
            for task in instances:
                if task.is_entry and name == workflow.entry:
                    task.input_bytes += request.input_bytes
                task.output_bytes = function.output.output_bytes(task.input_bytes)
            for edge in function.edges:
                self._expand_edge(name, edge, instances)

        # Keep deterministic topological task order for the engines.
        self.tasks = [
            task for name in order for task in self._by_function.get(name, [])
        ]

    def _expand_edge(self, source: str, edge, instances: List[Task]) -> None:
        request = self.request
        if edge.kind is EdgeKind.NORMAL:
            dest = edge.destination
            if dest == USER:
                for task in instances:
                    self._add_edge(task, None, task.output_bytes, edge.dataname)
                return
            targets = self._ensure_instances(dest, len(instances))
            if len(targets) == len(instances):
                pairs = zip(instances, targets)
            elif len(targets) == 1:
                pairs = ((task, targets[0]) for task in instances)
            else:
                raise ValueError(
                    f"NORMAL edge {source}->{dest}: incompatible instance "
                    f"counts {len(instances)} vs {len(targets)}"
                )
            for task, target in pairs:
                self._add_edge(task, target, task.output_bytes, edge.dataname)
        elif edge.kind is EdgeKind.FOREACH:
            dest = edge.destination
            if dest == USER:
                raise ValueError("FOREACH edges cannot target $USER")
            width = request.fanout
            targets = self._ensure_instances(dest, len(instances) * width)
            for i, task in enumerate(instances):
                share = task.output_bytes / width
                for j in range(width):
                    target = targets[i * width + j]
                    self._add_edge(task, target, share, f"{edge.dataname}[{j}]")
        elif edge.kind is EdgeKind.MERGE:
            dest = edge.destination
            if dest == USER:
                raise ValueError("MERGE edges cannot target $USER")
            targets = self._ensure_instances(dest, 1)
            for task in instances:
                self._add_edge(
                    task, targets[0], task.output_bytes,
                    f"{edge.dataname}[{task.branch}]",
                )
        elif edge.kind is EdgeKind.SWITCH:
            selector = edge.selector
            if selector is None:
                raise ValueError(f"SWITCH edge {source}.{edge.dataname} lacks selector")
            for task in instances:
                index = selector(request.seed, task.branch)
                if not 0 <= index < len(edge.destinations):
                    raise ValueError(
                        f"selector for {source}.{edge.dataname} returned "
                        f"out-of-range index {index}"
                    )
                dest = edge.destinations[index]
                if dest == USER:
                    self._add_edge(task, None, task.output_bytes, edge.dataname)
                    continue
                targets = self._ensure_instances(dest, 1, grow=True)
                target = targets[-1] if len(targets) > 1 else targets[0]
                self._add_edge(task, target, task.output_bytes, edge.dataname)
        else:  # pragma: no cover - exhaustive over EdgeKind
            raise AssertionError(f"unhandled edge kind {edge.kind}")

    def _ensure_instances(self, name: str, count: int, grow: bool = False) -> List[Task]:
        existing = self._by_function.get(name)
        if existing is None:
            created = [
                Task(
                    task_id=f"{name}#{i}" if count > 1 else name,
                    function=name,
                    branch=i,
                )
                for i in range(count)
            ]
            self._by_function[name] = created
            return created
        if len(existing) == count or len(existing) == 1 or count == 1:
            return existing
        raise ValueError(
            f"function {name!r} already instantiated with {len(existing)} "
            f"instances; cannot reconcile with {count}"
        )

    def _add_edge(
        self, src: Task, dst: Optional[Task], nbytes: float, dataname: str
    ) -> TaskEdge:
        edge = TaskEdge(src=src, dst=dst, nbytes=nbytes, dataname=dataname)
        src.outputs.append(edge)
        if dst is not None:
            dst.inputs.append(edge)
            dst.input_bytes += nbytes
        self.edges.append(edge)
        return edge

    def __repr__(self) -> str:
        return (
            f"<TaskGraph {self.workflow.name}/{self.request.request_id} "
            f"tasks={len(self.tasks)}>"
        )
