"""The declarative data-flow definition language (paper Figure 7).

The paper expresses a workflow by declaring, per FLU, the source of its
inputs and the destination of its outputs.  This module parses a plain-text
indentation-based rendition of that pseudocode into a
:class:`~repro.workflow.model.Workflow`::

    workflow_name: wordcount
    dataflows:
      wordcount_start:
        memory_mb: 256
        compute: base=0.012 per_mb=0.004
        output: ratio=1.02
        input_datas:
          source: $USER.input
        output_datas:
          filelist:
            type: FOREACH
            destination: wordcount_count
      wordcount_count:
        compute: base=0.004 per_mb=0.030
        output: fixed=64KB
        output_datas:
          count_result:
            type: MERGE
            destination: wordcount_merge
      wordcount_merge:
        compute: base=0.006 per_mb=0.002
        output: fixed=96KB
        output_datas:
          output:
            type: NORMAL
            destination: $USER

SWITCH edges list candidates separated by ``|`` and name a built-in
``selector`` (``round_robin``, ``hash``, ``first``); custom selectors can
be attached programmatically after parsing.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from ..cluster.telemetry import GB, KB, MB
from .model import EdgeKind, USER, Workflow
from .profiles import ComputeModel, OutputModel
from .validation import validate

Tree = Dict[str, Union[str, "Tree"]]


class DslError(ValueError):
    """A syntax or semantic problem in a workflow definition text."""

    def __init__(self, message: str, line_no: Optional[int] = None) -> None:
        location = f" (line {line_no})" if line_no is not None else ""
        super().__init__(f"{message}{location}")
        self.line_no = line_no


BUILTIN_SELECTORS: Dict[str, Callable[[int, int], int]] = {
    # Deterministic in (request seed, branch index); count is bound later.
}


def _make_selector(name: str, candidate_count: int) -> Callable[[int, int], int]:
    if name == "round_robin":
        return lambda seed, branch: (seed + branch) % candidate_count
    if name == "hash":
        return lambda seed, branch: hash((seed, branch)) % candidate_count
    if name == "first":
        return lambda _seed, _branch: 0
    raise DslError(
        f"unknown selector {name!r}; expected round_robin, hash, or first"
    )


# -- low-level indentation parser -------------------------------------------------


def _parse_tree(text: str) -> Tree:
    """Parse indentation-nested ``key: value`` lines into dicts."""
    root: Tree = {}
    # Stack of (indent, dict) frames.
    stack: List[Tuple[int, Tree]] = [(-1, root)]
    last_key_at: Dict[int, str] = {}

    for line_no, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.split("#", 1)[0].split("//", 1)[0].rstrip()
        if not stripped.strip():
            continue
        indent = len(stripped) - len(stripped.lstrip())
        content = stripped.strip()
        if ":" not in content:
            raise DslError(f"expected 'key: value' or 'key:', got {content!r}", line_no)
        key, _, value = content.partition(":")
        key = key.strip()
        value = value.strip()

        while stack and indent <= stack[-1][0]:
            stack.pop()
        if not stack:
            raise DslError(f"bad indentation for {key!r}", line_no)
        parent = stack[-1][1]

        if key in parent:
            raise DslError(f"duplicate key {key!r}", line_no)
        if value:
            parent[key] = value
        else:
            child: Tree = {}
            parent[key] = child
            stack.append((indent, child))
    return root


# -- value parsing -----------------------------------------------------------------


_SIZE_SUFFIXES = {"KB": KB, "MB": MB, "GB": GB, "B": 1.0}


def parse_size(token: str) -> float:
    """Parse ``4MB`` / ``64KB`` / ``123`` into bytes."""
    token = token.strip()
    for suffix in ("GB", "MB", "KB", "B"):
        if token.upper().endswith(suffix):
            number = token[: -len(suffix)]
            try:
                return float(number) * _SIZE_SUFFIXES[suffix]
            except ValueError:
                raise DslError(f"bad size literal {token!r}") from None
    try:
        return float(token)
    except ValueError:
        raise DslError(f"bad size literal {token!r}") from None


def _parse_kv_spec(spec: str, field_name: str) -> Dict[str, str]:
    """Parse ``a=1 b=2`` attribute strings."""
    out: Dict[str, str] = {}
    for chunk in spec.split():
        if "=" not in chunk:
            raise DslError(f"{field_name}: expected key=value, got {chunk!r}")
        key, _, value = chunk.partition("=")
        out[key.strip()] = value.strip()
    return out


def _parse_compute(spec: str) -> ComputeModel:
    fields = _parse_kv_spec(spec, "compute")
    known = {"base", "per_mb", "per_mb2", "jitter"}
    unknown = set(fields) - known
    if unknown:
        raise DslError(f"compute: unknown fields {sorted(unknown)}")
    return ComputeModel(
        base_core_s=float(fields.get("base", 0.0)),
        per_input_mb_core_s=float(fields.get("per_mb", 0.0)),
        per_input_mb2_core_s=float(fields.get("per_mb2", 0.0)),
        jitter=float(fields.get("jitter", 0.0)),
    )


def _parse_output(spec: str) -> OutputModel:
    fields = _parse_kv_spec(spec, "output")
    known = {"fixed", "ratio"}
    unknown = set(fields) - known
    if unknown:
        raise DslError(f"output: unknown fields {sorted(unknown)}")
    return OutputModel(
        fixed_bytes=parse_size(fields["fixed"]) if "fixed" in fields else 0.0,
        input_ratio=float(fields.get("ratio", 0.0)),
    )


# -- top-level interpretation --------------------------------------------------------


def parse_workflow(text: str) -> Workflow:
    """Parse a DSL document and return a validated :class:`Workflow`."""
    tree = _parse_tree(text)
    name = tree.get("workflow_name")
    if not isinstance(name, str):
        raise DslError("missing 'workflow_name: <name>' header")
    dataflows = tree.get("dataflows")
    if not isinstance(dataflows, dict) or not dataflows:
        raise DslError("missing or empty 'dataflows:' section")

    workflow = Workflow(name)
    if isinstance(tree.get("default_fanout"), str):
        workflow.default_fanout = int(tree["default_fanout"])  # type: ignore[arg-type]

    # First pass: declare functions so edges can reference forward targets.
    for function_name, body in dataflows.items():
        if not isinstance(body, dict):
            raise DslError(f"dataflow {function_name!r} must be a block")
        compute_spec = body.get("compute")
        if not isinstance(compute_spec, str):
            raise DslError(f"{function_name}: missing 'compute: ...' spec")
        output_spec = body.get("output", "ratio=0")
        if not isinstance(output_spec, str):
            raise DslError(f"{function_name}: 'output' must be inline key=value")
        workflow.add_function(
            function_name,
            compute=_parse_compute(compute_spec),
            output=_parse_output(output_spec),
            memory_mb=int(body.get("memory_mb", "256")),
            first_output_at=float(body.get("first_output_at", "0.25")),
            flu_stages=int(body.get("flu_stages", "1")),
        )

    # Second pass: wire edges.
    for function_name, body in dataflows.items():
        assert isinstance(body, dict)
        outputs = body.get("output_datas", {})
        if isinstance(outputs, str):
            raise DslError(f"{function_name}: 'output_datas' must be a block")
        for dataname, edge_body in outputs.items():
            if not isinstance(edge_body, dict):
                raise DslError(
                    f"{function_name}.{dataname}: edge must be a block with "
                    f"'type:' and 'destination:'"
                )
            kind = EdgeKind.parse(str(edge_body.get("type", "NORMAL")))
            destination_spec = edge_body.get("destination")
            if not isinstance(destination_spec, str):
                raise DslError(f"{function_name}.{dataname}: missing destination")
            destinations = [d.strip() for d in destination_spec.split("|")]
            function = workflow.functions[function_name]
            if kind is EdgeKind.SWITCH:
                selector_name = str(edge_body.get("selector", "round_robin"))
                selector = _make_selector(selector_name, len(destinations))
                function.add_edge(dataname, kind, destinations, selector)
            else:
                if len(destinations) != 1:
                    raise DslError(
                        f"{function_name}.{dataname}: {kind.name} takes exactly "
                        f"one destination"
                    )
                function.add_edge(dataname, kind, destinations)

    entry = tree.get("entry")
    if isinstance(entry, str):
        workflow.entry = entry
    else:
        workflow.entry = _infer_entry(workflow)

    validate(workflow)
    return workflow


def _infer_entry(workflow: Workflow) -> str:
    """The unique function nothing feeds, else the first declared."""
    fed = {
        dest
        for function in workflow.functions.values()
        for edge in function.edges
        for dest in edge.destinations
        if dest != USER
    }
    candidates = [name for name in workflow.functions if name not in fed]
    if len(candidates) == 1:
        return candidates[0]
    return next(iter(workflow.functions))
