"""Function cost models: compute time and output size as data functions.

A function's *work* is expressed in core-seconds as an affine function of
its total input bytes; its *output size* is either fixed, proportional to
the input, or an explicit split across fan-out branches.  These profiles
are what the benchmark definitions in :mod:`repro.apps` are calibrated
with, and they drive both the control-flow baselines and DataFlower, so
relative results are apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster.telemetry import MB


@dataclass(frozen=True)
class ComputeModel:
    """``core_seconds = base + per_mb * mb + per_mb2 * mb^2`` (+ jitter).

    The quadratic term models superlinear kernels (sorting, merging,
    factorization): with it, computation eventually outgrows the (linear)
    communication as inputs grow — the effect behind Figure 16(b), where
    the data-flow paradigm's advantage shrinks on large inputs.
    """

    base_core_s: float = 0.0
    per_input_mb_core_s: float = 0.0
    per_input_mb2_core_s: float = 0.0
    #: Relative stddev of multiplicative lognormal-ish jitter (0 = none).
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if (
            self.base_core_s < 0
            or self.per_input_mb_core_s < 0
            or self.per_input_mb2_core_s < 0
        ):
            raise ValueError("compute model coefficients must be non-negative")
        if not 0 <= self.jitter < 1:
            raise ValueError("jitter must lie in [0, 1)")

    def core_seconds(self, input_bytes: float, rng=None) -> float:
        input_mb = input_bytes / MB
        work = (
            self.base_core_s
            + self.per_input_mb_core_s * input_mb
            + self.per_input_mb2_core_s * input_mb * input_mb
        )
        if self.jitter and rng is not None:
            work *= max(0.05, rng.gauss(1.0, self.jitter))
        return work


@dataclass(frozen=True)
class OutputModel:
    """``output_bytes = fixed + ratio * input_bytes``."""

    fixed_bytes: float = 0.0
    input_ratio: float = 0.0

    def __post_init__(self) -> None:
        if self.fixed_bytes < 0 or self.input_ratio < 0:
            raise ValueError("output model coefficients must be non-negative")

    def output_bytes(self, input_bytes: float) -> float:
        return self.fixed_bytes + self.input_ratio * input_bytes


@dataclass(frozen=True)
class FunctionProfile:
    """Everything the simulator needs to run one function."""

    compute: ComputeModel
    memory_mb: int = 256
    #: Fraction of FLU compute after which the first output chunk exists;
    #: DataFlower's DLU starts streaming then (§3.3.3 early data transfer).
    first_output_at: float = 0.25
    #: Number of pipelined sub-FLUs the computation can split into (§5.1).
    flu_stages: int = 1

    def __post_init__(self) -> None:
        if self.memory_mb <= 0:
            raise ValueError("memory_mb must be positive")
        if not 0 <= self.first_output_at <= 1:
            raise ValueError("first_output_at must lie in [0, 1]")
        if self.flu_stages < 1:
            raise ValueError("flu_stages must be >= 1")
