"""ASCII rendering of workflow DAGs and task graphs.

Handy for examples, docs, and debugging placements::

    >>> print(render_workflow(get_app("wc").build()))
    wordcount_start
      --FOREACH[filelist]--> wordcount_count
    wordcount_count
      --MERGE[count_result]--> wordcount_merge
    wordcount_merge
      --NORMAL[output]--> $USER
"""

from __future__ import annotations

from typing import Dict, Optional

from ..cluster.node import Node
from .instance import TaskGraph
from .model import Workflow


def render_workflow(
    workflow: Workflow, placement: Optional[Dict[str, Node]] = None
) -> str:
    """One line per function, one indented line per outgoing edge."""
    lines = []
    for name in workflow.topological_order():
        function = workflow.functions[name]
        suffix = ""
        if placement is not None and name in placement:
            suffix = f"  @{placement[name].name}"
        memory = function.profile.memory_mb
        lines.append(f"{name} ({memory}MB){suffix}")
        for edge in function.edges:
            targets = " | ".join(edge.destinations)
            lines.append(f"  --{edge.kind.name}[{edge.dataname}]--> {targets}")
    return "\n".join(lines)


def render_task_graph(graph: TaskGraph) -> str:
    """The expanded per-request view with concrete byte counts."""
    lines = [
        f"request {graph.request.request_id}: "
        f"{len(graph.tasks)} tasks, "
        f"{graph.total_transfer_bytes() / 1024:.0f} KB inter-function data"
    ]
    for task in graph.tasks:
        lines.append(
            f"{task.task_id}  in={task.input_bytes / 1024:.0f}KB "
            f"out={task.output_bytes / 1024:.0f}KB"
        )
        for edge in task.outputs:
            target = edge.dst.task_id if edge.dst is not None else "$USER"
            lines.append(
                f"  ==[{edge.dataname} {edge.nbytes / 1024:.0f}KB]==> {target}"
            )
    return "\n".join(lines)
