"""Static validation of workflow definitions.

Run before deployment: a workflow that passes :func:`validate` is
guaranteed to instantiate into a finite, connected, acyclic task graph for
any request, which the engines rely on (no liveness checks at run time).
"""

from __future__ import annotations

from typing import List

from .model import EdgeKind, USER, Workflow


class WorkflowValidationError(ValueError):
    """A workflow definition is structurally unusable."""

    def __init__(self, workflow_name: str, problems: List[str]) -> None:
        self.problems = problems
        joined = "; ".join(problems)
        super().__init__(f"workflow {workflow_name!r} invalid: {joined}")


def validate(workflow: Workflow) -> None:
    """Raise :class:`WorkflowValidationError` listing every problem found."""
    problems: List[str] = []

    if not workflow.functions:
        problems.append("no functions defined")
    if workflow.entry is not None and workflow.entry not in workflow.functions:
        problems.append(f"entry {workflow.entry!r} is not a defined function")

    for function in workflow.functions.values():
        for edge in function.edges:
            for dest in edge.destinations:
                if dest != USER and dest not in workflow.functions:
                    problems.append(
                        f"{function.name}.{edge.dataname} targets undefined "
                        f"function {dest!r}"
                    )
            if edge.kind is EdgeKind.SWITCH and edge.selector is None:
                problems.append(
                    f"{function.name}.{edge.dataname} is SWITCH without a selector"
                )

    if not problems:
        try:
            order = workflow.topological_order()
        except ValueError as exc:
            problems.append(str(exc))
        else:
            reachable = _reachable_from_entry(workflow)
            unreachable = [name for name in order if name not in reachable]
            if unreachable:
                problems.append(
                    f"functions unreachable from entry: {sorted(unreachable)}"
                )
            has_user_edge = any(
                dest == USER
                for function in workflow.functions.values()
                for edge in function.edges
                for dest in edge.destinations
            )
            terminal = [
                name for name in order if not workflow.functions[name].edges
            ]
            if not has_user_edge and not terminal:
                problems.append("no terminal function returns to $USER")

    if problems:
        raise WorkflowValidationError(workflow.name, problems)


def _reachable_from_entry(workflow: Workflow) -> set:
    if workflow.entry is None:
        return set()
    seen = set()
    frontier = [workflow.entry]
    while frontier:
        current = frontier.pop()
        if current in seen or current == USER:
            continue
        seen.add(current)
        for edge in workflow.functions[current].edges:
            frontier.extend(edge.destinations)
    return seen
