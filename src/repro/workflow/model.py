"""Workflow model: functions, data edges, and the workflow DAG.

With the data-flow paradigm the graph's edges carry *data transfer
relationships* (Figure 7): for each function we declare where each named
output flows.  Edge kinds mirror the paper's DSL:

``NORMAL``
    One datum to one destination invocation (branch-preserving inside a
    fan-out scope).
``FOREACH``
    The output is a list split across N destination invocations (fan-out).
``MERGE``
    All branch invocations of the source feed a single destination
    invocation (fan-in); the destination sees a LIST input.
``SWITCH``
    Exactly one of several candidate destinations receives the datum,
    chosen at run time (dynamic DAG support, §5.1).

The same :class:`Workflow` object drives the control-flow baselines (which
interpret edges as control dependencies) and DataFlower (which interprets
them as the data-flow graph), so every system executes identical work.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .profiles import ComputeModel, FunctionProfile, OutputModel

#: Destination token meaning "return to the invoking user".
USER = "$USER"


class EdgeKind(enum.Enum):
    NORMAL = "NORMAL"
    FOREACH = "FOREACH"
    MERGE = "MERGE"
    SWITCH = "SWITCH"

    @classmethod
    def parse(cls, token: str) -> "EdgeKind":
        try:
            return cls[token.strip().upper()]
        except KeyError:
            valid = ", ".join(kind.name for kind in cls)
            raise ValueError(f"unknown edge kind {token!r}; expected one of {valid}")


@dataclass(frozen=True)
class DataEdge:
    """One declared data transfer relationship."""

    source: str
    dataname: str
    kind: EdgeKind
    #: Destination function names.  NORMAL/FOREACH/MERGE use exactly one;
    #: SWITCH lists every candidate.
    destinations: Tuple[str, ...]
    #: For SWITCH: picks the destination index given (request_seed, branch).
    selector: Optional[Callable[[int, int], int]] = None

    def __post_init__(self) -> None:
        if not self.destinations:
            raise ValueError(f"edge {self.source}.{self.dataname} has no destination")
        if self.kind is EdgeKind.SWITCH:
            if len(self.destinations) < 2:
                raise ValueError("SWITCH edges need at least two candidates")
        elif len(self.destinations) != 1:
            raise ValueError(f"{self.kind.name} edges take exactly one destination")

    @property
    def destination(self) -> str:
        return self.destinations[0]


@dataclass
class FunctionDef:
    """A serverless function inside a workflow."""

    name: str
    profile: FunctionProfile
    output: OutputModel
    edges: List[DataEdge] = field(default_factory=list)

    def add_edge(
        self,
        dataname: str,
        kind: EdgeKind,
        destinations: Sequence[str],
        selector: Optional[Callable[[int, int], int]] = None,
    ) -> DataEdge:
        edge = DataEdge(self.name, dataname, kind, tuple(destinations), selector)
        self.edges.append(edge)
        return edge

    @property
    def is_sink(self) -> bool:
        """True when every edge targets the user (terminal function)."""
        return all(
            dest == USER for edge in self.edges for dest in edge.destinations
        ) or not self.edges


class Workflow:
    """A named DAG of functions connected by data edges."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.functions: Dict[str, FunctionDef] = {}
        self.entry: Optional[str] = None
        #: Default fan-out width for FOREACH edges (overridable per request).
        self.default_fanout: int = 1

    # -- construction ----------------------------------------------------------

    def add_function(
        self,
        name: str,
        compute: ComputeModel,
        output: OutputModel,
        memory_mb: int = 256,
        first_output_at: float = 0.25,
        flu_stages: int = 1,
    ) -> FunctionDef:
        if name in self.functions:
            raise ValueError(f"duplicate function {name!r} in workflow {self.name!r}")
        if name == USER:
            raise ValueError(f"{USER} is a reserved destination token")
        profile = FunctionProfile(
            compute=compute,
            memory_mb=memory_mb,
            first_output_at=first_output_at,
            flu_stages=flu_stages,
        )
        function = FunctionDef(name=name, profile=profile, output=output)
        self.functions[name] = function
        if self.entry is None:
            self.entry = name
        return function

    def connect(
        self,
        source: str,
        destination: str,
        kind: EdgeKind = EdgeKind.NORMAL,
        dataname: Optional[str] = None,
    ) -> DataEdge:
        """Convenience for single-destination edges."""
        function = self._require(source)
        name = dataname or f"{source}.out{len(function.edges)}"
        return function.add_edge(name, kind, [destination])

    def connect_switch(
        self,
        source: str,
        destinations: Sequence[str],
        selector: Callable[[int, int], int],
        dataname: Optional[str] = None,
    ) -> DataEdge:
        function = self._require(source)
        name = dataname or f"{source}.switch{len(function.edges)}"
        return function.add_edge(name, EdgeKind.SWITCH, destinations, selector)

    def _require(self, name: str) -> FunctionDef:
        if name not in self.functions:
            raise KeyError(f"workflow {self.name!r} has no function {name!r}")
        return self.functions[name]

    # -- queries -----------------------------------------------------------------

    def predecessors(self, name: str) -> List[Tuple[FunctionDef, DataEdge]]:
        """(source function, edge) pairs that may feed ``name``."""
        found = []
        for function in self.functions.values():
            for edge in function.edges:
                if name in edge.destinations:
                    found.append((function, edge))
        return found

    def successors(self, name: str) -> List[DataEdge]:
        return list(self._require(name).edges)

    def function_names(self) -> List[str]:
        return list(self.functions)

    def topological_order(self) -> List[str]:
        """Function names in a control-flow trigger order; raises on cycles."""
        indegree = {name: 0 for name in self.functions}
        for function in self.functions.values():
            for edge in function.edges:
                for dest in edge.destinations:
                    if dest != USER:
                        if dest not in indegree:
                            raise ValueError(
                                f"edge {function.name} -> {dest} targets an "
                                f"undefined function"
                            )
                        indegree[dest] += 1
        frontier = sorted(name for name, deg in indegree.items() if deg == 0)
        order: List[str] = []
        while frontier:
            current = frontier.pop(0)
            order.append(current)
            for edge in self.functions[current].edges:
                for dest in edge.destinations:
                    if dest == USER:
                        continue
                    indegree[dest] -= 1
                    if indegree[dest] == 0:
                        frontier.append(dest)
            frontier.sort()
        if len(order) != len(self.functions):
            missing = set(self.functions) - set(order)
            raise ValueError(f"workflow {self.name!r} has a cycle involving {missing}")
        return order

    def __repr__(self) -> str:
        return f"<Workflow {self.name} functions={len(self.functions)}>"
