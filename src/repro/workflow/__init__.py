"""Workflow model: DAG definition, cost profiles, DSL, and instantiation."""

from .dsl import DslError, parse_size, parse_workflow
from .instance import RequestSpec, Task, TaskEdge, TaskGraph
from .model import DataEdge, EdgeKind, FunctionDef, USER, Workflow
from .profiles import ComputeModel, FunctionProfile, OutputModel
from .validation import WorkflowValidationError, validate
from .visualize import render_task_graph, render_workflow

__all__ = [
    "ComputeModel",
    "DataEdge",
    "DslError",
    "EdgeKind",
    "FunctionDef",
    "FunctionProfile",
    "OutputModel",
    "RequestSpec",
    "Task",
    "TaskEdge",
    "TaskGraph",
    "USER",
    "Workflow",
    "WorkflowValidationError",
    "parse_size",
    "parse_workflow",
    "render_task_graph",
    "render_workflow",
    "validate",
]
