"""DataFlower reproduction: data-flow serverless workflow orchestration.

Quickstart::

    from repro import (
        Cluster, ClusterConfig, DataFlowerConfig, DataFlowerSystem,
        Environment, RequestSpec, round_robin,
    )
    from repro.apps import get_app

    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    system = DataFlowerSystem(env, cluster, DataFlowerConfig())
    workflow = get_app("wc").build()
    system.deploy(workflow, round_robin(workflow, cluster.workers))
    done = system.submit(
        workflow.name,
        RequestSpec("r1", input_bytes=4 * 1024 * 1024, fanout=4),
    )
    record = env.run(until=done)
    print(f"latency = {record.latency:.3f}s")
"""

from .cluster import Cluster, ClusterConfig, ContainerSpec, GB, KB, MB
from .core import DataFlowerConfig, DataFlowerSystem, FailureInjector
from .loadgen import (
    InvocationTrace,
    RunResult,
    TraceEvent,
    TraceRunResult,
    burst,
    constant,
    default_request_factory,
    run_closed_loop,
    run_open_loop,
    run_trace,
    synthesize_trace,
)
from .metrics import LatencySummary, RequestRecord, TaskRecord, render_table
from .parallel import ParallelReplayResult, ReplaySpec, run_parallel_replay
from .sim import Environment
from .systems import (
    FaasFlowConfig,
    FaasFlowSystem,
    ProductionConfig,
    ProductionSystem,
    SonicConfig,
    SonicSystem,
    SystemConfig,
    round_robin,
    single_node,
)
from .workflow import (
    ComputeModel,
    EdgeKind,
    OutputModel,
    RequestSpec,
    TaskGraph,
    Workflow,
    parse_workflow,
)

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ClusterConfig",
    "ComputeModel",
    "ContainerSpec",
    "DataFlowerConfig",
    "DataFlowerSystem",
    "EdgeKind",
    "Environment",
    "FaasFlowConfig",
    "FaasFlowSystem",
    "FailureInjector",
    "GB",
    "InvocationTrace",
    "KB",
    "LatencySummary",
    "MB",
    "OutputModel",
    "ParallelReplayResult",
    "ProductionConfig",
    "ProductionSystem",
    "RequestRecord",
    "RequestSpec",
    "ReplaySpec",
    "RunResult",
    "SonicConfig",
    "SonicSystem",
    "SystemConfig",
    "TaskGraph",
    "TaskRecord",
    "TraceEvent",
    "TraceRunResult",
    "Workflow",
    "burst",
    "constant",
    "default_request_factory",
    "parse_workflow",
    "render_table",
    "round_robin",
    "run_closed_loop",
    "run_open_loop",
    "run_parallel_replay",
    "run_trace",
    "single_node",
    "synthesize_trace",
    "__version__",
]
