"""The live telemetry layer: versioned event schema + metrics registry.

Two halves, one module, because they share a vocabulary:

**Events.**  Every line the service streams over ``GET
/v1/runs/<id>/events`` is one :func:`event_envelope` — ``event`` (the
kind), ``v`` (:data:`SCHEMA_VERSION`), ``seq`` (monotonic per run,
*including across journal resume*), then the kind's body fields in
sorted order.  :data:`EVENT_SCHEMAS` is the authoritative field-level
schema for every kind the engine and :class:`~repro.serve.jobs.JobStore`
can emit; :func:`validate_event` rejects anything that drifts — unknown
kinds, wrong schema version, missing or mistyped fields, undeclared
extras.  The streaming client (:mod:`repro.serve.client`) validates by
default, and ``tools/check_docs.py`` fails CI unless every kind is
documented in ``docs/observability.md``.

**Metrics.**  :class:`MetricsRegistry` is a lightweight in-process
registry — :class:`Counter`, :class:`Gauge`, :class:`Histogram` — that
the replay engine, job store, and run journal populate and ``GET
/metrics`` exposes in Prometheus text format.  Histograms retain exact
samples and report interpolated quantiles through the single
:func:`~repro.metrics.stats.percentile_sorted` implementation (exposed
as a Prometheus ``summary``: exact quantiles, not bucketed
approximations).  :data:`METRICS` names every metric the reproduction
exports, with type and help text; undeclared names are rejected so the
``/metrics`` surface cannot grow undocumented.

Stdlib only, deliberately: the registry is a dict and a lock, not a
client-library dependency.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from .stats import percentile_sorted

__all__ = [
    "Counter",
    "EVENT_SCHEMAS",
    "Gauge",
    "Histogram",
    "METRICS",
    "MetricsRegistry",
    "SCHEMA_VERSION",
    "SchemaError",
    "event_envelope",
    "event_kinds",
    "metric_names",
    "validate_event",
]

#: Version stamp every event envelope carries (the ``v`` field).  Bumped
#: whenever a kind is added/removed or a field changes shape, so NDJSON
#: consumers detect schema changes without sniffing field sets.
#: History: 1 = the ad-hoc PR-5 envelope (cell/report/error only);
#: 2 = this module: typed progress/counter/gauge events, per-cell
#: latency stats, seq monotonic across journal resume;
#: 3 = the ``degraded`` terminal kind (a run that finished with a
#: non-empty ``failed_cells`` section under ``on_cell_failure=skip``);
#: 4 = the remote worker fleet: ``lease`` and ``lease_expired`` kinds
#: (cell leases granted to / reclaimed from ``repro worker`` processes
#: under ``workers="remote"``).
SCHEMA_VERSION = 4


class SchemaError(ValueError):
    """An event envelope that does not conform to the telemetry schema."""


# -- the event envelope -------------------------------------------------------


def event_envelope(kind: str, body: dict, seq: Optional[int] = None) -> dict:
    """A stable JSON event envelope for streamed progress records.

    The envelope fixes the leading keys — ``event`` (the kind), ``v``
    (:data:`SCHEMA_VERSION`), and ``seq`` when given — and sorts the
    body's keys, so the serialized line for a given event is byte-stable
    across producers and Python versions.
    """
    envelope: dict = {"event": kind, "v": SCHEMA_VERSION}
    if seq is not None:
        envelope["seq"] = seq
    for key in sorted(body):
        if key in envelope:
            raise ValueError(f"event body may not override envelope key {key!r}")
        envelope[key] = body[key]
    return envelope


#: Sentinel types for field specs (JSON-level types, bool excluded from
#: the numeric kinds because ``isinstance(True, int)`` holds in Python).
_STR = ("str",)
_INT = ("int",)
_NUM = ("int", "float")
_DICT = ("dict",)

_TYPE_OF = {"str": str, "int": int, "float": float, "dict": dict}


def _check_type(value: object, spec: Tuple[str, ...]) -> bool:
    if isinstance(value, bool):  # bool is not an accepted JSON number here
        return False
    return isinstance(value, tuple(_TYPE_OF[name] for name in spec))


#: kind -> {field: (accepted types, required)}.  The authoritative
#: schema for every event the engine and job store can emit; every body
#: field must be declared here (undeclared extras fail validation).
EVENT_SCHEMAS: Dict[str, Dict[str, Tuple[Tuple[str, ...], bool]]] = {
    # lifecycle
    "queued": {"run_id": (_STR, True), "request": (_DICT, True)},
    "running": {"run_id": (_STR, True)},
    "recovered": {"run_id": (_STR, True), "cells_journaled": (_INT, True)},
    "interrupted": {"run_id": (_STR, True)},
    # per-cell progress (one per folded cell, scheduling-ordered)
    "cell": {
        "run_id": (_STR, True),
        "cell": (_STR, True),
        "offered": (_INT, True),
        "completed": (_INT, True),
        "failed": (_INT, True),
        "wall_s": (_NUM, True),
        "resumed": (("bool",), False),
        "latency": (_DICT, False),
    },
    # run-level progress after every cell event
    "progress": {
        "run_id": (_STR, True),
        "cells_done": (_INT, True),
        "cells_total": (_INT, True),
        "offered": (_INT, True),
        "completed": (_INT, True),
        "failed": (_INT, True),
    },
    # typed instruments mirrored onto the stream
    "counter": {
        "run_id": (_STR, True),
        "name": (_STR, True),
        "value": (_INT, True),
        "labels": (_DICT, False),
    },
    "gauge": {
        "run_id": (_STR, True),
        "name": (_STR, True),
        "value": (_NUM, True),
        "labels": (_DICT, False),
    },
    # remote worker fleet (workers="remote"): a cell lease granted to a
    # worker, and a lease reclaimed after its deadline passed
    "lease": {
        "run_id": (_STR, True),
        "cell": (_STR, True),
        "worker": (_STR, True),
        "attempt": (_INT, True),
    },
    "lease_expired": {
        "run_id": (_STR, True),
        "cell": (_STR, True),
        "worker": (_STR, True),
        "attempt": (_INT, True),
        "requeued": (("bool",), True),
    },
    # terminal payloads
    "report": {"run_id": (_STR, True), "report": (_DICT, True)},
    # terminal for a run that completed but skipped failed cells: the
    # report's replay.failed_cells is non-empty (docs/robustness.md)
    "degraded": {
        "run_id": (_STR, True),
        "report": (_DICT, True),
        "failed_cells": (_INT, True),
    },
    "error": {"run_id": (_STR, True), "message": (_STR, True)},
}

_ENVELOPE_KEYS = ("event", "v", "seq")


def event_kinds() -> List[str]:
    """Every event kind the schema declares, sorted."""
    return sorted(EVENT_SCHEMAS)


def validate_event(envelope: object) -> dict:
    """Check one envelope against the versioned schema.

    Returns the envelope (for chaining) or raises :class:`SchemaError`
    naming exactly what is wrong: not a dict, unknown kind, wrong
    ``v``, missing/mistyped ``seq``, a missing required field, a
    mistyped field, or an undeclared body field.
    """
    if not isinstance(envelope, dict):
        raise SchemaError(
            f"event must be a JSON object, got {type(envelope).__name__}"
        )
    kind = envelope.get("event")
    if kind not in EVENT_SCHEMAS:
        raise SchemaError(
            f"unknown event kind {kind!r}; expected one of {event_kinds()}"
        )
    if envelope.get("v") != SCHEMA_VERSION:
        raise SchemaError(
            f"{kind!r} event carries schema version {envelope.get('v')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    seq = envelope.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        raise SchemaError(f"{kind!r} event needs an integer seq >= 0, got {seq!r}")
    fields = EVENT_SCHEMAS[kind]
    for name, (types, required) in fields.items():
        if name not in envelope:
            if required:
                raise SchemaError(f"{kind!r} event is missing field {name!r}")
            continue
        value = envelope[name]
        if "bool" in types:
            if not isinstance(value, bool):
                raise SchemaError(
                    f"{kind!r} event field {name!r} must be a bool, "
                    f"got {type(value).__name__}"
                )
        elif not _check_type(value, types):
            raise SchemaError(
                f"{kind!r} event field {name!r} must be {' or '.join(types)}, "
                f"got {type(value).__name__} ({value!r})"
            )
    extras = sorted(set(envelope) - set(fields) - set(_ENVELOPE_KEYS))
    if extras:
        raise SchemaError(
            f"{kind!r} event carries undeclared fields {extras}"
        )
    return envelope


# -- metrics instruments ------------------------------------------------------


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        self.value += amount


class Gauge:
    """A value that can go up and down (occupancy, queue depth)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Exact sample-retaining distribution with interpolated quantiles.

    Samples accumulate unsorted; quantiles sort lazily on read through
    the one :func:`~repro.metrics.stats.percentile_sorted`
    implementation — the same interpolation the replay reports use, so
    a scraped p99 and a reported p99 over the same samples are equal to
    the last bit.  Exposed over ``/metrics`` as a Prometheus ``summary``
    (exact quantiles), not a bucketed histogram approximation.
    """

    __slots__ = ("_samples", "_sorted", "sum")

    QUANTILES = (50.0, 90.0, 99.0)

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._sorted = True
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self._samples.append(float(value))
        self._sorted = False
        self.sum += value

    @property
    def count(self) -> int:
        return len(self._samples)

    def quantile(self, q: float) -> float:
        if not self._samples:
            raise ValueError("quantile of an empty histogram")
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        return percentile_sorted(self._samples, q)


#: Every metric the reproduction exports: name -> (type, help).  The
#: registry rejects undeclared names, and ``tools/check_docs.py`` fails
#: CI unless each name appears in ``docs/observability.md`` — the
#: ``/metrics`` surface is documented by construction.
METRICS: Dict[str, Tuple[str, str]] = {
    "repro_cells_completed_total": (
        "counter", "Trace cells replayed to completion by the engine"),
    "repro_cells_resumed_total": (
        "counter",
        "Journal-checkpointed cells folded back without re-execution"),
    "repro_cells_stolen_total": (
        "counter",
        "Cells pulled by idle workers beyond the initial scheduling "
        "window (work stealing)"),
    "repro_cell_retries_total": (
        "counter",
        "Cell attempts re-queued after a failed attempt (retry policy)"),
    "repro_worker_crashes_total": (
        "counter",
        "Worker-process deaths the engine recovered from by rebuilding "
        "the pool and resubmitting in-flight cells"),
    "repro_runs_rejected_total": (
        "counter",
        "Run submissions rejected by admission control, labeled by "
        "reason (queue_full or tenant_quota)"),
    "repro_records_spilled_total": (
        "counter",
        "Request records written to disk-spill run files by the "
        "spilling record sink"),
    "repro_tenant_requests_total": (
        "counter", "Workflow invocations replayed, labeled by tenant"),
    "repro_tenant_request_latency_seconds": (
        "histogram",
        "End-to-end latency of completed invocations, labeled by tenant"),
    "repro_run_phase_seconds": (
        "histogram",
        "Per-run wall-clock spent in each engine phase "
        "(prepare/execute/finalize), labeled by phase"),
    "repro_runs_total": (
        "counter",
        "Runs that reached a terminal state, labeled by status"),
    "repro_jobs_inflight": (
        "gauge", "Jobs currently executing on the worker pool"),
    "repro_jobs_queued": (
        "gauge", "Jobs accepted but not yet picked up by a worker"),
    "repro_job_workers": (
        "gauge", "Job worker threads serving the run queue"),
    "repro_journal_fsyncs_total": (
        "counter", "Durable appends (write+flush+fsync) to the run journal"),
    "repro_workers_registered": (
        "gauge", "Remote workers currently registered with the control "
        "plane (heartbeats fresh)"),
    "repro_workers_evicted_total": (
        "counter",
        "Remote workers evicted after missing their heartbeat deadline"),
    "repro_leases_granted_total": (
        "counter", "Cell leases handed to remote workers"),
    "repro_leases_expired_total": (
        "counter",
        "Cell leases reclaimed because the deadline passed without a "
        "result"),
    "repro_lease_results_total": (
        "counter",
        "Lease outcomes delivered by remote workers, labeled by status "
        "(ok, error, or stale)"),
}


def metric_names() -> List[str]:
    """Every declared metric name, sorted (docs-coverage surface)."""
    return sorted(METRICS)


LabelPairs = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> LabelPairs:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(pairs: LabelPairs, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    items = pairs + extra
    if not items:
        return ""
    body = ",".join(
        '{}="{}"'.format(
            key,
            value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n"),
        )
        for key, value in items
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """Thread-safe home of every instrument one process exports.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the same
    (name, labels) pair always returns the same instrument, so callers
    hold no references and never race on creation.  Names must be
    declared in :data:`METRICS` with the matching type — an undeclared
    or re-typed name raises immediately, keeping the ``/metrics``
    surface equal to the documented one.

    A registry is cheap; the service owns one per
    :class:`~repro.serve.jobs.JobStore` and the CLI may pass its own to
    :func:`~repro.parallel.engine.run_parallel_replay`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Dict[LabelPairs, object]] = {}

    def _get(self, name: str, kind: str, labels: Mapping[str, str], factory):
        declared = METRICS.get(name)
        if declared is None:
            raise ValueError(
                f"undeclared metric {name!r}; declare it in "
                f"repro.metrics.telemetry.METRICS"
            )
        if declared[0] != kind:
            raise ValueError(
                f"metric {name!r} is declared as a {declared[0]}, not a {kind}"
            )
        key = _label_key(labels)
        with self._lock:
            series = self._metrics.setdefault(name, {})
            instrument = series.get(key)
            if instrument is None:
                instrument = series[key] = factory()
            return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(name, "counter", labels, Counter)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(name, "gauge", labels, Gauge)

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._get(name, "histogram", labels, Histogram)

    # -- reading --------------------------------------------------------------

    def counter_total(self, name: str) -> int:
        """Sum of one counter across all label sets (0 when unused)."""
        with self._lock:
            series = self._metrics.get(name, {})
            return sum(c.value for c in series.values())  # type: ignore[union-attr]

    def snapshot(self) -> Dict[str, Dict[LabelPairs, float]]:
        """Plain numbers for tests: counters/gauges by (name, labels)."""
        out: Dict[str, Dict[LabelPairs, float]] = {}
        with self._lock:
            for name, series in self._metrics.items():
                kind = METRICS[name][0]
                if kind == "histogram":
                    out[name] = {
                        key: float(h.count)  # type: ignore[union-attr]
                        for key, h in series.items()
                    }
                else:
                    out[name] = {
                        key: float(i.value)  # type: ignore[union-attr]
                        for key, i in series.items()
                    }
        return out

    def _lines(self) -> Iterator[str]:
        with self._lock:
            items = {
                name: dict(series) for name, series in self._metrics.items()
            }
        for name in sorted(items):
            kind, help_text = METRICS[name]
            yield f"# HELP {name} {help_text}"
            # Exact-quantile histograms expose as Prometheus summaries.
            yield f"# TYPE {name} {'summary' if kind == 'histogram' else kind}"
            for key in sorted(items[name]):
                instrument = items[name][key]
                if kind == "histogram":
                    hist: Histogram = instrument  # type: ignore[assignment]
                    if hist.count:
                        for q in Histogram.QUANTILES:
                            yield (
                                f"{name}{_render_labels(key, (('quantile', repr(q / 100.0)),))} "
                                f"{_format_value(hist.quantile(q))}"
                            )
                    yield f"{name}_sum{_render_labels(key)} {_format_value(hist.sum)}"
                    yield f"{name}_count{_render_labels(key)} {hist.count}"
                else:
                    value = instrument.value  # type: ignore[union-attr]
                    yield f"{name}{_render_labels(key)} {_format_value(float(value))}"

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format.

        Deterministic: metric families sort by name, series by label
        pairs.  Families with no series yet are simply absent — scrape
        targets treat a missing series as zero.
        """
        return "\n".join(self._lines()) + "\n"
