"""Measurement: latency records, usage integrals, statistics, reporting."""

from .latency import LatencySummary, RequestRecord, TaskRecord
from .report import format_cell, render_table
from .stats import cdf_at, cdf_points, mean, p50, p99, percentile, stddev
from .telemetry import (
    MetricsRegistry,
    SCHEMA_VERSION,
    SchemaError,
    event_kinds,
    metric_names,
    validate_event,
)
from .usage import UsageSummary, collect_usage

__all__ = [
    "LatencySummary",
    "MetricsRegistry",
    "SCHEMA_VERSION",
    "SchemaError",
    "event_kinds",
    "metric_names",
    "validate_event",
    "RequestRecord",
    "TaskRecord",
    "UsageSummary",
    "cdf_at",
    "cdf_points",
    "collect_usage",
    "format_cell",
    "mean",
    "p50",
    "p99",
    "percentile",
    "render_table",
    "stddev",
]
