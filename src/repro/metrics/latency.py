"""Request and task records: the raw material of every experiment."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .stats import mean, p99, percentile, stddev


@dataclass
class TaskRecord:
    """Timing of one function invocation within one request.

    Fields follow the paper's Figure 13 timeline semantics:

    ``ready_time``
        When the task *could* run (all control/data dependencies met).
    ``trigger_time``
        When the scheduler actually dispatched it — the gap to
        ``ready_time`` is the triggering overhead of Figure 2(c).
    ``exec_start`` / ``exec_end``
        The container-resident window (includes Get/compute/Put for
        control-flow systems; fetch+compute for DataFlower).
    ``get_s`` / ``compute_s`` / ``put_s``
        The Figure 2(a) breakdown components.
    """

    task_id: str
    function: str
    node: str = ""
    ready_time: float = 0.0
    trigger_time: float = 0.0
    exec_start: float = 0.0
    exec_end: float = 0.0
    get_s: float = 0.0
    compute_s: float = 0.0
    put_s: float = 0.0
    cold_start: bool = False
    retries: int = 0

    @property
    def trigger_overhead(self) -> float:
        return max(self.trigger_time - self.ready_time, 0.0)

    @property
    def comm_s(self) -> float:
        return self.get_s + self.put_s


@dataclass
class RequestRecord:
    """Timing and outcome of one workflow invocation."""

    request_id: str
    workflow: str
    submit_time: float
    end_time: Optional[float] = None
    failed: bool = False
    error: Optional[str] = None
    tasks: List[TaskRecord] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        return self.end_time is not None and not self.failed

    @property
    def latency(self) -> float:
        if self.end_time is None:
            raise ValueError(f"request {self.request_id} has not completed")
        return self.end_time - self.submit_time

    def task(self, task_id: str) -> TaskRecord:
        for record in self.tasks:
            if record.task_id == task_id:
                return record
        raise KeyError(task_id)


@dataclass
class LatencySummary:
    """Aggregate latency statistics over completed requests."""

    count: int
    mean_s: float
    p50_s: float
    p99_s: float
    sigma_s: float
    max_s: float

    @classmethod
    def from_records(cls, records: List[RequestRecord]) -> "LatencySummary":
        latencies = [r.latency for r in records if r.completed]
        if not latencies:
            raise ValueError("no completed requests to summarize")
        return cls(
            count=len(latencies),
            mean_s=mean(latencies),
            p50_s=percentile(latencies, 50),
            p99_s=p99(latencies),
            sigma_s=stddev(latencies),
            max_s=max(latencies),
        )
