"""Request and task records: the raw material of every experiment."""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain
from typing import Iterable, List, Optional, Sequence, Tuple

from .stats import mean, percentile_sorted, stddev


@dataclass
class TaskRecord:
    """Timing of one function invocation within one request.

    Fields follow the paper's Figure 13 timeline semantics:

    ``ready_time``
        When the task *could* run (all control/data dependencies met).
    ``trigger_time``
        When the scheduler actually dispatched it — the gap to
        ``ready_time`` is the triggering overhead of Figure 2(c).
    ``exec_start`` / ``exec_end``
        The container-resident window (includes Get/compute/Put for
        control-flow systems; fetch+compute for DataFlower).
    ``get_s`` / ``compute_s`` / ``put_s``
        The Figure 2(a) breakdown components.
    """

    task_id: str
    function: str
    node: str = ""
    ready_time: float = 0.0
    trigger_time: float = 0.0
    exec_start: float = 0.0
    exec_end: float = 0.0
    get_s: float = 0.0
    compute_s: float = 0.0
    put_s: float = 0.0
    cold_start: bool = False
    retries: int = 0

    @property
    def trigger_overhead(self) -> float:
        return max(self.trigger_time - self.ready_time, 0.0)

    @property
    def comm_s(self) -> float:
        return self.get_s + self.put_s


@dataclass
class RequestRecord:
    """Timing and outcome of one workflow invocation."""

    request_id: str
    workflow: str
    submit_time: float
    end_time: Optional[float] = None
    failed: bool = False
    error: Optional[str] = None
    tasks: List[TaskRecord] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        return self.end_time is not None and not self.failed

    @property
    def latency(self) -> float:
        if self.end_time is None:
            raise ValueError(f"request {self.request_id} has not completed")
        return self.end_time - self.submit_time

    def task(self, task_id: str) -> TaskRecord:
        for record in self.tasks:
            if record.task_id == task_id:
                return record
        raise KeyError(task_id)


def _merge_sorted(
    a: Tuple[float, ...], b: Tuple[float, ...]
) -> Tuple[float, ...]:
    """Two-way merge of pre-sorted sample arrays — O(n), no re-sort."""
    out: List[float] = []
    append = out.append
    i = j = 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        x, y = a[i], b[j]
        if x <= y:
            append(x)
            i += 1
        else:
            append(y)
            j += 1
    if i < la:
        out.extend(a[i:])
    else:
        out.extend(b[j:])
    return tuple(out)


class LatencySummary:
    """Aggregate latency statistics over completed requests.

    Summaries built through :meth:`from_records` / :meth:`from_latencies`
    retain their underlying samples (excluded from reports and equality),
    which makes them *mergeable*: ``a.merge(b)`` — or ``a + b`` — equals
    :meth:`from_latencies` on the concatenated sample sets exactly, so
    sharded runs can combine per-shard summaries without losing the
    percentiles.

    Statistics are **exact but lazy**: a summary built from samples
    defers its mean/percentile/σ computation until a statistic is first
    read, and merges only concatenate sample arrays (two-way-merging the
    pre-sorted arrays in O(n) when both operands already materialized,
    instead of re-sorting the union per fold).  A replay that folds
    thousands of per-cell summaries therefore pays one sort at first
    read, not one per merge — and the materialized values are
    byte-identical to the eager computation: means and σ sum the samples
    in their original record order, percentiles interpolate over the
    same sorted sequence.

    The legacy constructor (explicit ``count``/``mean_s``/... values)
    still works for hand-built summaries; those carry no samples and
    cannot merge.
    """

    __slots__ = ("_samples", "_sorted", "_stats")

    #: Report schema, in serialization order (mirrors the former
    #: dataclass field order so JSON output is unchanged).
    _STAT_FIELDS = ("count", "mean_s", "p50_s", "p99_s", "sigma_s", "max_s")

    def __init__(
        self,
        count: Optional[int] = None,
        mean_s: Optional[float] = None,
        p50_s: Optional[float] = None,
        p99_s: Optional[float] = None,
        sigma_s: Optional[float] = None,
        max_s: Optional[float] = None,
        samples: Tuple[float, ...] = (),
    ) -> None:
        self._samples = tuple(samples)
        self._sorted: Optional[Tuple[float, ...]] = None
        if count is None:
            if not self._samples:
                raise ValueError("no completed requests to summarize")
            self._stats: Optional[tuple] = None  # lazy: from samples
        else:
            self._stats = (count, mean_s, p50_s, p99_s, sigma_s, max_s)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_latencies(cls, latencies: Sequence[float]) -> "LatencySummary":
        if not latencies:
            raise ValueError("no completed requests to summarize")
        return cls(samples=tuple(latencies))

    @classmethod
    def from_records(cls, records: List[RequestRecord]) -> "LatencySummary":
        return cls.from_latencies(
            [r.latency for r in records if r.completed]
        )

    @classmethod
    def fold(cls, summaries: Iterable["LatencySummary"]) -> "LatencySummary":
        """Merge many summaries in one O(total) concatenation.

        Equivalent to chaining :meth:`merge` left to right (same sample
        order, same statistics) without the quadratic intermediate
        tuples; the streaming replay merge folds per-cell summaries in
        sorted-cell-key order through this.
        """
        parts = list(summaries)
        if not parts:
            raise ValueError("fold of no summaries")
        for part in parts:
            if not isinstance(part, LatencySummary):
                raise TypeError(
                    f"cannot merge LatencySummary with {type(part).__name__}"
                )
            if not part._samples:
                raise ValueError(
                    "merge needs summaries that retain samples (build them "
                    "via from_records/from_latencies, not the raw "
                    "constructor)"
                )
        if len(parts) == 1:
            return parts[0]
        return cls(
            samples=tuple(chain.from_iterable(p._samples for p in parts))
        )

    # -- lazy materialization ------------------------------------------------

    def _ordered(self) -> Tuple[float, ...]:
        if self._sorted is None:
            self._sorted = tuple(sorted(self._samples))
        return self._sorted

    def _materialize(self) -> tuple:
        if self._stats is None:
            samples = self._samples
            ordered = self._ordered()
            self._stats = (
                len(samples),
                mean(samples),
                percentile_sorted(ordered, 50),
                percentile_sorted(ordered, 99.0),
                stddev(samples),
                ordered[-1],
            )
        return self._stats

    @property
    def count(self) -> int:
        return self._materialize()[0]

    @property
    def mean_s(self) -> float:
        return self._materialize()[1]

    @property
    def p50_s(self) -> float:
        return self._materialize()[2]

    @property
    def p99_s(self) -> float:
        return self._materialize()[3]

    @property
    def sigma_s(self) -> float:
        return self._materialize()[4]

    @property
    def max_s(self) -> float:
        return self._materialize()[5]

    @property
    def samples(self) -> Tuple[float, ...]:
        """Latencies the summary was computed from, in record order.
        Carried so summaries merge exactly; excluded from reports and
        from ``==`` so the JSON schema and comparisons match the plain
        six-field summary."""
        return self._samples

    def report_dict(self) -> dict:
        """The six-statistic report mapping (samples excluded); the
        serialization :func:`repro.metrics.report.summary_to_dict`
        emits."""
        return dict(zip(self._STAT_FIELDS, self._materialize()))

    # -- merging -------------------------------------------------------------

    def merge(self, other: "LatencySummary") -> "LatencySummary":
        """Combine two summaries into the summary of the union.

        Exact (not approximated): both operands must retain their samples,
        i.e. have been built via :meth:`from_records`/:meth:`from_latencies`
        or previous merges.  The merge itself is O(n) concatenation; when
        both operands already sorted their samples, the union's sorted
        array comes from a two-way merge instead of a future re-sort.
        """
        if not isinstance(other, LatencySummary):
            raise TypeError(
                f"cannot merge LatencySummary with {type(other).__name__}"
            )
        if not self._samples or not other._samples:
            raise ValueError(
                "merge needs summaries that retain samples (build them via "
                "from_records/from_latencies, not the raw constructor)"
            )
        merged = type(self)(samples=self._samples + other._samples)
        if self._sorted is not None and other._sorted is not None:
            merged._sorted = _merge_sorted(self._sorted, other._sorted)
        return merged

    def __add__(self, other: "LatencySummary") -> "LatencySummary":
        if not isinstance(other, LatencySummary):
            return NotImplemented
        return self.merge(other)

    # -- comparison / presentation -------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencySummary):
            return NotImplemented
        return self._materialize() == other._materialize()

    __hash__ = None  # type: ignore[assignment]  # mutable cache, like eq dataclass

    def __repr__(self) -> str:
        stats = self.report_dict()
        body = ", ".join(f"{k}={v!r}" for k, v in stats.items())
        return f"LatencySummary({body})"

    # -- pickling (slots) ----------------------------------------------------

    def __getstate__(self) -> tuple:
        return (self._samples, self._sorted, self._stats)

    def __setstate__(self, state: tuple) -> None:
        self._samples, self._sorted, self._stats = state
