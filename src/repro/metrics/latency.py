"""Request and task records: the raw material of every experiment."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .stats import mean, p99, percentile, stddev


@dataclass
class TaskRecord:
    """Timing of one function invocation within one request.

    Fields follow the paper's Figure 13 timeline semantics:

    ``ready_time``
        When the task *could* run (all control/data dependencies met).
    ``trigger_time``
        When the scheduler actually dispatched it — the gap to
        ``ready_time`` is the triggering overhead of Figure 2(c).
    ``exec_start`` / ``exec_end``
        The container-resident window (includes Get/compute/Put for
        control-flow systems; fetch+compute for DataFlower).
    ``get_s`` / ``compute_s`` / ``put_s``
        The Figure 2(a) breakdown components.
    """

    task_id: str
    function: str
    node: str = ""
    ready_time: float = 0.0
    trigger_time: float = 0.0
    exec_start: float = 0.0
    exec_end: float = 0.0
    get_s: float = 0.0
    compute_s: float = 0.0
    put_s: float = 0.0
    cold_start: bool = False
    retries: int = 0

    @property
    def trigger_overhead(self) -> float:
        return max(self.trigger_time - self.ready_time, 0.0)

    @property
    def comm_s(self) -> float:
        return self.get_s + self.put_s


@dataclass
class RequestRecord:
    """Timing and outcome of one workflow invocation."""

    request_id: str
    workflow: str
    submit_time: float
    end_time: Optional[float] = None
    failed: bool = False
    error: Optional[str] = None
    tasks: List[TaskRecord] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        return self.end_time is not None and not self.failed

    @property
    def latency(self) -> float:
        if self.end_time is None:
            raise ValueError(f"request {self.request_id} has not completed")
        return self.end_time - self.submit_time

    def task(self, task_id: str) -> TaskRecord:
        for record in self.tasks:
            if record.task_id == task_id:
                return record
        raise KeyError(task_id)


@dataclass
class LatencySummary:
    """Aggregate latency statistics over completed requests.

    Summaries built through :meth:`from_records` / :meth:`from_latencies`
    retain their underlying samples (excluded from reports and equality),
    which makes them *mergeable*: ``a.merge(b)`` — or ``a + b`` — equals
    :meth:`from_latencies` on the concatenated sample sets exactly, so
    sharded runs can combine per-shard summaries without losing the
    percentiles.
    """

    count: int
    mean_s: float
    p50_s: float
    p99_s: float
    sigma_s: float
    max_s: float
    #: Latencies the summary was computed from, in record order.  Carried
    #: so summaries merge exactly; excluded from reports (``report=False``
    #: metadata) and from ``==`` so the JSON schema and comparisons match
    #: the plain six-field summary.
    samples: Tuple[float, ...] = field(
        default=(), repr=False, compare=False, metadata={"report": False}
    )

    @classmethod
    def from_latencies(cls, latencies: Sequence[float]) -> "LatencySummary":
        latencies = list(latencies)
        if not latencies:
            raise ValueError("no completed requests to summarize")
        return cls(
            count=len(latencies),
            mean_s=mean(latencies),
            p50_s=percentile(latencies, 50),
            p99_s=p99(latencies),
            sigma_s=stddev(latencies),
            max_s=max(latencies),
            samples=tuple(latencies),
        )

    @classmethod
    def from_records(cls, records: List[RequestRecord]) -> "LatencySummary":
        return cls.from_latencies(
            [r.latency for r in records if r.completed]
        )

    def merge(self, other: "LatencySummary") -> "LatencySummary":
        """Combine two summaries into the summary of the union.

        Exact (not approximated): both operands must retain their samples,
        i.e. have been built via :meth:`from_records`/:meth:`from_latencies`
        or previous merges.
        """
        if not isinstance(other, LatencySummary):
            raise TypeError(
                f"cannot merge LatencySummary with {type(other).__name__}"
            )
        if not self.samples or not other.samples:
            raise ValueError(
                "merge needs summaries that retain samples (build them via "
                "from_records/from_latencies, not the raw constructor)"
            )
        return type(self).from_latencies(self.samples + other.samples)

    def __add__(self, other: "LatencySummary") -> "LatencySummary":
        if not isinstance(other, LatencySummary):
            return NotImplemented
        return self.merge(other)
