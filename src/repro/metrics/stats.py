"""Statistics helpers: percentiles, CDFs, and dispersion.

Implemented from first principles (linear-interpolation percentiles, the
same convention as numpy's default) so the metric definitions are explicit
and unit-testable.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation (the paper reports sigma)."""
    if not values:
        raise ValueError("stddev of empty sequence")
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def percentile_sorted(ordered: Sequence[float], q: float) -> float:
    """q-th percentile (0..100) of *already-sorted* values.

    The one copy of the interpolation arithmetic: :func:`percentile`
    sorts and delegates here, and lazily materialized summaries (which
    keep their samples pre-sorted across merges) call it directly — so
    eager and lazy percentiles are byte-identical by construction.
    """
    if not ordered:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"q must lie in [0, 100], got {q}")
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return ordered[lower]
    weight = rank - lower
    value = ordered[lower] * (1 - weight) + ordered[upper] * weight
    # Clamp float-rounding residue back inside the bracketing samples.
    return min(max(value, ordered[lower]), ordered[upper])


def percentile(values: Sequence[float], q: float) -> float:
    """q-th percentile (0..100) with linear interpolation."""
    return percentile_sorted(sorted(values), q)


def p99(values: Sequence[float]) -> float:
    return percentile(values, 99.0)


def p50(values: Sequence[float]) -> float:
    return percentile(values, 50.0)


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, cumulative probability) steps."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(value, (i + 1) / n) for i, value in enumerate(ordered)]


def cdf_at(values: Sequence[float], threshold: float) -> float:
    """Fraction of values <= threshold."""
    if not values:
        raise ValueError("cdf of empty sequence")
    return sum(1 for v in values if v <= threshold) / len(values)
