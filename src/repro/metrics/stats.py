"""Statistics helpers: percentiles, CDFs, and dispersion.

Implemented from first principles (linear-interpolation percentiles, the
same convention as numpy's default) so the metric definitions are explicit
and unit-testable.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation (the paper reports sigma)."""
    if not values:
        raise ValueError("stddev of empty sequence")
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def percentile(values: Sequence[float], q: float) -> float:
    """q-th percentile (0..100) with linear interpolation."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"q must lie in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return ordered[lower]
    weight = rank - lower
    value = ordered[lower] * (1 - weight) + ordered[upper] * weight
    # Clamp float-rounding residue back inside the bracketing samples.
    return min(max(value, ordered[lower]), ordered[upper])


def p99(values: Sequence[float]) -> float:
    return percentile(values, 99.0)


def p50(values: Sequence[float]) -> float:
    return percentile(values, 50.0)


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, cumulative probability) steps."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(value, (i + 1) / n) for i, value in enumerate(ordered)]


def cdf_at(values: Sequence[float], threshold: float) -> float:
    """Fraction of values <= threshold."""
    if not values:
        raise ValueError("cdf of empty sequence")
    return sum(1 for v in values if v <= threshold) / len(values)
