"""Resource-usage metrics derived from cluster telemetry."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.cluster import Cluster


@dataclass(frozen=True)
class UsageSummary:
    """The paper's cost metrics for one run.

    ``memory_gbs``
        Integral of container-resident memory over time (Figure 10's
        "Memory(GB*s)"), divided by completed requests when reported
        per-request.
    ``cache_mbs``
        Integral of host-side intermediate-data cache (Figure 14's
        "Cache Usage(MB*s)").
    """

    memory_gbs: float
    cache_mbs: float
    completed_requests: int

    def merge(self, other: "UsageSummary") -> "UsageSummary":
        """The usage of two disjoint runs combined (integrals add)."""
        if not isinstance(other, UsageSummary):
            raise TypeError(
                f"cannot merge UsageSummary with {type(other).__name__}"
            )
        return UsageSummary(
            memory_gbs=self.memory_gbs + other.memory_gbs,
            cache_mbs=self.cache_mbs + other.cache_mbs,
            completed_requests=self.completed_requests + other.completed_requests,
        )

    def __add__(self, other: "UsageSummary") -> "UsageSummary":
        if not isinstance(other, UsageSummary):
            return NotImplemented
        return self.merge(other)

    @property
    def memory_gbs_per_request(self) -> float:
        if self.completed_requests == 0:
            return float("nan")
        return self.memory_gbs / self.completed_requests

    @property
    def cache_mbs_per_request(self) -> float:
        if self.completed_requests == 0:
            return float("nan")
        return self.cache_mbs / self.completed_requests


def collect_usage(cluster: "Cluster", completed_requests: int) -> UsageSummary:
    return UsageSummary(
        memory_gbs=cluster.total_memory_gbs(),
        cache_mbs=cluster.total_cache_mbs(),
        completed_requests=completed_requests,
    )
