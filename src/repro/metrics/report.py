"""Fixed-width table rendering for experiment output.

Every experiment module prints its figure/table through these helpers so
`python -m repro.experiments <id>` output is uniform and diffable.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def format_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "fail"
        magnitude = abs(value)
        if magnitude >= 1000 or (magnitude < 0.01 and magnitude > 0):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(items: Sequence[str]) -> str:
        return "  ".join(item.ljust(widths[i]) for i, item in enumerate(items)).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in cells)
    return "\n".join(parts)
