"""Report rendering: fixed-width tables and JSON serialization.

Every experiment module prints its figure/table through these helpers so
`python -m repro.experiments <id>` output is uniform and diffable; the
CLI's ``--format json`` path serializes the same summaries through
:func:`summary_to_dict` / :func:`render_json`.
"""

from __future__ import annotations

import dataclasses
import json
import math
from typing import Any, List, Optional, Sequence


def format_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "fail"
        magnitude = abs(value)
        if magnitude >= 1000 or (magnitude < 0.01 and magnitude > 0):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(items: Sequence[str]) -> str:
        return "  ".join(item.ljust(widths[i]) for i, item in enumerate(items)).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in cells)
    return "\n".join(parts)


def summary_to_dict(summary: Any) -> dict:
    """A metrics summary (LatencySummary, UsageSummary, ...) as a dict.

    Summaries are either dataclasses (fields whose metadata carries
    ``report=False`` are left out) or expose a ``report_dict()`` method
    naming their reportable statistics (e.g. the lazily materialized
    :class:`~repro.metrics.latency.LatencySummary`, whose retained
    samples stay out of reports).  Non-finite values (e.g. per-request
    usage with zero completions) become ``None`` so the result is
    strict-JSON serializable.
    """
    if hasattr(summary, "report_dict"):
        out = summary.report_dict()
    elif dataclasses.is_dataclass(summary) and not isinstance(summary, type):
        out = {}
        for spec in dataclasses.fields(summary):
            if not spec.metadata.get("report", True):
                continue
            out[spec.name] = getattr(summary, spec.name)
    else:
        raise TypeError(
            f"expected a dataclass or report_dict() summary, got "
            f"{type(summary).__name__}"
        )
    for key, value in out.items():
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            out[key] = summary_to_dict(value)
        elif isinstance(value, float) and not math.isfinite(value):
            out[key] = None
    return out


def tag_tenant_profiles(payload: dict, profiles: dict) -> dict:
    """Annotate a report's per-tenant sections with resolved profiles.

    Heterogeneous replays (``--tenant-config``) attach each tenant's
    resolved profile tag — system, placement, source layer — to its
    ``tenants`` section so mixed-system runs stay auditable.  Tenants
    absent from the report (no records) are skipped; the payload is
    returned for chaining.
    """
    tenants = payload.get("tenants") or {}
    for tenant, tag in profiles.items():
        if tenant in tenants:
            tenants[tenant]["profile"] = dict(tag)
    return payload


# The envelope and its schema live in :mod:`repro.metrics.telemetry`
# (the versioned telemetry layer); re-exported here because rendering
# and the envelope grew up together and callers import both from one
# place.  ``EVENT_SCHEMA_VERSION`` is the historical alias of
# :data:`~repro.metrics.telemetry.SCHEMA_VERSION`.
from .telemetry import SCHEMA_VERSION as EVENT_SCHEMA_VERSION  # noqa: E402
from .telemetry import event_envelope  # noqa: E402, F401


def render_event(envelope: dict) -> str:
    """Serialize one event envelope as a compact single NDJSON line.

    Same strict-JSON rules as :func:`render_json` (NaN/inf become
    null, summaries serialize through :func:`summary_to_dict`), but
    compact separators and no indentation — one event, one line.
    """
    text = render_json(envelope, indent=None)
    if "\n" in text:  # pragma: no cover - json.dumps never wraps here
        raise ValueError("event envelope serialized to multiple lines")
    return text


def render_json(payload: Any, indent: Optional[int] = 2) -> str:
    """Serialize a report payload as strict JSON (NaN/inf become null)."""

    def default(value: Any) -> Any:
        if hasattr(value, "report_dict") or (
            dataclasses.is_dataclass(value) and not isinstance(value, type)
        ):
            return summary_to_dict(value)
        raise TypeError(
            f"{type(value).__name__} is not JSON serializable"
        )

    def sanitize(value: Any) -> Any:
        if isinstance(value, float) and not math.isfinite(value):
            return None
        if isinstance(value, dict):
            return {k: sanitize(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [sanitize(v) for v in value]
        return value

    separators = (",", ":") if indent is None else None
    return json.dumps(
        sanitize(payload), indent=indent, separators=separators, default=default
    )
