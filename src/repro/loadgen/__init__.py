"""Load generation: open-loop schedules, closed-loop clients, run harness."""

from .arrivals import RateSegment, arrival_times, burst, constant, total_duration
from .runner import (
    DEFAULT_TIMEOUT_S,
    RunResult,
    default_request_factory,
    run_closed_loop,
    run_open_loop,
)

__all__ = [
    "DEFAULT_TIMEOUT_S",
    "RateSegment",
    "RunResult",
    "arrival_times",
    "burst",
    "constant",
    "default_request_factory",
    "run_closed_loop",
    "run_open_loop",
    "total_duration",
]
