"""Load generation: schedules, closed-loop clients, traces, run harness."""

from .arrivals import RateSegment, arrival_times, burst, constant, total_duration
from .runner import (
    DEFAULT_TIMEOUT_S,
    RunResult,
    default_request_factory,
    run_closed_loop,
    run_open_loop,
)
from .trace import (
    InvocationTrace,
    TraceEvent,
    TraceRunResult,
    run_trace,
    synthesize_trace,
)

__all__ = [
    "DEFAULT_TIMEOUT_S",
    "InvocationTrace",
    "RateSegment",
    "RunResult",
    "TraceEvent",
    "TraceRunResult",
    "arrival_times",
    "burst",
    "constant",
    "default_request_factory",
    "run_closed_loop",
    "run_open_loop",
    "run_trace",
    "synthesize_trace",
    "total_duration",
]
