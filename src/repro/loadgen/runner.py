"""Run harness: drives a system with a workload and collects metrics.

Two patterns, matching the paper's §9.1 methodology:

* **Open loop** (asynchronous invocations): requests arrive on a schedule
  regardless of completions; reveals tail latency at a given load
  (Figures 10, 15, 18).
* **Closed loop** (synchronous invocations): N client threads each submit
  the next request when the previous one returns; reveals the achievable
  peak throughput (Figures 11, 12, 16, 17).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..metrics.latency import LatencySummary, RequestRecord
from ..metrics.usage import UsageSummary, collect_usage
from ..systems.base import WorkflowSystem
from ..workflow.instance import RequestSpec
from .arrivals import RateSegment, arrival_times, total_duration

#: A request a runner marks failed after waiting this long (the paper's
#: "missing points mean the benchmark suffers from timeout").
DEFAULT_TIMEOUT_S = 60.0

RequestFactory = Callable[[int], RequestSpec]


@dataclass
class RunResult:
    """Everything an experiment needs from one run."""

    system_name: str
    workflow: str
    duration_s: float
    offered: int
    records: List[RequestRecord] = field(default_factory=list)
    usage: Optional[UsageSummary] = None

    @property
    def completed(self) -> List[RequestRecord]:
        return [r for r in self.records if r.completed]

    @property
    def failed(self) -> List[RequestRecord]:
        return [r for r in self.records if r.failed]

    @property
    def failure_rate(self) -> float:
        return len(self.failed) / len(self.records) if self.records else 0.0

    def latency(self) -> LatencySummary:
        return LatencySummary.from_records(self.records)

    def throughput_rpm(self) -> float:
        """Completed requests per minute over the run duration."""
        if self.duration_s <= 0:
            return 0.0
        return len(self.completed) / self.duration_s * 60.0

    @property
    def all_failed(self) -> bool:
        return bool(self.records) and not self.completed

    def to_dict(self) -> dict:
        """The run as a JSON-ready report (the CLI's ``--format json``).

        Schema: run identity (``system``, ``workflow``), offered/completed
        counts, ``latency`` (a :class:`LatencySummary` dict, ``None`` when
        nothing completed), and ``usage`` (integrals plus per-request).
        """
        from ..metrics.report import summary_to_dict

        # One pass over the records: the completed/failed splits below
        # feed four separate report fields (replays carry millions of
        # records, so the property-per-field scans add up).
        completed = failed = 0
        for record in self.records:
            if record.completed:
                completed += 1
            elif record.failed:
                failed += 1
        payload: dict = {
            "system": self.system_name,
            "workflow": self.workflow,
            "duration_s": self.duration_s,
            "offered": self.offered,
            "completed": completed,
            "failed": failed,
            "failure_rate": failed / len(self.records) if self.records else 0.0,
            "throughput_rpm": (
                completed / self.duration_s * 60.0 if self.duration_s > 0 else 0.0
            ),
            "latency": summary_to_dict(self.latency()) if completed else None,
            "usage": None,
        }
        if self.usage is not None:
            usage = summary_to_dict(self.usage)
            per_request = self.usage.memory_gbs_per_request
            usage["memory_gbs_per_request"] = (
                None if per_request != per_request else per_request
            )
            per_request = self.usage.cache_mbs_per_request
            usage["cache_mbs_per_request"] = (
                None if per_request != per_request else per_request
            )
            payload["usage"] = usage
        return payload


def default_request_factory(
    system: WorkflowSystem, workflow_name: str, input_bytes: float, fanout: int
) -> RequestFactory:
    """Uniform requests with sequential ids."""

    def factory(index: int) -> RequestSpec:
        return RequestSpec(
            request_id=system.next_request_id(workflow_name),
            input_bytes=input_bytes,
            fanout=fanout,
            seed=index,
        )

    return factory


def _guarded_submit(system, workflow_name, request, timeout_s):
    """Submit and cap the wait; returns (record, completion process)."""
    env = system.env
    done = system.submit(workflow_name, request)
    record = system.records[-1]

    def guard():
        result = yield done | env.timeout(timeout_s)
        if done not in result and record.end_time is None:
            record.end_time = env.now
            record.failed = True
            record.error = "timeout"
        return record

    return record, env.process(guard())


def run_open_loop(
    system: WorkflowSystem,
    workflow_name: str,
    request_factory: RequestFactory,
    schedule: Sequence[RateSegment],
    timeout_s: float = DEFAULT_TIMEOUT_S,
    poisson: bool = False,
    seed: int = 0,
    drain_s: Optional[float] = None,
) -> RunResult:
    """Asynchronous invocation pattern at a given offered load."""
    env = system.env
    times = arrival_times(schedule, poisson=poisson, seed=seed)
    duration = total_duration(schedule)
    run_records: List[RequestRecord] = []
    guards = []

    def generator():
        start = env.now
        for index, at in enumerate(times):
            delay = start + at - env.now
            if delay > 0:
                yield env.timeout(delay)
            record, guard = _guarded_submit(
                system, workflow_name, request_factory(index), timeout_s
            )
            run_records.append(record)
            guards.append(guard)

    producer = env.process(generator())
    env.run(until=producer)
    if guards:
        env.run(until=env.all_of(guards))
    if drain_s:
        env.run(until=env.now + drain_s)
    return RunResult(
        system_name=system.name,
        workflow=workflow_name,
        duration_s=duration,
        offered=len(times),
        records=run_records,
        usage=collect_usage(system.cluster, sum(1 for r in run_records if r.completed)),
    )


def run_closed_loop(
    system: WorkflowSystem,
    workflow_name: str,
    request_factory: RequestFactory,
    clients: int,
    duration_s: float,
    timeout_s: float = DEFAULT_TIMEOUT_S,
    ramp_s: Optional[float] = None,
) -> RunResult:
    """Synchronous invocation pattern with N closed-loop clients.

    Clients connect staggered over ``ramp_s`` (default: the first quarter
    of the run) rather than in one instant — like real load generators,
    and essential for observing scaling-policy differences: an
    instantaneous all-client burst pre-provisions one container per
    client and hides dispatch-policy effects entirely.
    """
    if clients < 1:
        raise ValueError("clients must be >= 1")
    env = system.env
    run_records: List[RequestRecord] = []
    deadline = env.now + duration_s
    counter = [0]
    if ramp_s is None:
        ramp_s = duration_s / 4.0
    stagger = ramp_s / clients

    def client_loop(client_id: int):
        delay = client_id * stagger
        if delay > 0:
            yield env.timeout(delay)
        while env.now < deadline:
            index = counter[0]
            counter[0] += 1
            record, guard = _guarded_submit(
                system, workflow_name, request_factory(index), timeout_s
            )
            run_records.append(record)
            yield guard

    workers = [env.process(client_loop(i)) for i in range(clients)]
    env.run(until=env.all_of(workers))
    return RunResult(
        system_name=system.name,
        workflow=workflow_name,
        duration_s=duration_s,
        offered=len(run_records),
        records=run_records,
        usage=collect_usage(system.cluster, sum(1 for r in run_records if r.completed)),
    )
