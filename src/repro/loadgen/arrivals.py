"""Open-loop arrival processes (the paper's *asynchronous invocations*).

With asynchronous invocation, requests arrive at a given offered load
regardless of completions.  Schedules are expressed as segments of
``(duration_s, rate_rpm)``, which directly supports the bursty experiment
(Figure 15: wc jumps from 10 rpm to 100 rpm).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple


@dataclass(frozen=True)
class RateSegment:
    """A constant offered load for a fixed span of time."""

    duration_s: float
    rate_rpm: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.rate_rpm < 0:
            raise ValueError("rate_rpm must be non-negative")


def constant(rate_rpm: float, duration_s: float) -> List[RateSegment]:
    """A single-rate schedule."""
    return [RateSegment(duration_s, rate_rpm)]


def burst(
    base_rpm: float,
    burst_rpm: float,
    base_duration_s: float,
    burst_duration_s: float,
) -> List[RateSegment]:
    """Figure 15's step burst: base load, then a sudden surge."""
    return [
        RateSegment(base_duration_s, base_rpm),
        RateSegment(burst_duration_s, burst_rpm),
    ]


def arrival_times(
    schedule: Sequence[RateSegment],
    poisson: bool = False,
    seed: int = 0,
) -> List[float]:
    """Absolute submission times for a schedule.

    ``poisson=False`` spaces arrivals evenly inside each segment (a paced
    open loop, the common load-generator default); ``poisson=True`` draws
    exponential gaps at the segment's rate.
    """
    rng = random.Random(seed)
    times: List[float] = []
    segment_start = 0.0
    for segment in schedule:
        rate_per_s = segment.rate_rpm / 60.0
        end = segment_start + segment.duration_s
        if rate_per_s > 0:
            if poisson:
                t = segment_start + rng.expovariate(rate_per_s)
                while t < end:
                    times.append(t)
                    t += rng.expovariate(rate_per_s)
            else:
                gap = 1.0 / rate_per_s
                t = segment_start
                while t < end - 1e-12:
                    times.append(t)
                    t += gap
        segment_start = end
    return times


def total_duration(schedule: Sequence[RateSegment]) -> float:
    return sum(segment.duration_s for segment in schedule)
