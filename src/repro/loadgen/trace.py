"""Trace-driven load generation: Azure-Functions-style invocation replay.

Production serverless traffic is not a constant rate: many tenants share
a platform, each invoking its own workflow at its own (heavy-tailed)
rate with its own input sizes.  This module models that as an
:class:`InvocationTrace` — a time-ordered list of :class:`TraceEvent`
records carrying per-tenant arrival timestamps and request shapes — and
replays it against any :class:`~repro.systems.base.WorkflowSystem` with
:func:`run_trace`, the open-loop pattern generalized to mixed workflows.

Traces load from JSON (a list of event objects, or ``{"name": ...,
"events": [...]}``) or CSV (header ``at_s,tenant,app,input_bytes,fanout,
seed``; only ``at_s`` is required).  Input sizes accept ``4MB``-style
suffixes.  :func:`synthesize_trace` generates a deterministic multi-tenant
trace in the Azure-trace spirit: per-tenant Poisson arrivals with
lognormally skewed rates, so a few tenants dominate the load.
"""

from __future__ import annotations

import csv
import io
import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..metrics.latency import LatencySummary, RequestRecord
from ..metrics.usage import collect_usage
from ..systems.base import WorkflowSystem
from ..workflow.dsl import parse_size
from ..workflow.instance import RequestSpec
from .runner import DEFAULT_TIMEOUT_S, RunResult, _guarded_submit


@dataclass(frozen=True)
class TraceEvent:
    """One invocation in a trace."""

    #: Arrival time relative to replay start, seconds.
    at_s: float
    #: Tenant issuing the request (per-tenant breakdowns key on this).
    tenant: str = "default"
    #: Registry app short name; ``None`` means the replay's default app.
    app: Optional[str] = None
    #: Request input size; ``None`` means the app's default.
    input_bytes: Optional[float] = None
    #: FOREACH width; ``None`` means the app's default.
    fanout: Optional[int] = None
    #: SWITCH-selector seed for this invocation.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("at_s must be non-negative")
        if self.input_bytes is not None and self.input_bytes < 0:
            raise ValueError("input_bytes must be non-negative")
        if self.fanout is not None and self.fanout < 1:
            raise ValueError("fanout must be >= 1")


@dataclass
class InvocationTrace:
    """A named, time-ordered collection of invocation events."""

    events: List[TraceEvent]
    name: str = "trace"

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda e: e.at_s)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def duration_s(self) -> float:
        return self.events[-1].at_s if self.events else 0.0

    def tenants(self) -> List[str]:
        return sorted({event.tenant for event in self.events})

    def sole_tenant(self) -> Optional[str]:
        """The single tenant every event shares, or ``None`` when mixed/empty.

        Tenant-profile resolution keys on this: a cell whose events all
        belong to one tenant gets that tenant's profile, while mixed
        cells (e.g. timeslice sharding) fall back to the default.
        """
        tenants = {event.tenant for event in self.events}
        return tenants.pop() if len(tenants) == 1 else None

    def apps(self) -> List[str]:
        """Distinct app names named by events (``None`` defaults excluded)."""
        return sorted({event.app for event in self.events if event.app})

    # -- loading -----------------------------------------------------------------

    @staticmethod
    def _event_from_row(row: dict) -> TraceEvent:
        """Parse one JSON/CSV row dict into a :class:`TraceEvent`."""
        if row.get("at_s") in ("", None):
            raise ValueError(
                f"trace event missing required 'at_s' field: {row!r}"
            )
        raw_size = row.get("input_bytes")
        if isinstance(raw_size, str) and raw_size.strip():
            raw_size = parse_size(raw_size)
        elif raw_size in ("", None):
            raw_size = None
        else:
            raw_size = float(raw_size)
        return TraceEvent(
            at_s=float(row["at_s"]),
            tenant=str(row.get("tenant") or "default"),
            app=(str(row["app"]) if row.get("app") else None),
            input_bytes=raw_size,
            fanout=(int(row["fanout"]) if row.get("fanout") else None),
            seed=int(row.get("seed") or 0),
        )

    @classmethod
    def from_events(
        cls, rows: Sequence[dict], name: str = "trace"
    ) -> "InvocationTrace":
        """Build from dict rows (the JSON/CSV schema)."""
        return cls(events=[cls._event_from_row(row) for row in rows], name=name)

    @classmethod
    def from_json(cls, text: str, name: str = "trace") -> "InvocationTrace":
        payload = json.loads(text)
        if isinstance(payload, dict):
            name = payload.get("name", name)
            rows = payload.get("events", [])
        else:
            rows = payload
        return cls.from_events(rows, name=name)

    @classmethod
    def from_csv(cls, text: str, name: str = "trace") -> "InvocationTrace":
        """Parse CSV text, tolerating blank lines and ``#`` comments.

        The first contentful line is the header.  Malformed rows raise
        :class:`ValueError` naming the 1-indexed source line, so a bad
        row in a million-line trace is findable.
        """
        # Filter comment/blank physical lines but keep line endings and a
        # map back to source line numbers, then let csv.reader consume the
        # remainder so quoted fields (embedded newlines included) parse as
        # real CSV.
        lines: List[str] = []
        origin: List[int] = []
        for line_no, raw in enumerate(text.splitlines(keepends=True), start=1):
            stripped = raw.strip()
            if not stripped or stripped.startswith("#"):
                continue
            lines.append(raw)
            origin.append(line_no)
        header: Optional[List[str]] = None
        events: List[TraceEvent] = []
        reader = csv.reader(lines)
        consumed = 0
        for values in reader:
            row_line = origin[consumed]
            consumed = reader.line_num
            if header is None:
                header = [column.strip() for column in values]
                continue
            if len(values) > len(header):
                raise ValueError(
                    f"trace CSV line {row_line}: {len(values)} fields but "
                    f"header has {len(header)} columns"
                )
            row = dict(zip(header, (value.strip() for value in values)))
            try:
                events.append(cls._event_from_row(row))
            except ValueError as exc:
                raise ValueError(
                    f"trace CSV line {row_line}: {exc}"
                ) from None
        return cls(events=events, name=name)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "InvocationTrace":
        """Load a trace file, dispatching on the ``.json``/``.csv`` suffix."""
        path = Path(path)
        text = path.read_text()
        if path.suffix.lower() == ".csv":
            return cls.from_csv(text, name=path.stem)
        return cls.from_json(text, name=path.stem)

    def to_json(self) -> str:
        rows = []
        for event in self.events:
            row: dict = {"at_s": event.at_s, "tenant": event.tenant}
            if event.app is not None:
                row["app"] = event.app
            if event.input_bytes is not None:
                row["input_bytes"] = event.input_bytes
            if event.fanout is not None:
                row["fanout"] = event.fanout
            if event.seed:
                row["seed"] = event.seed
            rows.append(row)
        return json.dumps({"name": self.name, "events": rows}, indent=2)

    def to_csv(self) -> str:
        """The trace in the loader's CSV schema (round-trips via
        :meth:`from_csv`)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["at_s", "tenant", "app", "input_bytes", "fanout", "seed"])
        for event in self.events:
            writer.writerow(
                [
                    event.at_s,
                    event.tenant,
                    event.app or "",
                    "" if event.input_bytes is None else event.input_bytes,
                    "" if event.fanout is None else event.fanout,
                    event.seed,
                ]
            )
        return buffer.getvalue()


def synthesize_trace(
    tenants: int,
    duration_s: float,
    mean_rpm: float,
    apps: Optional[Sequence[str]] = None,
    rate_sigma: float = 1.0,
    size_jitter: float = 0.25,
    input_bytes: Optional[float] = None,
    seed: int = 0,
    name: str = "synthetic",
) -> InvocationTrace:
    """Generate a deterministic multi-tenant trace.

    Each tenant gets a Poisson arrival process whose rate is ``mean_rpm``
    scaled by a lognormal weight (``rate_sigma`` controls the skew — 0
    gives uniform tenants, ~1 reproduces the Azure-trace shape where a
    few tenants dominate), a fixed app drawn round-robin from ``apps``,
    and per-event input sizes jittered around ``input_bytes`` (or the
    app default when ``None``).  Identical arguments always produce an
    identical trace.
    """
    if tenants < 1:
        raise ValueError("tenants must be >= 1")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    rng = random.Random(seed)
    app_cycle = list(apps) if apps else [None]
    events: List[TraceEvent] = []
    for i in range(tenants):
        tenant = f"tenant{i}"
        app = app_cycle[i % len(app_cycle)]
        weight = rng.lognormvariate(0.0, rate_sigma) if rate_sigma > 0 else 1.0
        rate_per_s = mean_rpm * weight / 60.0
        if rate_per_s <= 0:
            continue
        t = rng.expovariate(rate_per_s)
        while t < duration_s:
            size = None
            if input_bytes is not None:
                size = max(1.0, rng.gauss(input_bytes, input_bytes * size_jitter))
            events.append(
                TraceEvent(
                    at_s=t,
                    tenant=tenant,
                    app=app,
                    input_bytes=size,
                    seed=rng.randrange(1 << 16),
                )
            )
            t += rng.expovariate(rate_per_s)
    return InvocationTrace(events=events, name=name)


@dataclass
class TraceRunResult(RunResult):
    """A :class:`RunResult` plus per-tenant and per-workflow breakdowns."""

    tenant_of: Dict[str, str] = field(default_factory=dict)

    def tenant_records(self) -> Dict[str, List[RequestRecord]]:
        grouped: Dict[str, List[RequestRecord]] = {}
        for record in self.records:
            tenant = self.tenant_of.get(record.request_id, "default")
            grouped.setdefault(tenant, []).append(record)
        return grouped

    def tenant_latency(self, tenant: str) -> LatencySummary:
        return LatencySummary.from_records(self.tenant_records()[tenant])

    def workflow_records(self) -> Dict[str, List[RequestRecord]]:
        grouped: Dict[str, List[RequestRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.workflow, []).append(record)
        return grouped

    def to_dict(self) -> dict:
        """The base report plus ``tenants`` and ``workflows`` breakdowns."""
        from ..metrics.report import summary_to_dict

        def breakdown(groups: Dict[str, List[RequestRecord]]) -> dict:
            out = {}
            for key, records in sorted(groups.items()):
                completed = [r for r in records if r.completed]
                out[key] = {
                    "offered": len(records),
                    "completed": len(completed),
                    "latency": (
                        summary_to_dict(LatencySummary.from_records(records))
                        if completed
                        else None
                    ),
                }
            return out

        payload = super().to_dict()
        payload["tenants"] = breakdown(self.tenant_records())
        payload["workflows"] = breakdown(self.workflow_records())
        return payload


def run_trace(
    system: WorkflowSystem,
    trace: InvocationTrace,
    default_app: Optional[str] = None,
    timeout_s: float = DEFAULT_TIMEOUT_S,
    input_bytes: Optional[float] = None,
    fanout: Optional[int] = None,
) -> TraceRunResult:
    """Replay a trace against a system with every workflow pre-deployed.

    Events resolve to registry apps (``event.app`` falling back to
    ``default_app``); missing input sizes and fan-outs fall back to
    ``input_bytes``/``fanout`` and then to the app's defaults.  The
    caller deploys each involved workflow first — the replay raises up
    front if one is missing (or an event has no resolvable app), rather
    than mid-run.
    """
    from ..apps import get_app  # local import: loadgen stays app-agnostic

    env = system.env
    if default_app is None and any(e.app is None for e in trace.events):
        raise ValueError(
            f"trace {trace.name!r} has events naming no app and no "
            f"default_app was given"
        )
    specs = {}
    for app_name in trace.apps() + ([default_app] if default_app else []):
        if app_name and app_name not in specs:
            specs[app_name] = get_app(app_name)
    for app_name, spec in specs.items():
        if spec.workflow_name not in system.deployments:
            raise KeyError(
                f"trace names app {app_name!r} but workflow "
                f"{spec.workflow_name!r} is not deployed on {system.name}"
            )

    run_records: List[RequestRecord] = []
    tenant_of: Dict[str, str] = {}
    guards = []

    def generator():
        start = env.now
        for event in trace.events:
            spec = specs[event.app or default_app]
            delay = start + event.at_s - env.now
            if delay > 0:
                yield env.timeout(delay)
            size = event.input_bytes
            if size is None:
                size = input_bytes if input_bytes is not None else spec.default_input_bytes
            width = event.fanout
            if width is None:
                width = fanout if fanout is not None else spec.default_fanout
            request = RequestSpec(
                request_id=system.next_request_id(spec.workflow_name),
                input_bytes=size,
                fanout=width,
                seed=event.seed,
            )
            record, guard = _guarded_submit(
                system, spec.workflow_name, request, timeout_s
            )
            run_records.append(record)
            tenant_of[record.request_id] = event.tenant
            guards.append(guard)

    producer = env.process(generator())
    env.run(until=producer)
    if guards:
        env.run(until=env.all_of(guards))
    workflows = sorted({r.workflow for r in run_records})
    return TraceRunResult(
        system_name=system.name,
        workflow="+".join(workflows) if workflows else trace.name,
        duration_s=trace.duration_s,
        offered=len(trace),
        records=run_records,
        usage=collect_usage(
            system.cluster, sum(1 for r in run_records if r.completed)
        ),
        tenant_of=tenant_of,
    )
