"""Execution systems: control-flow baselines and the shared interface."""

from .base import (
    Deployment,
    FunctionDispatcher,
    RequestState,
    SystemConfig,
    WorkflowSystem,
)
from .controlflow import ControlFlowConfig, ControlFlowSystem
from .faasflow import FaasFlowConfig, FaasFlowSystem
from .placement import (
    POLICIES,
    get_policy,
    hashed,
    offset_round_robin,
    round_robin,
    single_node,
)
from .production import ProductionConfig, ProductionSystem
from .sonic import SonicConfig, SonicSystem

__all__ = [
    "ControlFlowConfig",
    "ControlFlowSystem",
    "Deployment",
    "FaasFlowConfig",
    "FaasFlowSystem",
    "FunctionDispatcher",
    "POLICIES",
    "ProductionConfig",
    "ProductionSystem",
    "RequestState",
    "SonicConfig",
    "SonicSystem",
    "SystemConfig",
    "WorkflowSystem",
    "get_policy",
    "hashed",
    "offset_round_robin",
    "round_robin",
    "single_node",
]
