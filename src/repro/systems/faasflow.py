"""FaaSFlow baseline (Li et al., ASPLOS 2022): decentralized control flow.

FaaSFlow's WorkerSP pattern moves workflow scheduling onto each worker
node, cutting the cross-node scheduling overhead, and passes data through
*local memory* for functions co-located on one node; cross-node edges still
round-trip through the backend store.  Crucially it remains control-flow:
a function is triggered only after its predecessors complete, inputs are
fetched on trigger, and Get/compute/Put stay sequential — which is exactly
what DataFlower's early triggering and overlap beat (Figures 10–13).

FaaSFlow caches co-located intermediate data in host memory but, without
knowledge of data lifetimes, can only release a request's cache when the
whole request completes — the Figure 14 contrast with DataFlower's
proactive release.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..cluster.node import Node
from ..sim.resources import Resource
from .controlflow import ControlFlowConfig, ControlFlowSystem


@dataclass(frozen=True)
class FaasFlowConfig(ControlFlowConfig):
    #: Decentralized WorkerSP trigger cost (Figure 13: count fires ~15 ms,
    #: merge ~6 ms after predecessor completion).
    trigger_mean_s: float = 0.009
    trigger_jitter_s: float = 0.004


class FaasFlowSystem(ControlFlowSystem):
    """Decentralized control flow with local-memory co-location cache."""

    name = "faasflow"

    def __init__(self, env, cluster, config: FaasFlowConfig = FaasFlowConfig()):
        super().__init__(env, cluster, config)
        self.config: FaasFlowConfig = config
        self._engines: Dict[str, Resource] = {}

    def _orchestrator(self, node: Node) -> Resource:
        if node.name not in self._engines:
            self._engines[node.name] = Resource(self.env, capacity=1)
        return self._engines[node.name]

    # -- data plane -----------------------------------------------------------

    def _is_local(self, deployment, edge) -> bool:
        src_node = deployment.node_of(edge.src.function)
        dst_node = deployment.node_of(edge.dst.function)
        return src_node is dst_node

    def _put_output(self, deployment, state, task, edge, container):
        node = deployment.node_of(task.function)
        if edge.dst is not None and self._is_local(deployment, edge):
            # Local store: copy into the node's memory cache.  The cache
            # entry lives until the whole request completes (no lifetime
            # knowledge under control flow).
            channel = self.cluster.memory_channel(node)
            yield channel.copy(edge.nbytes, label=f"local-put:{edge.dataname}")
            node.cache_usage.add(edge.nbytes)
            self._cache_ledger(state).append((node, edge.nbytes))
        else:
            yield from self._backend_put(state, edge, node, container)

    def _get_input(self, deployment, state, task, edge, container):
        node = deployment.node_of(task.function)
        if self._is_local(deployment, edge):
            channel = self.cluster.memory_channel(node)
            yield channel.copy(edge.nbytes, label=f"local-get:{edge.dataname}")
        else:
            yield from self._backend_get(state, edge, node, container)

    def _cache_ledger(self, state) -> List[Tuple[Node, float]]:
        if not hasattr(state, "faasflow_cache"):
            state.faasflow_cache = []
        return state.faasflow_cache

    def _on_request_complete(self, deployment, state) -> None:
        """Release the request's local-memory cache entries."""
        for node, nbytes in self._cache_ledger(state):
            node.cache_usage.add(-nbytes)
        state.faasflow_cache = []
