"""Function-to-node mapping policies (the paper's load-balancer interface).

DataFlower "does not rely on a specific load balancer [and] exposes an
interface to the upper load balancer for customized function deployment
policies" (§6.1).  The same interface drives the baselines so placement is
never a confound: experiments hand the *same* placement to every system.

A policy is any ``(Workflow, workers) -> {function: Node}`` callable.
Named policies live in :data:`POLICIES` — that registry backs the CLI's
``repro run --placement`` flag and :func:`repro.experiments.common.
make_setup` — while parameterized ones (:func:`offset_round_robin`) are
composed programmatically.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..cluster.node import Node
from ..workflow.model import Workflow

PlacementPolicy = Callable[[Workflow, Sequence[Node]], Dict[str, Node]]


def round_robin(workflow: Workflow, workers: Sequence[Node]) -> Dict[str, Node]:
    """Spread functions across workers in topological order.

    This is the paper's "default function mapping method": deterministic,
    workload-agnostic, and it exercises cross-node data edges.
    """
    if not workers:
        raise ValueError("no workers to place onto")
    order = workflow.topological_order()
    return {name: workers[i % len(workers)] for i, name in enumerate(order)}


def single_node(workflow: Workflow, workers: Sequence[Node]) -> Dict[str, Node]:
    """Force every function onto the first worker (Figure 13 setup)."""
    if not workers:
        raise ValueError("no workers to place onto")
    return {name: workers[0] for name in workflow.functions}


def hashed(workflow: Workflow, workers: Sequence[Node]) -> Dict[str, Node]:
    """Stable hash placement: independent of declaration order."""
    if not workers:
        raise ValueError("no workers to place onto")
    placement = {}
    for name in workflow.functions:
        digest = sum(ord(ch) * (i + 1) for i, ch in enumerate(name))
        placement[name] = workers[digest % len(workers)]
    return placement


def offset_round_robin(offset: int) -> PlacementPolicy:
    """Round-robin starting at ``offset`` — used to spread co-located
    workflows across different workers (Figure 18)."""

    def policy(workflow: Workflow, workers: Sequence[Node]) -> Dict[str, Node]:
        if not workers:
            raise ValueError("no workers to place onto")
        order = workflow.topological_order()
        return {
            name: workers[(i + offset) % len(workers)]
            for i, name in enumerate(order)
        }

    return policy


POLICIES: Dict[str, PlacementPolicy] = {
    "round_robin": round_robin,
    "single_node": single_node,
    "hashed": hashed,
}


def policy_names() -> List[str]:
    """Every placement spec the CLI/profile layer accepts."""
    return list(POLICIES) + ["offset:<n>"]


def get_policy(name: str) -> PlacementPolicy:
    """Resolve a placement spec: a registry name or ``offset:<n>``."""
    kind, sep, arg = name.partition(":")
    if kind == "offset":
        try:
            return offset_round_robin(int(arg) if arg else 0)
        except ValueError:
            raise ValueError(
                f"bad placement policy {name!r}: offset takes an integer"
            ) from None
    if sep:
        raise KeyError(
            f"placement policy {kind!r} takes no ':'-argument "
            f"(got {name!r}); choose from {policy_names()}"
        )
    if kind not in POLICIES:
        raise KeyError(
            f"unknown placement policy {name!r}; choose from {policy_names()}"
        )
    return POLICIES[kind]
