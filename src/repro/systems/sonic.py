"""SONIC baseline (Mahgoub et al., ATC 2021): source-side data passing.

As the paper implements it (§9.1): the backend store is replaced with
storage local to the *source function* — "the data to be transferred is
persisted in the host, and then each destination function container builds
a peer-to-peer connection with the source storage to fetch data in
parallel".  Two properties follow directly from §9.2's analysis and drive
SONIC's behaviour in the evaluation:

* **Container-capped transfers** — "the limited bandwidth of each
  container results in a long data transfer time": the p2p fetch crosses
  the source container's TC-limited NIC, so fan-out children share one
  source container's bandwidth.
* **Source sandboxes held until consumption** — the data lives with the
  source function, so its sandbox cannot be released until every
  destination has fetched; under scaled-out parallel invocations this
  inflates memory usage and starves pools, which is why svd collapses at
  >= 20 closed-loop clients (Figure 11(c)) and why SONIC "can only
  optimize the data transfer of a single workflow invocation".

SONIC also keeps control-flow semantics: function state goes through
local VM storage (slower triggering than FaaSFlow, Figure 13), inputs are
fetched on trigger, and Get/compute/Put stay sequential.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..cluster.node import Node
from ..sim.resources import Resource
from .controlflow import ControlFlowConfig, ControlFlowSystem


@dataclass(frozen=True)
class SonicConfig(ControlFlowConfig):
    #: Function state is exchanged through local VM storage, which makes
    #: triggering slower than FaaSFlow's in-memory WorkerSP (Figure 13).
    trigger_mean_s: float = 0.022
    trigger_jitter_s: float = 0.006
    #: Round-trip to establish the p2p connection to the source host.
    p2p_setup_s: float = 0.002
    #: Safety cap on how long a source sandbox waits for its consumers
    #: before being released anyway (prevents leaks on failed requests).
    hold_cap_s: float = 90.0


class SonicSystem(ControlFlowSystem):
    """Control flow with source-local persistence and p2p fetch."""

    name = "sonic"

    def __init__(self, env, cluster, config: SonicConfig = SonicConfig()):
        super().__init__(env, cluster, config)
        self.config: SonicConfig = config
        self._engines: Dict[str, Resource] = {}

    def _orchestrator(self, node: Node) -> Resource:
        if node.name not in self._engines:
            self._engines[node.name] = Resource(self.env, capacity=1)
        return self._engines[node.name]

    # -- per-request source bookkeeping -----------------------------------------

    def _sources(self, state) -> Dict:
        if not hasattr(state, "sonic_sources"):
            state.sonic_sources = {}
        return state.sonic_sources

    def _fetched_events(self, state) -> Dict:
        if not hasattr(state, "sonic_fetched"):
            state.sonic_fetched = {}
        return state.sonic_fetched

    # -- data plane -----------------------------------------------------------

    def _put_output(self, deployment, state, task, edge, container):
        node = deployment.node_of(task.function)
        if edge.dst is None:
            # Final results still return through the backend store.
            yield from self._backend_put(state, edge, node, container)
            return
        # Persist in the source sandbox's VM storage; destinations fetch p2p.
        self._sources(state)[edge.key] = (container, node)
        self._fetched_events(state)[edge.key] = self.env.event()
        yield node.disk.write(edge.nbytes, label=f"sonic-put:{edge.dataname}")

    def _get_input(self, deployment, state, task, edge, container):
        src_container, src_node = self._sources(state)[edge.key]
        dst_node = deployment.node_of(task.function)
        if self.config.p2p_setup_s > 0:
            yield self.env.timeout(self.config.p2p_setup_s)
        if src_node is dst_node:
            # Same host: read from the local VM storage.
            yield src_node.disk.read(edge.nbytes, label=f"sonic-get:{edge.dataname}")
        else:
            # P2p fetch crossing the *source container's* TC-limited NIC —
            # fan-out children share one source sandbox's bandwidth.
            links = [
                src_node.disk.read_link,
                src_container.egress,
                src_node.egress,
                dst_node.ingress,
                container.ingress,
            ]
            flow = self.cluster.fabric.transfer(
                edge.nbytes,
                links,
                rate_cap=container.spec.net_bytes_per_s,
                label=f"sonic-p2p:{edge.dataname}",
            )
            yield flow.done
        fetched = self._fetched_events(state)[edge.key]
        if not fetched.triggered:
            fetched.succeed()

    def _release_container(self, deployment, state, task, container) -> None:
        """Hold the source sandbox until every consumer has fetched."""
        waiting = [
            self._fetched_events(state)[edge.key]
            for edge in task.outputs
            if edge.dst is not None and edge.key in self._fetched_events(state)
        ]
        dispatcher = deployment.dispatcher(task.function)
        if not waiting:
            dispatcher.release(container)
            return

        def hold():
            yield self.env.all_of(waiting) | self.env.timeout(self.config.hold_cap_s)
            if container.alive:
                dispatcher.release(container)

        self.env.process(hold())
