"""Production-style serverless workflow platform (paper §3.2 study).

Models the common shape of AWS Step Functions / Azure Durable Functions /
Alibaba Serverless Workflow as characterized in Figure 2: a *centralized*
orchestrator (state machine) on the control node triggers functions in
topological order at ~63 ms of state management per transition, and every
intermediate datum round-trips through the backend store.

Also provides the Figure 19 "state machine" mode for stateful functions:
instead of the backend store, outputs are shipped to the orchestrator node
as a context object and forwarded to the next function from there —
unlimited-size stateful data passing, still two network hops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..cluster.node import Node
from ..sim.resources import Resource
from .controlflow import ControlFlowConfig, ControlFlowSystem


@dataclass(frozen=True)
class ProductionConfig(ControlFlowConfig):
    #: Figure 2(c): ~63 ms average state-management overhead per trigger.
    trigger_mean_s: float = 0.063
    trigger_jitter_s: float = 0.018
    #: Figure 19 mode: pass data through the orchestrator's context object
    #: (state machine on EC2 with unlimited cache) instead of the backend.
    state_machine_data: bool = False


class ProductionSystem(ControlFlowSystem):
    """Centralized control-flow orchestration with backend persistence."""

    name = "production"

    def __init__(self, env, cluster, config: ProductionConfig = ProductionConfig()):
        super().__init__(env, cluster, config)
        self.config: ProductionConfig = config
        #: One state machine for the whole cluster, on the gateway node.
        self._central = Resource(env, capacity=1)

    def _orchestrator(self, node: Node) -> Resource:
        return self._central

    def _get_input(self, deployment, state, task, edge, container):
        node = deployment.node_of(task.function)
        if self.config.state_machine_data:
            yield from self._context_get(state, edge, node, container)
        else:
            yield from self._backend_get(state, edge, node, container)

    def _put_output(self, deployment, state, task, edge, container):
        node = deployment.node_of(task.function)
        if self.config.state_machine_data:
            yield from self._context_put(state, edge, node, container)
        else:
            yield from self._backend_put(state, edge, node, container)

    # -- Figure 19: state-machine context-object data passing --------------------

    def _context_put(self, state, edge, node: Node, container):
        """Ship the output to the orchestrator's context object."""
        gateway = self.cluster.gateway
        flow = self.cluster.fabric.transfer(
            edge.nbytes,
            [container.egress, node.egress, gateway.ingress],
            rate_cap=container.spec.net_bytes_per_s,
            label=f"ctx-put:{edge.dataname}",
        )
        yield flow.done

    def _context_get(self, state, edge, node: Node, container):
        """Receive the context object from the orchestrator."""
        gateway = self.cluster.gateway
        flow = self.cluster.fabric.transfer(
            edge.nbytes,
            [gateway.egress, node.ingress, container.ingress],
            rate_cap=container.spec.net_bytes_per_s,
            label=f"ctx-get:{edge.dataname}",
        )
        yield flow.done
