"""The control-flow execution template (paper §3.2, Figure 1).

All three baselines (production orchestrator, FaaSFlow, SONIC) share the
same skeleton — only the trigger path and the data-passing strategy differ:

1. The orchestrator maintains function states; a function becomes *ready*
   when every predecessor has **completed** (control dependency — not data
   availability).
2. Triggering costs state-management time and serializes through the
   orchestrator (centralized) or the per-node engine (decentralized).
3. The container executes strictly sequentially: ``Get()`` inputs, compute,
   ``Put()`` outputs.  CPU idles during I/O and the network idles during
   compute — the sequential resource usage of Figure 2(b).
4. One invocation per container at a time; extra load scales out containers.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..cluster.container import Container
from ..cluster.node import Node
from ..sim.resources import Resource
from ..workflow.instance import Task, TaskEdge
from .base import Deployment, RequestState, SystemConfig, WorkflowSystem

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment


@dataclass(frozen=True)
class ControlFlowConfig(SystemConfig):
    """Adds control-plane triggering costs to the shared config."""

    #: Mean state-management time between a function's readiness and its
    #: actual trigger (Figure 2(c) measures ~63 ms on production platforms).
    trigger_mean_s: float = 0.010
    trigger_jitter_s: float = 0.002


class ControlFlowSystem(WorkflowSystem):
    """Template-method base for the control-flow baselines."""

    name = "controlflow"

    def __init__(self, env, cluster, config: ControlFlowConfig = ControlFlowConfig()):
        super().__init__(env, cluster, config)
        self.config: ControlFlowConfig = config
        self._orchestrators: Dict[str, Resource] = {}

    # -- specialization points ------------------------------------------------

    @abc.abstractmethod
    def _orchestrator(self, node: Node) -> Resource:
        """The control-plane resource that serializes triggers."""

    @abc.abstractmethod
    def _get_input(self, deployment, state, task, edge, container):
        """Process generator fetching one input edge into the container."""

    @abc.abstractmethod
    def _put_output(self, deployment, state, task, edge, container):
        """Process generator persisting/forwarding one output edge."""

    def _get_user_input(self, deployment, state, task, container):
        """Fetch the request's input into the entry container.

        Default: the user uploaded the input to backend storage; the entry
        function Gets it through its bandwidth-capped container NIC.  With
        ``config.input_local`` the input is already on-node (Figure 13).
        """
        nbytes = state.graph.request.input_bytes
        node = deployment.node_of(task.function)
        if self.config.input_local:
            channel = self.cluster.memory_channel(node)
            yield channel.copy(nbytes, label="input-local")
            return
        key = (state.record.request_id, "$input")
        yield self.cluster.storage.get(
            key,
            via=[node.ingress, container.ingress],
            rate_cap=container.spec.net_bytes_per_s,
            nbytes=nbytes,
        )

    def _on_request_complete(self, deployment, state) -> None:
        """Hook for request-scoped cleanup (FaaSFlow's cache release)."""

    def _release_container(self, deployment, state, task, container) -> None:
        """Return the container to its pool after an invocation.

        SONIC overrides this: the source function's sandbox holds its
        output data until every destination has fetched it peer-to-peer.
        """
        deployment.dispatcher(task.function).release(container)

    # -- the control-flow engine ------------------------------------------------

    def _execute_request(self, deployment: Deployment, state: RequestState, finish):
        graph = state.graph
        pending: Dict[str, int] = {}
        for task in graph.tasks:
            pending[task.task_id] = len(
                {edge.src.task_id for edge in task.inputs}
            )
        state.pending_preds = pending  # type: ignore[attr-defined]
        for task in graph.tasks:
            if pending[task.task_id] == 0:
                self._schedule_task(deployment, state, task, finish)

    def _trigger_cost(self) -> float:
        rng = self.rng.stream("trigger")
        jitter = rng.gauss(0.0, self.config.trigger_jitter_s)
        return max(self.config.trigger_mean_s + jitter, 0.0005)

    def _schedule_task(self, deployment, state, task: Task, finish) -> None:
        record = state.task_record(task.task_id)
        record.ready_time = self.env.now
        node = deployment.node_of(task.function)
        record.node = node.name
        orchestrator = self._orchestrator(node)

        def trigger():
            # The orchestrator updates its state machine and triggers the
            # function in topological order; triggers serialize through it.
            with orchestrator.request() as slot:
                yield slot
                yield self.env.timeout(self._trigger_cost())
            record.trigger_time = self.env.now
            dispatcher = deployment.dispatcher(task.function)
            dispatcher.submit(
                lambda container: self.env.process(
                    self._run_on_container(
                        deployment, state, task, container, finish
                    )
                )
            )

        self.env.process(trigger())

    def _run_on_container(
        self, deployment, state, task: Task, container: Container, finish
    ):
        record = state.task_record(task.task_id)
        record.exec_start = self.env.now
        record.cold_start = container.invocations_served == 0

        # Phase 1: Get() — load every input from the data plane.
        get_start = self.env.now
        gets = []
        if task.is_entry:
            gets.append(
                self.env.process(
                    self._get_user_input(deployment, state, task, container)
                )
            )
        for edge in task.inputs:
            gets.append(
                self.env.process(
                    self._get_input(deployment, state, task, edge, container)
                )
            )
        if gets:
            yield self.env.all_of(gets)
        record.get_s = self.env.now - get_start
        if record.get_s > 0:
            container.record_transfer(get_start, self.env.now)

        # Phase 2: compute.
        compute_start = self.env.now
        function = deployment.workflow.functions[task.function]
        core_seconds = function.profile.compute.core_seconds(
            task.input_bytes, self.rng.stream(f"compute:{task.function}")
        )
        yield self.env.process(container.compute(core_seconds))
        record.compute_s = self.env.now - compute_start

        # Phase 3: Put() — persist every output before completion.
        put_start = self.env.now
        puts = [
            self.env.process(
                self._put_output(deployment, state, task, edge, container)
            )
            for edge in task.outputs
        ]
        if puts:
            yield self.env.all_of(puts)
        record.put_s = self.env.now - put_start
        if record.put_s > 0:
            container.record_transfer(put_start, self.env.now)
        record.exec_end = self.env.now

        self._release_container(deployment, state, task, container)
        self._complete_task(deployment, state, task, finish)

    def _complete_task(self, deployment, state, task: Task, finish) -> None:
        state.remaining_tasks -= 1
        seen = set()
        for edge in task.outputs:
            if edge.dst is None or edge.dst.task_id in seen:
                continue
            seen.add(edge.dst.task_id)
            state.pending_preds[edge.dst.task_id] -= 1
            if state.pending_preds[edge.dst.task_id] == 0:
                self._schedule_task(deployment, state, edge.dst, finish)
        if state.remaining_tasks == 0:
            self._on_request_complete(deployment, state)
            finish()

    # -- shared data-plane helpers -------------------------------------------------

    def _edge_key(self, state, edge: TaskEdge) -> Tuple:
        return (state.record.request_id, edge.src.task_id, edge.dataname)

    def _backend_put(self, state, edge, node, container):
        yield self.cluster.storage.put(
            self._edge_key(state, edge),
            edge.nbytes,
            via=[container.egress, node.egress],
            rate_cap=container.spec.net_bytes_per_s,
        )

    def _backend_get(self, state, edge, node, container):
        yield self.cluster.storage.get(
            self._edge_key(state, edge),
            via=[node.ingress, container.ingress],
            rate_cap=container.spec.net_bytes_per_s,
        )
