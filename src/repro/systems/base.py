"""Execution-system interface shared by the baselines and DataFlower.

A :class:`WorkflowSystem` owns deployments (one per workflow), dispatches
invocations onto container pools, and produces
:class:`~repro.metrics.latency.RequestRecord`s.  The control-flow baselines
and DataFlower subclass it, so every experiment drives all systems through
the same three calls::

    system.deploy(workflow, placement)
    done = system.submit(workflow.name, request)   # Event -> RequestRecord
    env.run(until=done)
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional

from ..cluster.cluster import Cluster
from ..cluster.container import Container, ContainerPool
from ..cluster.node import InsufficientResources, Node
from ..cluster.spec import ContainerSpec
from ..metrics.latency import RequestRecord, TaskRecord
from ..sim.resources import Store
from ..sim.rng import RngRegistry
from ..workflow.instance import RequestSpec, TaskGraph
from ..workflow.model import Workflow

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment
    from ..sim.events import Event


@dataclass(frozen=True)
class SystemConfig:
    """Knobs shared by all systems (per-system configs extend this)."""

    #: Container image pull + runtime boot time for a cold invocation.
    cold_start_s: float = 0.5
    #: Language-runtime / dependency initialization on first use of a
    #: freshly booted container (paid after ``cold_start_s``).
    env_setup_s: float = 0.3
    #: Idle time before a warm container is recycled (platform keep-alive).
    keep_alive_s: float = 900.0
    #: Override every function's container memory (Figure 17 scale-up sweep).
    container_memory_mb: Optional[int] = None
    #: Entry input is already resident on the entry node (Figure 13 setup).
    input_local: bool = False
    #: Root seed for every RNG stream the system draws (jitter, selectors).
    seed: int = 0

    def with_overrides(self, **kwargs) -> "SystemConfig":
        return replace(self, **kwargs)


class Deployment:
    """One workflow deployed onto the cluster: placement plus pools."""

    def __init__(
        self,
        system: "WorkflowSystem",
        workflow: Workflow,
        placement: Dict[str, Node],
    ) -> None:
        missing = set(workflow.functions) - set(placement)
        if missing:
            raise ValueError(f"placement missing functions: {sorted(missing)}")
        self.workflow = workflow
        self.placement = placement
        self.dispatchers: Dict[str, FunctionDispatcher] = {}
        for name, function in workflow.functions.items():
            memory_mb = (
                system.config.container_memory_mb
                if system.config.container_memory_mb is not None
                else function.profile.memory_mb
            )
            spec = ContainerSpec(memory_mb=memory_mb)
            pool = ContainerPool(
                system.env,
                placement[name],
                function_name=name,
                spec=spec,
                cold_start_s=system.config.cold_start_s,
                env_setup_s=system.config.env_setup_s,
                keep_alive_s=system.config.keep_alive_s,
                recycle_guard=system.recycle_guard,
            )
            self.dispatchers[name] = FunctionDispatcher(system.env, pool)

    def node_of(self, function: str) -> Node:
        return self.placement[function]

    def dispatcher(self, function: str) -> "FunctionDispatcher":
        return self.dispatchers[function]


class FunctionDispatcher:
    """Matches pending invocations with containers for one function/node.

    Containers flow through an idle store; work items queue FIFO.  Demand
    beyond warm supply cold-starts new containers up to the node's
    admission limit — the "serverless manner" of scaling out.  DataFlower's
    pressure-aware mechanism delays a container's return to the idle store
    (the Callstack blocking signal) and nudges the scale-out path.
    """

    def __init__(self, env: "Environment", pool: ContainerPool) -> None:
        self.env = env
        self.pool = pool
        self.work: Store = Store(env)
        self.idle: Store = Store(env)
        self.booting = 0
        self.dispatched = 0
        #: Invocations submitted but not yet matched with a container.
        self.unassigned = 0
        env.process(self._loop())

    # -- client API ---------------------------------------------------------

    def submit(self, run_callable) -> None:
        """Queue an invocation; ``run_callable(container)`` starts it."""
        self.unassigned += 1
        self.work.put(run_callable)
        self.maybe_scale_out()

    def release(self, container: Container, delay_s: float = 0.0) -> None:
        """Return a container after an invocation (optionally blocked).

        ``delay_s > 0`` models the pressure-aware Callstack blocking signal:
        the FLU stays unavailable for that long.
        """
        self.pool.checkin(container)
        if delay_s <= 0:
            self.idle.put(container)
            return

        def delayed():
            yield self.env.timeout(delay_s)
            if container.alive:
                self.idle.put(container)

        self.env.process(delayed())

    def maybe_scale_out(self) -> None:
        """Cold-start a container when demand outstrips warm supply."""
        supply = (
            sum(1 for c in self.idle.items if c.alive) + self.booting
        )
        while self.unassigned > supply:
            if not self.pool.can_start_new():
                # Under pressure, reclaim idle capacity held by other
                # functions' warm pools on this node (LRU eviction).
                fits = self.pool.node.try_reclaim(
                    self.pool.spec.cpu_cores,
                    self.pool.spec.memory_bytes,
                    exclude_pool=self.pool,
                )
                if not fits:
                    break
            self.booting += 1
            ready = self.pool.start_new()

            def on_ready(event, self=self):
                self.booting -= 1
                self.idle.put(event.value)

            if ready.callbacks is not None:
                ready.callbacks.append(on_ready)
            supply += 1

    # -- internal -----------------------------------------------------------

    def _loop(self):
        while True:
            run_callable = yield self.work.get()
            container = None
            while container is None:
                candidate = yield self.idle.get()
                if candidate.alive:
                    container = candidate
                else:
                    # A recycled container was still queued here; the
                    # supply it represented is gone, so re-evaluate.
                    self.maybe_scale_out()
            self.pool.checkout(container)
            self.unassigned -= 1
            self.dispatched += 1
            run_callable(container)


class RequestState:
    """Book-keeping for one in-flight request inside a system."""

    def __init__(self, graph: TaskGraph, record: RequestRecord) -> None:
        self.graph = graph
        self.record = record
        self.remaining_tasks = len(graph.tasks)
        self.task_records: Dict[str, TaskRecord] = {}
        for task in graph.tasks:
            task_record = TaskRecord(task_id=task.task_id, function=task.function)
            self.task_records[task.task_id] = task_record
            record.tasks.append(task_record)

    def task_record(self, task_id: str) -> TaskRecord:
        return self.task_records[task_id]


class WorkflowSystem(abc.ABC):
    """Common mechanics: deployment, request records, completion events."""

    name = "abstract"

    def __init__(
        self, env: "Environment", cluster: Cluster, config: SystemConfig = SystemConfig()
    ) -> None:
        self.env = env
        self.cluster = cluster
        self.config = config
        self.rng = RngRegistry(config.seed)
        self.deployments: Dict[str, Deployment] = {}
        self.records: List[RequestRecord] = []
        self._request_seq = 0
        #: Prepended to generated request ids; sharded replay sets it per
        #: shard cell so ids stay unique after merging.
        self.request_id_prefix = ""

    # -- hooks ---------------------------------------------------------------

    def recycle_guard(self, container: Container) -> bool:
        """Whether an idle container may be recycled (overridden by DataFlower)."""
        return True

    # -- deployment ---------------------------------------------------------------

    def deploy(self, workflow: Workflow, placement: Dict[str, Node]) -> Deployment:
        if workflow.name in self.deployments:
            raise ValueError(f"workflow {workflow.name!r} is already deployed")
        deployment = Deployment(self, workflow, placement)
        self.deployments[workflow.name] = deployment
        return deployment

    def deployment(self, workflow_name: str) -> Deployment:
        if workflow_name not in self.deployments:
            raise KeyError(
                f"workflow {workflow_name!r} not deployed on {self.name}"
            )
        return self.deployments[workflow_name]

    # -- submission ------------------------------------------------------------------

    def next_request_id(self, workflow_name: str) -> str:
        self._request_seq += 1
        return f"{self.request_id_prefix}{workflow_name}-r{self._request_seq}"

    def submit(self, workflow_name: str, request: RequestSpec) -> "Event":
        """Run one invocation; the returned event fires with its record."""
        deployment = self.deployment(workflow_name)
        graph = TaskGraph(deployment.workflow, request)
        record = RequestRecord(
            request_id=request.request_id,
            workflow=workflow_name,
            submit_time=self.env.now,
        )
        self.records.append(record)
        state = RequestState(graph, record)
        done = self.env.event()

        def finish(failed: bool = False, error: Optional[str] = None) -> None:
            # A runner-side timeout may have closed the record already.
            if record.end_time is None:
                record.end_time = self.env.now
                record.failed = failed
                record.error = error
            done.succeed(record)

        self._execute_request(deployment, state, finish)
        return done

    @abc.abstractmethod
    def _execute_request(self, deployment, state, finish) -> None:
        """Start the system-specific execution of one request."""

    # -- results ----------------------------------------------------------------------

    def completed_records(self) -> List[RequestRecord]:
        return [r for r in self.records if r.completed]

    def __repr__(self) -> str:
        return f"<{type(self).__name__} deployments={list(self.deployments)}>"
