"""``repro worker`` — a remote cell-replay worker (stdlib HTTP loop).

One worker process serves one control plane (``repro serve``).  The
loop is deliberately boring:

1. **Register** — ``POST /v1/workers`` returns a worker id, a
   per-worker ``secret`` every later call must echo (the control
   plane answers 403 otherwise), and the fleet's timing contract
   (lease and heartbeat timeouts).
2. **Long-poll** — ``POST /v1/cells/lease`` blocks server-side up to
   ``wait_s`` for a cell; a 204 means "nothing to do, ask again".
   Every poll refreshes the worker's liveness, and a background
   heartbeat thread covers the gap while a long cell replay is
   running.
3. **Execute** — the grant carries the run's validated ``POST
   /v1/runs`` body verbatim; the worker re-validates it through the
   same :func:`~repro.serve.validation.parse_run_request` the control
   plane used, re-derives the cell sub-trace with the same shard
   policy, and replays it via the engine's resilient per-attempt entry
   point.  ``cell_seed`` is a pure function of (spec, cell), so the
   result is byte-identical no matter which worker runs it, how many
   times, or in what order.
4. **Report** — ``POST /v1/cells/<lease>/result`` delivers the
   :meth:`~repro.parallel.engine.CellResult.to_payload` round-trip, or
   a classified ``error`` (the control plane charges the attempt and
   requeues within the retry budget).  A 409 means the lease expired
   while we were working — the cell was already re-leased, so the
   outcome is dropped and the loop moves on (exactly-once folding is
   the control plane's invariant, not ours).

Injected ``kill`` faults degrade to
:class:`~repro.parallel.resilience.WorkerCrashError` here: the fault
plan is re-parsed from the run payload inside this process, so the
plan's parent-pid guard sees its own pid and raises instead of
SIGKILLing — remote runs exercise the deterministic retry path without
fault plans killing fleet members.  *Real* worker death (the chaos
harness's SIGKILL, an OOM kill) is what the lease deadline exists for.

See ``docs/workers.md`` for the protocol and a deployment walkthrough.
"""

from __future__ import annotations

import json
import signal
import threading
import urllib.error
import urllib.request
from typing import Optional

from .metrics.report import render_json
from .parallel.engine import _failure_message, _replay_cell_task
from .parallel.policy import get_shard_policy
from .parallel.resilience import RetryPolicy, classify_failure
from .serve.validation import parse_run_request

__all__ = ["WorkerError", "run_worker"]

#: Server-side long-poll length we ask for; bounded by the server's own
#: MAX_LEASE_WAIT_S cap either way.
DEFAULT_POLL_S = 20.0

#: Consecutive transport failures tolerated before the worker exits
#: non-zero (the control plane is gone, not busy).
MAX_TRANSPORT_FAILURES = 5


class WorkerError(RuntimeError):
    """The worker cannot continue (control plane unreachable or hostile)."""


class _Client:
    """Tiny urllib wrapper: JSON in/out, status-aware."""

    def __init__(self, base_url: str) -> None:
        self.base_url = base_url.rstrip("/")

    def post(
        self, path: str, payload: dict, timeout_s: float = 60.0
    ) -> tuple:
        """(status, parsed body or None) for one POST."""
        body = render_json(payload).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout_s) as resp:
                raw = resp.read()
                status = resp.status
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            status = exc.code
        if not raw:
            return status, None
        try:
            return status, json.loads(raw)
        except json.JSONDecodeError:
            return status, None


class _Heartbeat(threading.Thread):
    """Keep the worker live while a long cell replay blocks the loop."""

    def __init__(
        self, client: _Client, worker_id: str, secret: str, interval_s: float
    ) -> None:
        super().__init__(name="repro-worker-heartbeat", daemon=True)
        self.client = client
        self.worker_id = worker_id
        self.secret = secret
        self.interval_s = interval_s
        self.stop_event = threading.Event()

    def run(self) -> None:
        while not self.stop_event.wait(self.interval_s):
            try:
                self.client.post(
                    f"/v1/workers/{self.worker_id}/heartbeat",
                    {"secret": self.secret},
                    timeout_s=10.0,
                )
            except OSError:
                # Transient transport trouble; the main loop's poll is
                # the authoritative liveness/exit signal.
                pass


def _execute_grant(grant: dict) -> dict:
    """Replay one leased cell; returns the result-POST body fields.

    Any exception the replay raises — injected faults included —
    classifies into the deterministic failure taxonomy and reports as
    an ``error`` outcome; the control plane owns the retry budget.
    """
    try:
        request = parse_run_request(grant["request"])
        key = grant["cell"]
        cells = dict(get_shard_policy("tenant").split(request.trace))
        if key not in cells:
            raise KeyError(
                f"cell {key!r} is not a cell of the leased run's trace"
            )
        result = _replay_cell_task(
            request.spec,
            key,
            cells[key],
            int(grant.get("attempt", 1)),
            request.retry if request.retry is not None else RetryPolicy(),
            request.faults,
            # The lease deadline clock started at grant time: a backoff
            # sleep here would burn lease budget (and with a short
            # --lease-timeout-s could expire *every* retry before its
            # result lands).  The requeue round-trip through the
            # control plane already spaced the attempts.
            backoff=False,
        )
        return {"result": result.to_payload()}
    except Exception as exc:  # noqa: BLE001 - classified, never fatal
        return {
            "error": {
                "kind": classify_failure(exc),
                "message": _failure_message(exc),
            }
        }


def run_worker(
    server: str,
    name: Optional[str] = None,
    poll_s: float = DEFAULT_POLL_S,
    max_cells: Optional[int] = None,
    quiet: bool = False,
) -> int:
    """The ``repro worker`` loop; returns a process exit code.

    ``max_cells`` bounds how many cells this worker executes before
    exiting cleanly (tests and drain-style deployments); ``None`` runs
    until SIGTERM/SIGINT.
    """
    client = _Client(server)
    stop = threading.Event()

    def _graceful(signum, frame):  # noqa: ARG001 - signal API
        stop.set()

    try:
        signal.signal(signal.SIGTERM, _graceful)
        signal.signal(signal.SIGINT, _graceful)
    except ValueError:
        pass  # not the main thread (embedded in tests)

    def _register() -> tuple:
        status, body = client.post(
            "/v1/workers", {} if name is None else {"name": name},
            timeout_s=10.0,
        )
        if status != 200 or not isinstance(body, dict):
            raise WorkerError(
                f"registration failed: HTTP {status} from {server}"
            )
        return (
            body["worker"],
            str(body.get("secret", "")),
            float(body["heartbeat_timeout_s"]),
        )

    try:
        worker_id, secret, heartbeat_timeout_s = _register()
    except (OSError, WorkerError) as exc:
        print(f"repro worker: {exc}", flush=True)
        return 1
    if not quiet:
        print(f"repro worker {worker_id} serving {server}", flush=True)
    heartbeat = _Heartbeat(
        client, worker_id, secret,
        interval_s=max(0.5, heartbeat_timeout_s / 3.0),
    )
    heartbeat.start()
    executed = 0
    transport_failures = 0
    try:
        while not stop.is_set():
            if max_cells is not None and executed >= max_cells:
                break
            try:
                status, grant = client.post(
                    "/v1/cells/lease",
                    {"worker": worker_id, "secret": secret,
                     "wait_s": poll_s},
                    timeout_s=poll_s + 30.0,
                )
            except OSError:
                transport_failures += 1
                if transport_failures >= MAX_TRANSPORT_FAILURES:
                    print(
                        f"repro worker {worker_id}: control plane "
                        f"unreachable at {server}; giving up",
                        flush=True,
                    )
                    return 1
                if stop.wait(min(2.0 ** transport_failures * 0.1, 2.0)):
                    break
                continue
            transport_failures = 0
            if status == 404:
                # Evicted (e.g. a long pause outlived the heartbeat
                # window): re-register and carry on.
                try:
                    worker_id, secret, _ = _register()
                    heartbeat.worker_id = worker_id
                    heartbeat.secret = secret
                    if not quiet:
                        print(
                            f"repro worker re-registered as {worker_id}",
                            flush=True,
                        )
                except (OSError, WorkerError) as exc:
                    print(f"repro worker: {exc}", flush=True)
                    return 1
                continue
            if status != 200 or not isinstance(grant, dict):
                continue  # 204: nothing to do yet
            outcome = _execute_grant(grant)
            executed += 1
            if not quiet:
                verdict = "ok" if "result" in outcome else (
                    outcome["error"]["kind"]
                )
                print(
                    f"repro worker {worker_id}: cell {grant['cell']!r} "
                    f"attempt {grant.get('attempt', 1)} -> {verdict}",
                    flush=True,
                )
            body = {"worker": worker_id, "secret": secret}
            body.update(outcome)
            try:
                status, ack = client.post(
                    f"/v1/cells/{grant['lease']}/result", body,
                    timeout_s=60.0,
                )
            except OSError:
                continue  # lease will expire; the cell re-leases
            if status == 409 and not quiet:
                # The lease expired while we replayed: the cell was
                # re-leased elsewhere and our outcome is dropped.
                print(
                    f"repro worker {worker_id}: lease for "
                    f"{grant['cell']!r} expired before the result landed",
                    flush=True,
                )
    finally:
        heartbeat.stop_event.set()
    if not quiet:
        print(
            f"repro worker {worker_id} exiting ({executed} cell(s) "
            f"executed)",
            flush=True,
        )
    return 0
