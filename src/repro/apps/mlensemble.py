"""ML-inference ensemble (ml_ensemble): preprocess -> N models -> vote.

A serving pattern the paper's four benchmarks do not cover: one request
fans the same preprocessed features out to an ensemble of model replicas
(FOREACH), each replica runs a heavyweight inference pass, and a cheap
majority-vote reducer merges the per-model verdicts (MERGE).  Compute
dominates inside the models while the fan-out/fan-in edges stay small, so
the app sits between img (linear, compute-bound) and wc
(communication-bound) on the Figure 2(a) spectrum — a useful probe for
pressure-aware scaling under wide fan-outs.

The definition is written in the Figure-7 DSL to exercise the production
parsing path end to end, like :mod:`repro.apps.wordcount`.
"""

from __future__ import annotations

from ..cluster.telemetry import MB
from ..workflow.dsl import parse_workflow
from ..workflow.model import Workflow

#: Default request input size (one image / feature batch).
DEFAULT_INPUT_BYTES = 2 * MB
#: Default ensemble width (number of model replicas voted over).
DEFAULT_FANOUT = 3

_DSL = """
workflow_name: ml_ensemble
dataflows:
  ens_preprocess:
    memory_mb: 512
    compute: base=0.04 per_mb=0.020
    output: ratio=0.9
    first_output_at: 0.3
    input_datas:
      source: $USER.input
    output_datas:
      features:
        type: FOREACH
        destination: ens_model
  ens_model:
    memory_mb: 1024
    compute: base=0.25 per_mb=0.080
    output: fixed=32KB
    first_output_at: 0.7
    input_datas:
      source: ens_preprocess.features
    output_datas:
      verdict:
        type: MERGE
        destination: ens_vote
  ens_vote:
    memory_mb: 256
    compute: base=0.02 per_mb=0.004
    output: fixed=16KB
    input_datas:
      source: ens_model.verdict
    output_datas:
      output:
        type: NORMAL
        destination: $USER
entry: ens_preprocess
"""


def build() -> Workflow:
    """The ml_ensemble workflow (preprocess -> model xN -> vote)."""
    workflow = parse_workflow(_DSL)
    workflow.default_fanout = DEFAULT_FANOUT
    return workflow
