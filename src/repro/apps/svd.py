"""Singular Value Decomposition (svd): parallel numeric factorization.

Structure (after WISEFUSE, which the paper uses as the benchmark source):
``split`` partitions the input matrix (FOREACH), ``factorize`` computes a
partial decomposition per block, ``merge`` combines the factors.
Communication is ~35.3% of end-to-end latency on a control-flow platform
(Figure 2(a)).  svd is the benchmark that *fails* under SONIC with >= 20
closed-loop clients (Figure 11(c)) because SONIC's data passing cannot
absorb the transfer load of many parallel scaled-out containers.
"""

from __future__ import annotations

from ..cluster.telemetry import MB
from ..workflow.model import EdgeKind, Workflow
from ..workflow.profiles import ComputeModel, OutputModel
from ..workflow.validation import validate

DEFAULT_INPUT_BYTES = 12 * MB
DEFAULT_FANOUT = 3


def build() -> Workflow:
    """The svd workflow (split -> factorize xN -> merge)."""
    workflow = Workflow("svd")
    workflow.default_fanout = DEFAULT_FANOUT

    workflow.add_function(
        "svd_split",
        compute=ComputeModel(base_core_s=0.04, per_input_mb_core_s=0.015),
        output=OutputModel(input_ratio=1.0),
        memory_mb=1024,
        first_output_at=0.2,
    )
    workflow.add_function(
        "svd_factorize",
        compute=ComputeModel(base_core_s=0.30, per_input_mb_core_s=0.180),
        output=OutputModel(input_ratio=0.5),
        memory_mb=1024,
        first_output_at=0.5,
    )
    workflow.add_function(
        "svd_merge",
        compute=ComputeModel(base_core_s=0.10, per_input_mb_core_s=0.040),
        output=OutputModel(input_ratio=0.6),
        memory_mb=1024,
        first_output_at=0.5,
    )

    workflow.connect("svd_split", "svd_factorize", EdgeKind.FOREACH, "blocks")
    workflow.connect("svd_factorize", "svd_merge", EdgeKind.MERGE, "factors")
    workflow.connect("svd_merge", "$USER", EdgeKind.NORMAL, "result")
    workflow.entry = "svd_split"
    validate(workflow)
    return workflow
