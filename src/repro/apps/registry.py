"""Benchmark registry: every runnable application by short name.

The paper's four benchmarks (:data:`APP_ORDER`) keep their evaluation
ordering; apps added after the reproduction (:data:`EXTRA_APPS`) extend
the registry without disturbing figure scripts that iterate the paper set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..workflow.model import Workflow
from . import etl, imageproc, mlensemble, svd, video, wordcount


@dataclass(frozen=True)
class AppSpec:
    """A benchmark: how to build it and its canonical request shape."""

    short_name: str
    title: str
    build: Callable[[], Workflow]
    default_input_bytes: float
    default_fanout: int
    #: Name of the :class:`~repro.workflow.model.Workflow` that ``build``
    #: returns — what ``system.submit`` and deployments key on.
    workflow_name: str


_APPS: Dict[str, AppSpec] = {
    "img": AppSpec(
        short_name="img",
        title="ML-based Image Processing",
        build=imageproc.build,
        default_input_bytes=imageproc.DEFAULT_INPUT_BYTES,
        default_fanout=imageproc.DEFAULT_FANOUT,
        workflow_name="imageproc",
    ),
    "vid": AppSpec(
        short_name="vid",
        title="Video-FFmpeg",
        build=video.build,
        default_input_bytes=video.DEFAULT_INPUT_BYTES,
        default_fanout=video.DEFAULT_FANOUT,
        workflow_name="video",
    ),
    "svd": AppSpec(
        short_name="svd",
        title="Singular Value Decomposition",
        build=svd.build,
        default_input_bytes=svd.DEFAULT_INPUT_BYTES,
        default_fanout=svd.DEFAULT_FANOUT,
        workflow_name="svd",
    ),
    "wc": AppSpec(
        short_name="wc",
        title="WordCount",
        build=wordcount.build,
        default_input_bytes=wordcount.DEFAULT_INPUT_BYTES,
        default_fanout=wordcount.DEFAULT_FANOUT,
        workflow_name="wordcount",
    ),
    "ml_ensemble": AppSpec(
        short_name="ml_ensemble",
        title="ML-Inference Ensemble (preprocess -> N models -> vote)",
        build=mlensemble.build,
        default_input_bytes=mlensemble.DEFAULT_INPUT_BYTES,
        default_fanout=mlensemble.DEFAULT_FANOUT,
        workflow_name="ml_ensemble",
    ),
    "etl": AppSpec(
        short_name="etl",
        title="ETL/Analytics DAG (reduce-heavy shuffle)",
        build=etl.build,
        default_input_bytes=etl.DEFAULT_INPUT_BYTES,
        default_fanout=etl.DEFAULT_FANOUT,
        workflow_name="etl",
    ),
}

#: Paper ordering (Figure 2 and the evaluation tables).
APP_ORDER: List[str] = ["img", "vid", "svd", "wc"]

#: Apps added beyond the paper's evaluation set.
EXTRA_APPS: List[str] = ["ml_ensemble", "etl"]


def app_names() -> List[str]:
    """Every registered app, paper set first."""
    return APP_ORDER + EXTRA_APPS


def get_app(name: str) -> AppSpec:
    if name not in _APPS:
        raise KeyError(f"unknown benchmark {name!r}; choose from {app_names()}")
    return _APPS[name]


def all_apps() -> List[AppSpec]:
    """The paper's four benchmarks in evaluation order."""
    return [_APPS[name] for name in APP_ORDER]


def registered_apps() -> List[AppSpec]:
    """Every registered benchmark, including post-paper additions."""
    return [_APPS[name] for name in app_names()]
