"""Benchmark registry: the paper's four applications by short name."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..workflow.model import Workflow
from . import imageproc, svd, video, wordcount


@dataclass(frozen=True)
class AppSpec:
    """A benchmark: how to build it and its canonical request shape."""

    short_name: str
    title: str
    build: Callable[[], Workflow]
    default_input_bytes: float
    default_fanout: int


_APPS: Dict[str, AppSpec] = {
    "img": AppSpec(
        short_name="img",
        title="ML-based Image Processing",
        build=imageproc.build,
        default_input_bytes=imageproc.DEFAULT_INPUT_BYTES,
        default_fanout=imageproc.DEFAULT_FANOUT,
    ),
    "vid": AppSpec(
        short_name="vid",
        title="Video-FFmpeg",
        build=video.build,
        default_input_bytes=video.DEFAULT_INPUT_BYTES,
        default_fanout=video.DEFAULT_FANOUT,
    ),
    "svd": AppSpec(
        short_name="svd",
        title="Singular Value Decomposition",
        build=svd.build,
        default_input_bytes=svd.DEFAULT_INPUT_BYTES,
        default_fanout=svd.DEFAULT_FANOUT,
    ),
    "wc": AppSpec(
        short_name="wc",
        title="WordCount",
        build=wordcount.build,
        default_input_bytes=wordcount.DEFAULT_INPUT_BYTES,
        default_fanout=wordcount.DEFAULT_FANOUT,
    ),
}

#: Paper ordering (Figure 2 and the evaluation tables).
APP_ORDER: List[str] = ["img", "vid", "svd", "wc"]


def get_app(name: str) -> AppSpec:
    if name not in _APPS:
        raise KeyError(f"unknown benchmark {name!r}; choose from {APP_ORDER}")
    return _APPS[name]


def all_apps() -> List[AppSpec]:
    return [_APPS[name] for name in APP_ORDER]
