"""Video-FFmpeg (vid): transcode pipeline with heavy intermediate data.

Structure: ``split`` cuts the uploaded video into chunks (FOREACH),
``transcode`` re-encodes each chunk in parallel (compute-heavy *and*
data-heavy), ``merge`` concatenates the encoded chunks and returns the
result.  Communication is ~49.5% of end-to-end latency on a control-flow
platform (Figure 2(a)); its large intermediate data makes vid the
benchmark most sensitive to the pressure-aware scaling ablation
(Figure 12(b)).
"""

from __future__ import annotations

from ..cluster.telemetry import MB
from ..workflow.model import EdgeKind, Workflow
from ..workflow.profiles import ComputeModel, OutputModel
from ..workflow.validation import validate

DEFAULT_INPUT_BYTES = 24 * MB
DEFAULT_FANOUT = 4


def build() -> Workflow:
    """The vid workflow (split -> transcode xN -> merge)."""
    workflow = Workflow("video")
    workflow.default_fanout = DEFAULT_FANOUT

    workflow.add_function(
        "vid_split",
        compute=ComputeModel(base_core_s=0.05, per_input_mb_core_s=0.010),
        output=OutputModel(input_ratio=1.0),
        memory_mb=512,
        first_output_at=0.15,
    )
    workflow.add_function(
        "vid_transcode",
        compute=ComputeModel(base_core_s=0.10, per_input_mb_core_s=0.120),
        output=OutputModel(input_ratio=0.5),
        memory_mb=512,
        first_output_at=0.2,
        flu_stages=2,
    )
    workflow.add_function(
        "vid_merge",
        compute=ComputeModel(base_core_s=0.05, per_input_mb_core_s=0.020),
        output=OutputModel(input_ratio=0.8),
        memory_mb=512,
        first_output_at=0.5,
    )

    workflow.connect("vid_split", "vid_transcode", EdgeKind.FOREACH, "chunks")
    workflow.connect("vid_transcode", "vid_merge", EdgeKind.MERGE, "encoded")
    workflow.connect("vid_merge", "$USER", EdgeKind.NORMAL, "video_out")
    workflow.entry = "vid_split"
    validate(workflow)
    return workflow
