"""ETL/analytics DAG (etl): two-level shuffle with a reduce-heavy fan-in.

A batch-analytics workload shaped like a two-stage MapReduce job:
``ingest`` partitions the raw extract (FOREACH), ``clean`` normalizes each
partition roughly size-preservingly, the partitions MERGE into ``shuffle``
which regroups every record by key — the reduce-heavy step: its input is
the whole cleaned dataset — then FOREACHes the regrouped buckets out to
``reduce`` workers whose aggregates MERGE into a small final ``report``.

The double fan-out/fan-in makes etl the most MERGE-stressed app in the
registry: the shuffle function ingests ``fanout`` full-size partitions in
one invocation, which exercises sink wait-match pressure and the
pipe-connector backpressure path harder than wc's single reduce.
"""

from __future__ import annotations

from ..cluster.telemetry import KB, MB
from ..workflow.model import EdgeKind, Workflow
from ..workflow.profiles import ComputeModel, OutputModel
from ..workflow.validation import validate

#: Default raw-extract size per request.
DEFAULT_INPUT_BYTES = 8 * MB
#: Default partition count (both map and reduce width).
DEFAULT_FANOUT = 4


def build() -> Workflow:
    """The etl workflow (ingest -> clean xN -> shuffle -> reduce xN -> report)."""
    workflow = Workflow("etl")
    workflow.default_fanout = DEFAULT_FANOUT

    workflow.add_function(
        "etl_ingest",
        compute=ComputeModel(base_core_s=0.01, per_input_mb_core_s=0.004),
        output=OutputModel(input_ratio=1.0),
        memory_mb=256,
        first_output_at=0.2,
    )
    workflow.add_function(
        "etl_clean",
        compute=ComputeModel(base_core_s=0.01, per_input_mb_core_s=0.012),
        output=OutputModel(input_ratio=0.9),
        memory_mb=256,
        first_output_at=0.3,
    )
    # The shuffle sees every cleaned partition at once (reduce-heavy MERGE)
    # and re-emits the full dataset regrouped by key.
    workflow.add_function(
        "etl_shuffle",
        compute=ComputeModel(base_core_s=0.02, per_input_mb_core_s=0.010),
        output=OutputModel(input_ratio=1.0),
        memory_mb=512,
        first_output_at=0.25,
    )
    workflow.add_function(
        "etl_reduce",
        compute=ComputeModel(base_core_s=0.02, per_input_mb_core_s=0.020),
        output=OutputModel(fixed_bytes=128 * KB),
        memory_mb=256,
        first_output_at=0.4,
    )
    workflow.add_function(
        "etl_report",
        compute=ComputeModel(base_core_s=0.01, per_input_mb_core_s=0.002),
        output=OutputModel(fixed_bytes=64 * KB),
        memory_mb=256,
        first_output_at=0.5,
    )

    workflow.connect("etl_ingest", "etl_clean", EdgeKind.FOREACH, "partitions")
    workflow.connect("etl_clean", "etl_shuffle", EdgeKind.MERGE, "cleaned")
    workflow.connect("etl_shuffle", "etl_reduce", EdgeKind.FOREACH, "buckets")
    workflow.connect("etl_reduce", "etl_report", EdgeKind.MERGE, "aggregates")
    workflow.connect("etl_report", "$USER", EdgeKind.NORMAL, "report")
    workflow.entry = "etl_ingest"
    validate(workflow)
    return workflow
