"""WordCount (wc): the paper's most communication-heavy benchmark.

Structure (Figure 13): ``start`` splits the input text into per-branch
file chunks (FOREACH), ``count`` computes word counts per chunk, ``merge``
reduces the counts.  Communication accounts for ~89% of its end-to-end
latency on a control-flow production platform (Figure 2(a)), which makes
wc the benchmark where DataFlower's gains are largest — it is also the
workload used for the fan-out/input-size/scale-up sweeps (Figures 16, 17).

The definition is written in the Figure-7 DSL to exercise the production
parsing path end to end.
"""

from __future__ import annotations

from ..cluster.telemetry import MB
from ..workflow.dsl import parse_workflow
from ..workflow.model import Workflow

#: Default request input size (Figure 16(a) fixes 4 MB).
DEFAULT_INPUT_BYTES = 4 * MB
#: Default FOREACH width (Figure 16(b) fixes 4 branches).
DEFAULT_FANOUT = 4

_DSL = """
workflow_name: wordcount
dataflows:
  wordcount_start:
    memory_mb: 256
    compute: base=0.004 per_mb=0.003
    output: ratio=1.0
    first_output_at: 0.2
    input_datas:
      source: $USER.input
    output_datas:
      filelist:
        type: FOREACH
        destination: wordcount_count
  wordcount_count:
    memory_mb: 256
    compute: base=0.002 per_mb=0.006 per_mb2=0.008
    output: fixed=64KB
    first_output_at: 0.3
    input_datas:
      source: wordcount_start.filelist
    output_datas:
      count_result:
        type: MERGE
        destination: wordcount_merge
  wordcount_merge:
    memory_mb: 256
    compute: base=0.004 per_mb=0.006
    output: fixed=96KB
    input_datas:
      source: wordcount_count.count_result
    output_datas:
      output:
        type: NORMAL
        destination: $USER
entry: wordcount_start
"""


def build() -> Workflow:
    """The wc workflow (start -> count xN -> merge)."""
    workflow = parse_workflow(_DSL)
    workflow.default_fanout = DEFAULT_FANOUT
    return workflow
