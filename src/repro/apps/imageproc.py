"""ML-based Image Processing (img): a compute-dominated linear pipeline.

Structure (after the Google Cloud Functions image-moderation tutorial the
paper cites): ``extract`` pulls image metadata, ``transform`` resizes,
``detect`` runs the (expensive) ML inference, ``censor`` blurs offending
regions and tags the result.  Communication is only ~26% of end-to-end
latency (Figure 2(a)); because its intermediate data is small, DataFlower
and DataFlower-Non-aware behave almost identically on img (Figure 12(a)),
and DataFlower's throughput gain is at its 1.03x floor (Figure 11(a)).
"""

from __future__ import annotations

from ..cluster.telemetry import MB
from ..workflow.model import EdgeKind, Workflow
from ..workflow.profiles import ComputeModel, OutputModel
from ..workflow.validation import validate

DEFAULT_INPUT_BYTES = 4 * MB
DEFAULT_FANOUT = 1


def build() -> Workflow:
    """The img workflow (extract -> transform -> detect -> censor)."""
    workflow = Workflow("imageproc")
    workflow.default_fanout = DEFAULT_FANOUT

    workflow.add_function(
        "img_extract",
        compute=ComputeModel(base_core_s=0.05, per_input_mb_core_s=0.040),
        output=OutputModel(input_ratio=1.0),
        memory_mb=512,
        first_output_at=0.3,
    )
    workflow.add_function(
        "img_transform",
        compute=ComputeModel(base_core_s=0.10, per_input_mb_core_s=0.060),
        output=OutputModel(input_ratio=0.8),
        memory_mb=512,
        first_output_at=0.4,
    )
    workflow.add_function(
        "img_detect",
        compute=ComputeModel(base_core_s=0.35, per_input_mb_core_s=0.110),
        output=OutputModel(input_ratio=1.0),
        memory_mb=512,
        first_output_at=0.6,
    )
    workflow.add_function(
        "img_censor",
        compute=ComputeModel(base_core_s=0.10, per_input_mb_core_s=0.050),
        output=OutputModel(fixed_bytes=0.25 * MB),
        memory_mb=512,
        first_output_at=0.5,
    )

    workflow.connect("img_extract", "img_transform", EdgeKind.NORMAL, "meta")
    workflow.connect("img_transform", "img_detect", EdgeKind.NORMAL, "resized")
    workflow.connect("img_detect", "img_censor", EdgeKind.NORMAL, "regions")
    workflow.connect("img_censor", "$USER", EdgeKind.NORMAL, "image_out")
    workflow.entry = "img_extract"
    validate(workflow)
    return workflow
