"""Benchmark applications: the paper's four plus post-paper additions.

Paper set (:data:`APP_ORDER`): img, vid, svd, wc.  Extensions
(:data:`EXTRA_APPS`): ml_ensemble (inference ensemble with a voting
fan-in) and etl (two-level shuffle analytics DAG).
"""

from .registry import (
    APP_ORDER,
    EXTRA_APPS,
    AppSpec,
    all_apps,
    app_names,
    get_app,
    registered_apps,
)

__all__ = [
    "APP_ORDER",
    "EXTRA_APPS",
    "AppSpec",
    "all_apps",
    "app_names",
    "get_app",
    "registered_apps",
]
