"""The paper's four benchmark workflows (vid, img, svd, wc)."""

from .registry import APP_ORDER, AppSpec, all_apps, get_app

__all__ = ["APP_ORDER", "AppSpec", "all_apps", "get_app"]
