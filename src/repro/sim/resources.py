"""Shared-resource primitives built on the event kernel.

Three primitives cover everything the cluster substrate needs:

:class:`Resource`
    A counted resource (e.g. CPU cores) acquired with ``request()`` /
    ``release()``.  Requests queue FIFO.
:class:`Store`
    An unbounded-or-bounded FIFO of Python objects (e.g. a dispatch queue).
:class:`LevelContainer`
    A continuous level (e.g. bytes of memory) with ``get``/``put`` amounts.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, List, Optional

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .environment import Environment


class Request(Event):
    """A pending acquisition of one unit of a :class:`Resource`.

    Usable as a context manager so that ``with resource.request() as req:
    yield req`` always releases.
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request (no-op if already granted)."""
        self.resource._cancel(self)


class Resource:
    """A resource with integer capacity and FIFO request queue."""

    __slots__ = ("env", "capacity", "users", "queue")

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: List[Request] = []
        self.queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of units currently held."""
        return len(self.users)

    def request(self) -> Request:
        return Request(self)

    def release(self, request: Request) -> None:
        """Return a previously granted unit."""
        try:
            self.users.remove(request)
        except ValueError:
            # Releasing an ungranted request cancels it instead.
            self._cancel(request)
            return
        self._grant_next()

    # -- internal -----------------------------------------------------------

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self.capacity and not self.queue:
            self.users.append(request)
            request.succeed()
        else:
            self.queue.append(request)

    def _cancel(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed()


class StorePut(Event):
    __slots__ = ("store", "item")

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.store = store
        self.item = item

    def cancel(self) -> None:
        """Withdraw a not-yet-admitted put (e.g. after an interrupt)."""
        try:
            self.store._putters.remove(self)
        except ValueError:
            pass


class StoreGet(Event):
    __slots__ = ("store", "predicate")

    def __init__(self, store: "Store", predicate: Optional[Callable[[Any], bool]]) -> None:
        super().__init__(store.env)
        self.store = store
        self.predicate = predicate

    def cancel(self) -> None:
        """Withdraw a not-yet-satisfied get (e.g. after an interrupt).

        Without this, an interrupted waiter's get stays queued and will
        silently swallow the next matching item.
        """
        try:
            self.store._getters.remove(self)
        except ValueError:
            pass


class Store:
    """A FIFO store of items with optional capacity.

    ``get(predicate)`` supports filtered retrieval (first matching item),
    which the schedulers use to pick work for a specific function.
    """

    __slots__ = ("env", "capacity", "items", "_putters", "_getters")

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._putters: Deque[StorePut] = deque()
        self._getters: Deque[StoreGet] = deque()

    def put(self, item: Any) -> StorePut:
        event = StorePut(self, item)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        event = StoreGet(self, predicate)
        self._getters.append(event)
        self._dispatch()
        return event

    def __len__(self) -> int:
        return len(self.items)

    # -- internal -----------------------------------------------------------

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Admit pending puts while there is room.
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progress = True
            # Satisfy getters whose predicate matches an item.
            pending_getters = len(self._getters)
            for _ in range(pending_getters):
                if not self._getters:
                    break
                get = self._getters.popleft()
                matched = None
                if get.predicate is None:
                    if self.items:
                        matched = self.items.popleft()
                else:
                    for index, item in enumerate(self.items):
                        if get.predicate(item):
                            matched = item
                            del self.items[index]
                            break
                if matched is not None:
                    get.succeed(matched)
                    progress = True
                else:
                    self._getters.append(get)


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, env: "Environment", amount: float) -> None:
        super().__init__(env)
        self.amount = amount


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, env: "Environment", amount: float) -> None:
        super().__init__(env)
        self.amount = amount


class LevelContainer:
    """A continuous quantity with blocking get/put (e.g. memory bytes)."""

    __slots__ = ("env", "capacity", "_level", "_getters", "_putters")

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must lie in [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: Deque[ContainerGet] = deque()
        self._putters: Deque[ContainerPut] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerPut:
        if amount < 0:
            raise ValueError("cannot put a negative amount")
        event = ContainerPut(self.env, amount)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self, amount: float) -> ContainerGet:
        if amount < 0:
            raise ValueError("cannot get a negative amount")
        event = ContainerGet(self.env, amount)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                put = self._putters[0]
                if self._level + put.amount <= self.capacity:
                    self._putters.popleft()
                    self._level += put.amount
                    put.succeed()
                    progress = True
            if self._getters:
                get = self._getters[0]
                if get.amount <= self._level:
                    self._getters.popleft()
                    self._level -= get.amount
                    get.succeed()
                    progress = True
