"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic generator-coroutine design: simulation
*processes* are Python generators that ``yield`` :class:`Event` objects and
are resumed when those events fire.  Events move through three states:

``PENDING``
    Created but not yet triggered; callbacks may still be added.
``TRIGGERED``
    A value (or exception) has been set and the event sits in the
    environment's queue waiting to be processed.
``PROCESSED``
    The environment has run all callbacks; waiting processes have resumed.

Hot-path note: millions of events exist per replay, so every class here
declares ``__slots__`` (smaller objects, faster attribute access) and
internal state checks read ``_state`` directly instead of going through
the public properties.  The observable semantics are unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .environment import Environment

PENDING = "pending"
TRIGGERED = "triggered"
PROCESSED = "processed"

#: Priority used for ordinary events.
NORMAL_PRIORITY = 1
#: Priority used for events that must fire before ordinary ones at equal time.
URGENT_PRIORITY = 0


class Event:
    """A one-shot occurrence at a point in simulated time.

    An event carries either a *value* (on success) or an *exception*
    (on failure).  Processes waiting on a failed event have the exception
    raised at their ``yield`` statement, so errors propagate like ordinary
    Python exceptions.
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "_state", "defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._state = PENDING
        #: Set when a failure has been handled (e.g. by a condition event);
        #: unhandled failures crash the simulation run to avoid silent loss.
        self.defused = False

    @classmethod
    def _new_triggered(cls, env: "Environment", callback) -> "Event":
        """Kernel-internal fast path: a pre-triggered event with one
        callback, ready to schedule.  Initializes exactly the fields
        ``__init__`` sets (keep the two in sync) minus a dispatch —
        process kick-off creates one of these per process, which is the
        hottest allocation site in a replay.
        """
        event = cls.__new__(cls)
        event.env = env
        event.callbacks = [callback]
        event._value = None
        event._exception = None
        event._state = TRIGGERED
        event.defused = False
        return event

    # -- state inspection ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once a value or exception has been set."""
        return self._state != PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The event's value; raises if the event has not triggered."""
        if not self.triggered:
            raise RuntimeError("value of untriggered event is not available")
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._value = value
        self._state = TRIGGERED
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._state != PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._state = TRIGGERED
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (callback use)."""
        if event._exception is not None:
            event.defused = True
            self.fail(event._exception)
        else:
            self.succeed(event._value)

    # -- composition --------------------------------------------------------

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __repr__(self) -> str:
        return f"<{type(self).__name__} state={self._state}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._state = TRIGGERED
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class ConditionEvent(Event):
    """Base for events that fire when a set of child events satisfies a test.

    Failures of any child event propagate immediately: the condition fails
    with the child's exception and the child is marked *defused*.
    """

    __slots__ = ("events", "_matched")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        self._matched: List[Event] = []
        if not self.events:
            self.succeed(self._result())
            return
        for event in self.events:
            if event.env is not env:
                raise ValueError("cannot mix events from different environments")
        for event in self.events:
            if event.processed or event.callbacks is None:
                # Already processed (or mid-processing): evaluate directly.
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._state != PENDING:
            if event._exception is not None and not event.defused:
                event.defused = True
            return
        if event._exception is not None:
            event.defused = True
            self.fail(event._exception)
            return
        self._matched.append(event)
        if self._satisfied():
            self.succeed(self._result())

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _result(self) -> Any:
        raise NotImplementedError


class AllOf(ConditionEvent):
    """Fires when every child event has fired; value maps events to values."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return len(self._matched) == len(self.events)

    def _result(self) -> Any:
        return {event: event._value for event in self.events if event.triggered}


class AnyOf(ConditionEvent):
    """Fires when the first child event fires; value maps fired events."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return len(self._matched) >= 1

    def _result(self) -> Any:
        return {event: event._value for event in self._matched}
