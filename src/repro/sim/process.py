"""Simulation processes: generator coroutines driven by the event loop."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from .events import Event, PENDING, TRIGGERED

if TYPE_CHECKING:  # pragma: no cover
    from .environment import Environment

ProcessGenerator = Generator[Event, Any, Any]


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """Wraps a generator so that it advances whenever a yielded event fires.

    A :class:`Process` is itself an event that triggers when the generator
    returns (value = return value) or raises (failure), so processes can wait
    for each other simply by yielding the process object.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: ProcessGenerator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        # Kick the generator off via an immediately-processed urgent event.
        init = Event._new_triggered(env, self._advance)
        env.schedule_urgent(init)
        self._target: Optional[Event] = init

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a finished process is an error; interrupting a process
        waiting on an event detaches it from that event (the event may still
        fire for other waiters).
        """
        if self._state != PENDING:
            raise RuntimeError("cannot interrupt a terminated process")
        if self is self.env.active_process:
            raise RuntimeError("a process cannot interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._exception = Interrupt(cause)
        interrupt_event._state = TRIGGERED
        interrupt_event.defused = True
        interrupt_event.callbacks.append(self._resume_interrupt)
        self.env.schedule_urgent(interrupt_event)

    # -- internal -----------------------------------------------------------

    def _detach_from_target(self) -> None:
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._advance)
            except ValueError:
                pass

    def _resume_interrupt(self, event: Event) -> None:
        if self._state != PENDING:
            return  # finished before the interrupt was delivered
        self._detach_from_target()
        self._advance(event)

    def _advance(self, event: Event) -> None:
        """Send/throw ``event``'s outcome into the generator and re-arm."""
        env = self.env
        generator = self._generator
        stack = env._active_stack
        stack.append(self)
        try:
            while True:
                try:
                    if event._exception is not None:
                        event.defused = True
                        next_event = generator.throw(event._exception)
                    else:
                        next_event = generator.send(event._value)
                except StopIteration as stop:
                    self._target = None
                    self.succeed(stop.value)
                    return
                except BaseException as exc:
                    self._target = None
                    if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                        raise
                    self.fail(exc)
                    return

                if not isinstance(next_event, Event):
                    error = RuntimeError(
                        f"process yielded a non-event: {next_event!r}"
                    )
                    self._target = None
                    self.fail(error)
                    return
                if next_event.env is not env:
                    error = RuntimeError("yielded event from another environment")
                    self._target = None
                    self.fail(error)
                    return

                self._target = next_event
                callbacks = next_event.callbacks
                if callbacks is None:
                    # Already processed: loop immediately with its outcome.
                    event = next_event
                    continue
                callbacks.append(self._advance)
                return
        finally:
            stack.pop()

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", "process")
        return f"<Process {name} alive={self.is_alive}>"
