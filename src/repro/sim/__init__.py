"""Discrete-event simulation kernel (SimPy-style, written from scratch).

Public surface::

    env = Environment()
    def proc(env):
        yield env.timeout(1.0)
        return "done"
    p = env.process(proc(env))
    env.run()
"""

from .environment import EmptySchedule, Environment
from .events import AllOf, AnyOf, ConditionEvent, Event, Timeout
from .process import Interrupt, Process
from .resources import LevelContainer, Request, Resource, Store
from .rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "ConditionEvent",
    "EmptySchedule",
    "Environment",
    "Event",
    "Interrupt",
    "LevelContainer",
    "Process",
    "Request",
    "Resource",
    "RngRegistry",
    "Store",
    "Timeout",
]
