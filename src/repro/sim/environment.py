"""The simulation environment: clock, scheduler, and run loop.

This is the simulator's innermost loop: a replay pops millions of events
through :meth:`Environment.run`, so the loop body is written flat — the
heap, clock, and callback dispatch are manipulated through local
bindings rather than per-event method calls.  :meth:`Environment.step`
remains the single-event API (tests and tools drive it directly); the
run loop inlines the identical logic.  Scheduling semantics — (time,
priority, insertion-order) order — are untouched.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Iterable, List, Optional, Tuple

from .events import (
    AllOf,
    AnyOf,
    Event,
    NORMAL_PRIORITY,
    PENDING,
    PROCESSED,
    Timeout,
    URGENT_PRIORITY,
)
from .process import Process, ProcessGenerator


class EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


class Environment:
    """A discrete-event simulation environment.

    Time is a float in *seconds*.  Events are processed in (time, priority,
    insertion-order) order, which makes runs fully deterministic.
    """

    __slots__ = ("_now", "_queue", "_eid", "_active_stack")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_stack: List[Process] = []

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event factories ------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------------

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL_PRIORITY
    ) -> None:
        """Queue ``event`` to be processed ``delay`` seconds from now."""
        self._eid += 1
        heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def schedule_urgent(self, event: Event) -> None:
        """The urgent path: queue ``event`` *now*, ahead of normal events.

        Equivalent to ``schedule(event, 0.0, URGENT_PRIORITY)`` minus the
        delay arithmetic — the process kick-off/interrupt hot path.
        """
        self._eid += 1
        heappush(self._queue, (self._now, URGENT_PRIORITY, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        try:
            when, _, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:  # type: ignore[union-attr]
            callback(event)
        event._state = PROCESSED
        if event._exception is not None and not event.defused:
            raise event._exception

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number
        (run until that simulated time), or an :class:`Event` (run until it
        has been processed, returning its value).
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
        else:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until={stop_time} lies in the past (now={self._now})"
                )

        # The hot loop: identical semantics to `while True: step()` with
        # the stop checks, but with the heap and clock handled through
        # locals instead of method/property calls per event.
        queue = self._queue
        while True:
            if stop_event is not None and stop_event._state == PROCESSED:
                return stop_event.value
            if not queue:
                if stop_event is not None and stop_event._state == PENDING:
                    raise RuntimeError(
                        "run(until=event) exhausted the schedule before the "
                        "event fired"
                    )
                if stop_time is not None:
                    self._now = stop_time
                return None
            if stop_time is not None and queue[0][0] > stop_time:
                self._now = stop_time
                return None
            when, _priority, _eid, event = heappop(queue)
            self._now = when
            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:  # type: ignore[union-attr]
                callback(event)
            event._state = PROCESSED
            exception = event._exception
            if exception is not None and not event.defused:
                raise exception

    # -- active-process bookkeeping (used by Process.interrupt) ---------------

    def _push_active(self, process: Process) -> None:
        self._active_stack.append(process)

    def _pop_active(self) -> None:
        self._active_stack.pop()

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being advanced, if any."""
        return self._active_stack[-1] if self._active_stack else None

    def active_process_target(self) -> Optional[Event]:
        active = self.active_process
        return active.target if active is not None else None

    def __repr__(self) -> str:
        return f"<Environment now={self._now:.6f} pending={len(self._queue)}>"
