"""The simulation environment: clock, scheduler, and run loop."""

from __future__ import annotations

import heapq
from typing import Any, Iterable, List, Optional, Tuple

from .events import AllOf, AnyOf, Event, NORMAL_PRIORITY, Timeout
from .process import Process, ProcessGenerator


class EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


class Environment:
    """A discrete-event simulation environment.

    Time is a float in *seconds*.  Events are processed in (time, priority,
    insertion-order) order, which makes runs fully deterministic.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_stack: List[Process] = []

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event factories ------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------------

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL_PRIORITY
    ) -> None:
        """Queue ``event`` to be processed ``delay`` seconds from now."""
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        try:
            when, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:  # type: ignore[union-attr]
            callback(event)
        event._mark_processed()
        if event._exception is not None and not event.defused:
            raise event._exception

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number
        (run until that simulated time), or an :class:`Event` (run until it
        has been processed, returning its value).
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
        else:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until={stop_time} lies in the past (now={self._now})"
                )

        while True:
            if stop_event is not None and stop_event.processed:
                return stop_event.value
            if not self._queue:
                if stop_event is not None and not stop_event.triggered:
                    raise RuntimeError(
                        "run(until=event) exhausted the schedule before the "
                        "event fired"
                    )
                if stop_time is not None:
                    self._now = stop_time
                return None
            if stop_time is not None and self.peek() > stop_time:
                self._now = stop_time
                return None
            self.step()

    # -- active-process bookkeeping (used by Process.interrupt) ---------------

    def _push_active(self, process: Process) -> None:
        self._active_stack.append(process)

    def _pop_active(self) -> None:
        self._active_stack.pop()

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being advanced, if any."""
        return self._active_stack[-1] if self._active_stack else None

    def active_process_target(self) -> Optional[Event]:
        active = self.active_process
        return active.target if active is not None else None

    def __repr__(self) -> str:
        return f"<Environment now={self._now:.6f} pending={len(self._queue)}>"
