"""Named, seeded random streams.

All stochastic choices in the simulator draw from a named stream derived
from a single root seed, so two runs with the same configuration produce
identical event traces regardless of the order in which subsystems are
constructed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Hands out independent :class:`random.Random` streams by name."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name``, created deterministically on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, salt: str) -> "RngRegistry":
        """A registry whose streams are independent of this one's."""
        digest = hashlib.sha256(f"{self.seed}:fork:{salt}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
