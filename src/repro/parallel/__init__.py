"""Streaming parallel trace replay: scale replay across CPU cores.

The layer between the load generator and the simulator: it partitions an
:class:`~repro.loadgen.trace.InvocationTrace` into independent cells
(:mod:`~repro.parallel.policy`), replays each in its own fresh simulated
world — in worker processes when ``workers > 1``, scheduled by a
cell-granular work-stealing queue — from a picklable
:class:`~repro.parallel.spec.ReplaySpec`, and streams the per-cell
metrics into one online, deterministic merge
(:mod:`~repro.parallel.engine`).  ``repro replay`` is the CLI front-end;
``docs/scaling.md`` covers the architecture and policy trade-offs.
"""

from .engine import (
    CellResult,
    ParallelReplayResult,
    ShardResult,
    StreamingMerge,
    max_rss_mb,
    merge_shard_results,
    partition_trace,
    replay_cell,
    run_parallel_replay,
)
from .policy import (
    ShardPolicy,
    TenantShardPolicy,
    TimeSliceShardPolicy,
    get_shard_policy,
    shard_policy_names,
)
from .profiles import (
    TenantConfig,
    TenantProfile,
    TenantProfileError,
    validated_tenant_config,
)
from .resilience import (
    FAILURE_KINDS,
    CellDeadlineExceeded,
    CellFailedError,
    CellFailure,
    FaultSpec,
    HostFaultPlan,
    PoisonError,
    RetryPolicy,
    WorkerCrashError,
    classify_failure,
)
from .spec import ReplaySpec, ResolvedProfile

__all__ = [
    "CellDeadlineExceeded",
    "CellFailedError",
    "CellFailure",
    "CellResult",
    "FAILURE_KINDS",
    "FaultSpec",
    "HostFaultPlan",
    "ParallelReplayResult",
    "PoisonError",
    "ReplaySpec",
    "ResolvedProfile",
    "RetryPolicy",
    "ShardPolicy",
    "ShardResult",
    "StreamingMerge",
    "TenantConfig",
    "TenantProfile",
    "TenantProfileError",
    "TenantShardPolicy",
    "TimeSliceShardPolicy",
    "WorkerCrashError",
    "classify_failure",
    "get_shard_policy",
    "max_rss_mb",
    "merge_shard_results",
    "partition_trace",
    "replay_cell",
    "run_parallel_replay",
    "shard_policy_names",
    "validated_tenant_config",
]
