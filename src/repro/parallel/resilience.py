"""Deterministic retry, failure taxonomy, and host-fault injection.

The replay engine's resilience layer, three pieces:

**RetryPolicy** — how many attempts a cell gets, how long to back off
between them, and an optional per-cell wall-clock deadline.  Backoff is
exponential with *seeded deterministic jitter*: the jitter fraction is a
pure function of (root seed, cell key, attempt number) via the same
:func:`~repro.parallel.policy.stable_hash` the engine derives cell
seeds from, so two runs of the same spec pace their retries
identically — no RNG, no wall-clock feedback into scheduling.

**Failure taxonomy** — every terminal cell failure classifies into one
of :data:`FAILURE_KINDS`:

``worker-crash``
    The worker process died (SIGKILL, OOM-kill) and the parent saw
    ``BrokenProcessPool`` — or, on the in-process serial path where
    killing the host would be self-defeating, a :class:`WorkerCrashError`
    stood in for the dead process.
``timeout``
    The cell exceeded its :attr:`RetryPolicy.deadline_s`
    (:class:`CellDeadlineExceeded`) or raised any other ``TimeoutError``.
``poison``
    An injected :class:`PoisonError` (fault plans and tests).
``lease-expired``
    A remote worker's cell lease passed its deadline without a result
    (the worker died, hung, or lost connectivity), and the control
    plane's retry budget for the cell was already spent.  Only the
    ``--workers remote`` execution mode produces this kind; see
    ``docs/workers.md``.
``app-error``
    Anything else the replay raised.

A cell that exhausts its attempts becomes a :class:`CellFailure` — a
small, deterministic record (no PIDs, no wall-clock) that the merged
report's ``replay.failed_cells`` section serializes under
``on_cell_failure="skip"``, or that rides inside the
:class:`CellFailedError` the engine raises under ``"fail"``.

**HostFaultPlan** — deterministic host-level fault injection for tests
and the ``tools/chaos_replay.py`` harness.  A plan is a picklable set of
:class:`FaultSpec`\\ s, each naming a cell, an attempt number (``0`` =
every attempt), and a fault kind:

``kill``
    SIGKILL the worker process mid-cell.  In a pool worker this is a
    *real* ``os.kill(os.getpid(), SIGKILL)`` — the parent observes
    ``BrokenProcessPool`` exactly as it would for an OOM-killed worker.
    On the in-process serial path (the plan remembers the PID it was
    built in) it raises :class:`WorkerCrashError` instead, so serial
    replays exercise the same retry path without killing the host.
``delay``
    Sleep ``delay_s`` before replaying the attempt — inside the
    deadline window, so a delay longer than ``deadline_s`` manufactures
    a deterministic ``timeout`` failure.
``poison``
    Raise :class:`PoisonError` — a deterministic application-level
    failure.

Because every attempt of a cell replays byte-identically (cell seeds
are functions of (spec, cell) alone), a run that survives injected
faults produces a report byte-identical to the fault-free run — the
crash-identity property ``tests/test_resilience.py`` and the CI chaos
smoke assert.  See ``docs/robustness.md``.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional, Tuple

from .policy import stable_hash

__all__ = [
    "FAILURE_KINDS",
    "CellDeadlineExceeded",
    "CellFailedError",
    "CellFailure",
    "FaultSpec",
    "HostFaultPlan",
    "PoisonError",
    "RetryPolicy",
    "WorkerCrashError",
    "cell_deadline",
    "classify_failure",
]

#: Every way a cell can terminally fail (``docs/robustness.md``).
FAILURE_KINDS = (
    "worker-crash",
    "timeout",
    "app-error",
    "poison",
    "lease-expired",
)

#: Kinds a :class:`FaultSpec` can inject.
FAULT_KINDS = ("kill", "delay", "poison")


class WorkerCrashError(RuntimeError):
    """A worker-process death, surfaced as an exception.

    Raised by ``kill`` faults on the in-process serial path (where a
    real SIGKILL would take down the host process) so serial and pooled
    replays classify and retry identically.
    """


class PoisonError(RuntimeError):
    """A deterministically injected application-level failure."""


class CellDeadlineExceeded(TimeoutError):
    """A cell replay ran past its :attr:`RetryPolicy.deadline_s`.

    Picklable across the worker→parent boundary (multi-argument
    exceptions need ``__reduce__`` for that), and deterministic in its
    message — it names the cell and the configured deadline, never the
    elapsed wall-clock.
    """

    def __init__(self, key: str, deadline_s: float) -> None:
        super().__init__(
            f"cell {key!r} exceeded its {deadline_s:g}s deadline"
        )
        self.key = key
        self.deadline_s = deadline_s

    def __reduce__(self):
        return (type(self), (self.key, self.deadline_s))


@dataclass(frozen=True)
class CellFailure:
    """One cell's terminal failure, after its retry budget ran out.

    Deterministic by construction: the message never carries PIDs,
    addresses, or timings, so a degraded report's ``failed_cells``
    section is byte-stable across runs that fail the same way.
    """

    key: str
    #: One of :data:`FAILURE_KINDS`.
    kind: str
    #: Attempts consumed (the last one produced this failure).
    attempts: int
    message: str

    def to_payload(self) -> dict:
        return {
            "cell": self.key,
            "kind": self.kind,
            "attempts": self.attempts,
            "message": self.message,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CellFailure":
        return cls(
            key=payload["cell"],
            kind=payload["kind"],
            attempts=payload["attempts"],
            message=payload["message"],
        )


class CellFailedError(RuntimeError):
    """A cell exhausted its retries under ``on_cell_failure="fail"``."""

    def __init__(self, failure: CellFailure) -> None:
        super().__init__(
            f"cell {failure.key!r} failed ({failure.kind}) after "
            f"{failure.attempts} attempt(s): {failure.message}"
        )
        self.failure = failure

    def __reduce__(self):
        # Raised inside batched workers under ``on_cell_failure="fail"``
        # — must re-carry the CellFailure across the process boundary.
        return (type(self), (self.failure,))


def classify_failure(exc: BaseException) -> str:
    """Map an exception a cell attempt raised to a failure kind."""
    # Local import: concurrent.futures.process pulls in multiprocessing
    # machinery workers never need unless a pool actually exists.
    from concurrent.futures.process import BrokenProcessPool

    if isinstance(exc, (BrokenProcessPool, WorkerCrashError)):
        return "worker-crash"
    if isinstance(exc, PoisonError):
        return "poison"
    if isinstance(exc, TimeoutError):
        return "timeout"
    return "app-error"


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic per-cell retry and deadline semantics.

    ``backoff_s(seed, key, attempt)`` is the pause *before* attempt
    ``attempt`` (so attempt 1 never waits): exponential in the attempt
    number, capped at :attr:`backoff_max_s`, stretched by a jitter
    fraction in ``[0, jitter]`` derived from
    ``stable_hash(seed, key, attempt)`` — deterministic, but decorrelated
    across cells so a crashed window's retries don't stampede in
    lockstep.

    ``deadline_s`` bounds one *attempt's* wall-clock, enforced worker-
    side via ``SIGALRM`` (main-thread only — the serve service's serial
    path runs in a job thread, where POSIX forbids ``setitimer``
    delivery, so deadlines there apply only to pooled workers).
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    #: Maximum extra backoff as a fraction of the exponential base.
    jitter: float = 0.25
    #: Per-attempt wall-clock bound (``None`` = unbounded).
    deadline_s: Optional[float] = None

    def validate(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_max_s < 0:
            raise ValueError("backoff_max_s must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")

    def backoff_s(self, seed: int, key: str, attempt: int) -> float:
        """The deterministic pause before attempt ``attempt`` of a cell."""
        if attempt <= 1:
            return 0.0
        base = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** (attempt - 2),
        )
        fraction = (
            stable_hash(f"retry-jitter:{seed}:{key}:{attempt}") % 10_000
        ) / 10_000.0
        return base * (1.0 + self.jitter * fraction)

    @classmethod
    def from_payload(cls, payload: dict) -> "RetryPolicy":
        """Parse the ``retry`` wire object (``POST /v1/runs``)."""
        if not isinstance(payload, dict):
            raise ValueError(
                f"'retry' must be a mapping, got {type(payload).__name__}"
            )
        known = {"max_attempts", "deadline_s"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown retry keys {unknown}; expected {sorted(known)}"
            )
        policy = cls(
            max_attempts=int(payload.get("max_attempts", 3)),
            deadline_s=(
                float(payload["deadline_s"])
                if payload.get("deadline_s") is not None
                else None
            ),
        )
        policy.validate()
        return policy


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: ``kind`` fires on ``attempt`` of ``cell``."""

    #: One of :data:`FAULT_KINDS`.
    kind: str
    #: The cell key the fault targets.
    cell: str
    #: Which attempt fires the fault; ``0`` means every attempt.
    attempt: int = 1
    #: Sleep duration for ``delay`` faults.
    delay_s: float = 0.0

    def validate(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {list(FAULT_KINDS)}"
            )
        if self.attempt < 0:
            raise ValueError("fault attempt must be >= 0 (0 = every attempt)")
        if self.delay_s < 0:
            raise ValueError("fault delay_s must be >= 0")

    def matches(self, key: str, attempt: int) -> bool:
        return self.cell == key and self.attempt in (0, attempt)

    def to_payload(self) -> dict:
        return {
            "kind": self.kind,
            "cell": self.cell,
            "attempt": self.attempt,
            "delay_s": self.delay_s,
        }


@dataclass(frozen=True)
class HostFaultPlan:
    """A deterministic set of host-level faults to inject into a replay.

    Picklable — the plan ships to workers inside the task payload.  It
    remembers the PID it was built in (the engine's parent process):
    ``kill`` faults SIGKILL the *current* process only when it is not
    that parent, so the serial in-process path degrades to a raised
    :class:`WorkerCrashError` instead of killing the host.
    """

    faults: Tuple[FaultSpec, ...] = ()
    parent_pid: int = field(default_factory=os.getpid)

    def validate(self) -> None:
        for fault in self.faults:
            fault.validate()

    def apply(self, key: str, attempt: int) -> None:
        """Fire every fault matching this (cell, attempt), in order."""
        for fault in self.faults:
            if not fault.matches(key, attempt):
                continue
            if fault.kind == "delay":
                time.sleep(fault.delay_s)
            elif fault.kind == "poison":
                raise PoisonError(
                    f"injected poison on attempt {attempt} of cell {key!r}"
                )
            elif fault.kind == "kill":
                if os.getpid() != self.parent_pid:
                    os.kill(os.getpid(), signal.SIGKILL)
                raise WorkerCrashError(
                    f"injected worker crash on attempt {attempt} of "
                    f"cell {key!r}"
                )

    @classmethod
    def from_payload(cls, payload: object) -> "HostFaultPlan":
        """Parse the ``faults`` wire list (``POST /v1/runs``)."""
        if not isinstance(payload, list):
            raise ValueError(
                f"'faults' must be a list, got {type(payload).__name__}"
            )
        known = {"kind", "cell", "attempt", "delay_s"}
        faults = []
        for index, body in enumerate(payload):
            if not isinstance(body, dict):
                raise ValueError(
                    f"faults[{index}] must be a mapping, "
                    f"got {type(body).__name__}"
                )
            unknown = sorted(set(body) - known)
            if unknown:
                raise ValueError(
                    f"faults[{index}]: unknown keys {unknown}; "
                    f"expected {sorted(known)}"
                )
            if "kind" not in body or "cell" not in body:
                raise ValueError(
                    f"faults[{index}] needs 'kind' and 'cell'"
                )
            fault = FaultSpec(
                kind=str(body["kind"]),
                cell=str(body["cell"]),
                attempt=int(body.get("attempt", 1)),
                delay_s=float(body.get("delay_s", 0.0)),
            )
            fault.validate()
            faults.append(fault)
        return cls(faults=tuple(faults))

    def to_payload(self) -> list:
        return [fault.to_payload() for fault in self.faults]


@contextmanager
def cell_deadline(key: str, deadline_s: Optional[float]):
    """Bound one cell attempt's wall-clock via ``SIGALRM``.

    Raises :class:`CellDeadlineExceeded` from the signal handler when
    the timer fires mid-replay.  A no-op when ``deadline_s`` is ``None``
    or when not running on the main thread (POSIX delivers ``SIGALRM``
    to the main thread only; pool worker processes run tasks on their
    main thread, so worker-side enforcement always applies there).
    """
    if (
        deadline_s is None
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _expired(signum, frame):
        raise CellDeadlineExceeded(key, deadline_s)

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, deadline_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
