"""Streaming work-stealing trace replay: cells → workers → one report.

The pipeline:

1. A :class:`~repro.parallel.policy.ShardPolicy` splits the trace into
   *cells* — independent sub-traces that never interact (per tenant by
   default).  The cell partition depends only on trace + policy.
2. The **streaming engine** (default) submits cells individually to a
   ``ProcessPoolExecutor`` via ``submit()``, costliest cell first,
   through a sliding window of ``2 * workers`` outstanding tasks, and
   consumes :class:`CellResult`\\ s as they complete.  Workers pull the
   next cell the moment they finish one — fast workers steal the
   remaining queue instead of idling behind a skewed tenant, so the
   makespan approaches LPT-optimal regardless of how skewed the cells
   are.  Each result folds into an online :class:`StreamingMerge` as it
   arrives and is then dropped, so peak memory is bounded by the final
   merged report plus the window's worth of in-flight cells — never by
   whole-shard pickles.
3. The **batched engine** (``stream=False``, the pre-streaming
   behavior) packs cells into ``shards`` batches by a stable hash of
   the cell key (:func:`partition_trace`) and replays each batch back
   to back in one worker task.  It survives as the measured baseline
   work-stealing is benchmarked against.
4. Both paths fold through the same :class:`StreamingMerge`, which
   accepts cells in *any* arrival order and canonicalizes at
   :meth:`~StreamingMerge.finalize`: per-cell summaries fold in
   sorted-cell-key order (so even float-summation order is
   deterministic) and records sort by ``(submit_time, request_id)``.

A worker rebuilds a fresh simulated world per cell from the picklable
:class:`~repro.parallel.spec.ReplaySpec` — under the cell tenant's
resolved :class:`~repro.parallel.profiles.TenantProfile`, so tenants
may replay on different systems, placements, and clusters — with a
seed derived from (root seed, cell key, resolved profile), then runs
the ordinary :func:`~repro.loadgen.trace.run_trace` on the cell's
events.

Because cells, seeds, and the canonical merge order are all independent
of shard count, worker count, and completion order, the merged report
is bit-identical across ``--shards``/``--workers``/``--stream``
settings — parallelism and scheduling never change results, only
wall-clock time and memory.

**Resilience** (see :mod:`repro.parallel.resilience` and
``docs/robustness.md``): every cell attempt is byte-identical to every
other attempt of the same cell — ``cell_seed`` is a pure function of
(spec, cell) — so failed attempts are simply re-derived and re-run.
Both engines survive worker death: a ``BrokenProcessPool`` is caught,
the pool is rebuilt, and the in-flight cells (streamed) or shard
payloads (batched) are resubmitted at the next attempt number.  Cells
retry per a deterministic :class:`~repro.parallel.resilience.\
RetryPolicy` (seeded-jitter backoff, optional per-attempt ``SIGALRM``
deadline); a cell that exhausts its attempts either aborts the run
(``on_cell_failure="fail"``, the default — a
:class:`~repro.parallel.resilience.CellFailedError`) or degrades it
(``"skip"`` — the merged report gains a deterministic
``replay.failed_cells`` section and the surviving cells still merge
canonically).  An optional
:class:`~repro.parallel.resilience.HostFaultPlan` injects
kill/delay/poison faults deterministically for tests and the chaos
harness.
"""

from __future__ import annotations

import gc
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from itertools import islice
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from ..loadgen.trace import InvocationTrace, TraceRunResult, run_trace
from ..metrics.latency import LatencySummary, RequestRecord
from ..metrics.telemetry import MetricsRegistry
from ..metrics.usage import UsageSummary
from .policy import ShardPolicy, get_shard_policy, stable_hash
from .resilience import (
    CellFailedError,
    CellFailure,
    HostFaultPlan,
    RetryPolicy,
    cell_deadline,
    classify_failure,
)
from .sink import (
    RecordAggregate,
    make_record_sink,
    record_from_payload,
    record_to_payload,
)
from .spec import ReplaySpec

__all__ = [
    "CellResult",
    "ParallelReplayResult",
    "ShardResult",
    "StreamingMerge",
    "fold_remote_cells",
    "max_rss_mb",
    "merge_shard_results",
    "partition_trace",
    "replay_cell",
    "run_parallel_replay",
]

#: Valid ``on_cell_failure`` modes: abort the run, or degrade the report.
ON_CELL_FAILURE_MODES = ("fail", "skip")

#: One cell: ``(cell key, sub-trace)``.
Cell = Tuple[str, InvocationTrace]


@dataclass
class CellResult:
    """The replay of one cell, ready to cross a process boundary."""

    key: str
    offered: int
    duration_s: float
    records: List[RequestRecord]
    tenant_of: Dict[str, str]
    usage: Optional[UsageSummary]
    latency: Optional[LatencySummary]
    wall_s: float
    #: Audit tag of the resolved tenant profile this cell replayed under
    #: (:meth:`~repro.parallel.spec.ResolvedProfile.tag`).
    profile: Dict[str, object] = field(default_factory=dict)

    def to_payload(self) -> dict:
        """This cell as a JSON-ready dict that round-trips exactly.

        The durable run journal (``repro serve --journal``) persists one
        payload per completed cell; :meth:`from_payload` rebuilds a
        :class:`CellResult` whose fold through :class:`StreamingMerge`
        is byte-identical to folding the original — Python floats
        round-trip exactly through JSON (shortest-repr), latency
        summaries keep their sample arrays in record order, and records
        keep their task timelines.
        """
        return {
            "key": self.key,
            "offered": self.offered,
            "duration_s": self.duration_s,
            "wall_s": self.wall_s,
            "tenant_of": dict(self.tenant_of),
            "profile": dict(self.profile),
            "usage": None if self.usage is None else {
                "memory_gbs": self.usage.memory_gbs,
                "cache_mbs": self.usage.cache_mbs,
                "completed_requests": self.usage.completed_requests,
            },
            "latency": (
                None if self.latency is None
                else list(self.latency.samples)
            ),
            "records": [
                record_to_payload(record) for record in self.records
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CellResult":
        """Rebuild a :class:`CellResult` from :meth:`to_payload` output."""
        usage = payload.get("usage")
        latency = payload.get("latency")
        return cls(
            key=payload["key"],
            offered=payload["offered"],
            duration_s=payload["duration_s"],
            wall_s=payload["wall_s"],
            tenant_of=dict(payload["tenant_of"]),
            profile=dict(payload.get("profile") or {}),
            usage=None if usage is None else UsageSummary(**usage),
            latency=(
                None if latency is None
                else LatencySummary(samples=tuple(latency))
            ),
            records=[
                record_from_payload(record) for record in payload["records"]
            ],
        )


@dataclass
class ShardResult:
    """Everything one shard (= one batched worker task) produced."""

    index: int
    cells: List[CellResult]
    wall_s: float
    #: Cells that exhausted their retry budget inside the worker
    #: (``on_cell_failure="skip"`` only — ``"fail"`` raises instead).
    failures: List[CellFailure] = field(default_factory=list)
    #: In-worker retry attempts consumed beyond each cell's first.
    retries: int = 0


@dataclass
class ParallelReplayResult(TraceRunResult):
    """A merged :class:`TraceRunResult` plus replay-engine bookkeeping.

    ``to_dict`` stays deterministic — it reports the policy and cell
    count (functions of trace + policy alone) but *not* shard/worker
    counts, scheduling mode, or wall-clock times, so two runs of the
    same trace at different parallelism produce byte-identical reports.
    The scheduling facts live on the object (:attr:`shards`,
    :attr:`workers`, :attr:`streamed`, :attr:`wall_s`, :attr:`rss_mb`,
    per-cell :attr:`cell_wall_s`) for benchmarks and the CLI to surface
    separately.
    """

    policy_name: str = "tenant"
    cell_count: int = 0
    shards: int = 1
    workers: int = 1
    #: Whether the streaming work-stealing scheduler ran (vs the static
    #: hash-batched baseline).  Scheduling detail only — never reported.
    streamed: bool = True
    wall_s: float = 0.0
    #: Parent-process peak RSS after the run, MB — where merge/pickle
    #: memory lives (a high-water mark including everything the host
    #: process did before the replay; 0.0 when unmeasurable).
    rss_mb: float = 0.0
    #: Wall-clock per engine phase: ``prepare`` (validation, checkpoint
    #: folding, cell partition), ``execute`` (the replay itself),
    #: ``finalize`` (the canonical merge).  Scheduling facts — kept out
    #: of the deterministic report, surfaced via telemetry gauges.
    phase_wall_s: Dict[str, float] = field(default_factory=dict)
    cell_wall_s: Dict[str, float] = field(default_factory=dict)
    #: Per-cell latency summaries folded via :meth:`LatencySummary.fold`
    #: in sorted-cell-key order (``None`` when nothing completed).
    merged_latency: Optional[LatencySummary] = None
    #: tenant -> resolved-profile tag, populated only when the spec
    #: carried tenant profiles (heterogeneous replay); functions of
    #: (trace, spec) alone, so including them in reports stays
    #: shard-invariant.
    tenant_profile_tags: Dict[str, dict] = field(default_factory=dict)
    #: Cells that terminally failed under ``on_cell_failure="skip"``.
    #: Deterministic (canonical messages, no PIDs/timings); rendered
    #: into the report's ``replay.failed_cells`` section sorted by key,
    #: and only when non-empty — a run that recovered from every fault
    #: reports byte-identically to a fault-free run.
    failed_cells: List[CellFailure] = field(default_factory=list)
    #: Streaming aggregate the record sink folded in canonical merge
    #: order.  When present, ``to_dict`` renders the record-derived
    #: report sections from it instead of re-scanning :attr:`records` —
    #: which is what lets a disk-spilled result report without reading
    #: its records back into RAM.  The aggregate observes records in the
    #: exact order an in-memory scan would, so both paths are
    #: byte-identical.
    record_stats: Optional[RecordAggregate] = None

    def latency(self) -> LatencySummary:
        """The merged latency summary (falls back to recomputation)."""
        if self.merged_latency is not None:
            return self.merged_latency
        return super().latency()

    def events_per_s(self) -> float:
        """Replayed trace events per wall-clock second (host speed)."""
        return self.offered / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> dict:
        from ..metrics.report import tag_tenant_profiles

        if self.record_stats is not None:
            payload = self.record_stats.report_payload(
                system=self.system_name,
                workflow=self.workflow,
                duration_s=self.duration_s,
                offered=self.offered,
                latency=self.merged_latency,
                usage=self.usage,
            )
        else:
            payload = super().to_dict()
        payload["replay"] = {
            "policy": self.policy_name,
            "cells": self.cell_count,
        }
        if self.failed_cells:
            payload["replay"]["failed_cells"] = [
                failure.to_payload()
                for failure in sorted(
                    self.failed_cells, key=lambda failure: failure.key
                )
            ]
        if self.tenant_profile_tags:
            payload["replay"]["profiles"] = {
                tenant: dict(tag)
                for tenant, tag in sorted(self.tenant_profile_tags.items())
            }
            tag_tenant_profiles(payload, self.tenant_profile_tags)
        return payload


def max_rss_mb() -> float:
    """Peak RSS high-water mark of *this* process, in MB.

    Parent-side only, deliberately: the merge memory — whole-shard
    pickle buffers versus streamed per-cell results — lives in the
    parent, while each worker holds one cell world under either engine.
    (``RUSAGE_CHILDREN``'s ``ru_maxrss`` is the max over any single
    reaped child, not a sum, so folding it in would only blur the
    signal.)  ``getrusage`` reports kilobytes on Linux and bytes on
    macOS; 0.0 on platforms without the ``resource`` module (Windows).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0.0
    import sys

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    scale = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    return peak / scale


def partition_trace(
    trace: InvocationTrace,
    shards: int,
    policy: Union[str, ShardPolicy] = "tenant",
) -> List[List[Cell]]:
    """Split a trace into ``shards`` batches of policy-defined cells.

    Cells assign to shards by a stable hash of their key, so the same
    trace + policy + shard count always yields the same batches; some
    batches may be empty when cells are fewer than shards.  This static
    assignment is the batched (``stream=False``) engine's unit of work
    distribution — the streaming engine schedules cells individually
    instead.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if isinstance(policy, str):
        policy = get_shard_policy(policy)
    batches: List[List[Cell]] = [[] for _ in range(shards)]
    for key, cell_trace in policy.split(trace):
        batches[stable_hash(f"shard-of:{key}") % shards].append((key, cell_trace))
    return batches


def replay_cell(spec: ReplaySpec, key: str, cell_trace: InvocationTrace) -> CellResult:
    """Replay one cell in a fresh world built from the spec.

    The cell replays under its tenant's resolved profile: system,
    placement, cluster, and request defaults may all differ per tenant
    (heterogeneous tenancy), but resolution is a pure function of
    (spec, cell), so shard invariance is preserved.
    """
    start = time.perf_counter()
    resolved = spec.resolve(key, cell_trace)
    setup = spec.build_setup(cell_trace, key, resolved=resolved)
    # Cell-qualified request ids stay unique in the merged record stream.
    setup.system.request_id_prefix = f"{key}/"
    result = run_trace(
        setup.system,
        cell_trace,
        default_app=spec.default_app,
        timeout_s=resolved.timeout_s,
        input_bytes=resolved.input_bytes,
        fanout=resolved.fanout,
    )
    return CellResult(
        key=key,
        offered=result.offered,
        duration_s=result.duration_s,
        records=result.records,
        tenant_of=result.tenant_of,
        usage=result.usage,
        latency=result.latency() if result.completed else None,
        wall_s=time.perf_counter() - start,
        profile=resolved.tag(),
    )


def _failure_message(exc: BaseException) -> str:
    """A deterministic failure description for degraded reports.

    Worker crashes collapse to fixed text — ``BrokenProcessPool``
    messages vary by Python version and carry no replayable detail —
    while everything else keeps its (deterministic) exception text.
    """
    if classify_failure(exc) == "worker-crash":
        return "worker process died mid-cell"
    return f"{type(exc).__name__}: {exc}"


def _replay_cell_task(
    spec: ReplaySpec,
    key: str,
    cell_trace: InvocationTrace,
    attempt: int,
    retry: RetryPolicy,
    faults: Optional[HostFaultPlan],
    backoff: bool = True,
) -> CellResult:
    """One *attempt* at one cell — the resilient worker entry point.

    Retry backoff sleeps here, on the worker side, so the parent's fold
    loop never blocks behind a backing-off cell; the deadline timer and
    any injected faults wrap the replay itself.  Every attempt replays
    byte-identically (``cell_seed`` ignores the attempt number), which
    is what makes retry-after-crash safe.

    ``backoff=False`` skips the pause: remote fleet workers
    (:mod:`repro.worker`) pass it because their lease clock is already
    running when an attempt starts — sleeping would burn the lease
    budget — and the requeue round-trip through the control plane has
    spaced the attempts anyway.
    """
    if backoff and attempt > 1:
        time.sleep(retry.backoff_s(spec.seed, key, attempt))
    with cell_deadline(key, retry.deadline_s):
        if faults is not None:
            faults.apply(key, attempt)
        return replay_cell(spec, key, cell_trace)


def _replay_shard(
    payload: Tuple[
        ReplaySpec, int, List[Cell], int, RetryPolicy,
        Optional[HostFaultPlan], str,
    ],
) -> ShardResult:
    """Batched worker entry point: replay one shard's cells back to back.

    Retries happen *inside* the worker (an app-level failure costs one
    cell re-run, not a shard resubmission); only worker death escalates
    to the parent, which resubmits the whole payload at
    ``attempt_base + 1`` — the completed cells died with the worker, and
    re-running them is byte-identical anyway.
    """
    spec, index, cells, attempt_base, retry, faults, on_cell_failure = payload
    start = time.perf_counter()
    results: List[CellResult] = []
    failures: List[CellFailure] = []
    retries = 0
    for key, cell_trace in cells:
        attempt = attempt_base
        while True:
            try:
                results.append(
                    _replay_cell_task(
                        spec, key, cell_trace, attempt, retry, faults
                    )
                )
                break
            except Exception as exc:
                if attempt < retry.max_attempts:
                    attempt += 1
                    retries += 1
                    continue
                failure = CellFailure(
                    key=key,
                    kind=classify_failure(exc),
                    attempts=attempt,
                    message=_failure_message(exc),
                )
                if on_cell_failure == "fail":
                    raise CellFailedError(failure) from exc
                failures.append(failure)
                break
    return ShardResult(
        index=index,
        cells=results,
        wall_s=time.perf_counter() - start,
        failures=failures,
        retries=retries,
    )


@dataclass
class _CellFold:
    """The bounded-size residue one folded cell leaves behind: every
    per-cell quantity whose canonical merge order matters, minus the
    records (which stream straight into the record sink)."""

    offered: int
    duration_s: float
    wall_s: float
    tenant_of: Dict[str, str]
    usage: Optional[UsageSummary]
    latency: Optional[LatencySummary]
    profile: Dict[str, object]


class StreamingMerge:
    """Online, order-insensitive fold of :class:`CellResult`\\ s.

    ``add`` accepts cells in *any* arrival order (work stealing
    completes them unpredictably) and keeps only two things: the cell's
    record run handed to a pluggable **record sink** (in-memory per-cell
    sorted runs by default, disk-spilled runs when the spec asks — see
    :mod:`repro.parallel.sink`) and a small per-cell residue (counters,
    usage integrals, the latency sample chunk, the tenant map).
    ``finalize`` canonicalizes: residues fold in sorted-cell-key order —
    so float summation order, profile tags, and tenant maps are
    independent of scheduling — and the sink k-way merges its per-cell
    sorted runs by the globally unique ``(submit_time, request_id)``
    key, releasing each run as it drains.  The result is byte-identical
    to the legacy whole-batch merge at every shard/worker/steal order,
    under either sink.

    Memory stays bounded by the sink's policy: the in-memory sink by
    the final merged report, the spilling sink by its record threshold
    — never by whole-shard pickles or a second sort buffer.
    """

    def __init__(
        self,
        trace: InvocationTrace,
        spec: ReplaySpec,
        sink=None,
    ) -> None:
        self._trace = trace
        self._spec = spec
        self.sink = (
            sink
            if sink is not None
            else make_record_sink(getattr(spec, "record_sink", None))
        )
        self._cells: Dict[str, _CellFold] = {}

    def __len__(self) -> int:
        return len(self._cells)

    def add(self, cell: CellResult) -> None:
        """Fold one cell's result; the cell may be garbage-collected
        afterwards (its record list is absorbed, not referenced)."""
        if cell.key in self._cells:
            raise ValueError(f"cell {cell.key!r} already merged")
        self.sink.add(cell.key, cell.records)
        self._cells[cell.key] = _CellFold(
            offered=cell.offered,
            duration_s=cell.duration_s,
            wall_s=cell.wall_s,
            tenant_of=cell.tenant_of,
            usage=cell.usage,
            latency=cell.latency,
            profile=cell.profile,
        )

    def finalize(self) -> ParallelReplayResult:
        """Canonicalize the fold into the deterministic merged report."""
        spec = self._spec
        keys = sorted(self._cells)
        cells = [self._cells[key] for key in keys]
        usage: Optional[UsageSummary] = None
        tenant_of: Dict[str, str] = {}
        for cell in cells:
            tenant_of.update(cell.tenant_of)
            if cell.usage is not None:
                usage = cell.usage if usage is None else usage.merge(cell.usage)
        # The sink needs the full tenant map to aggregate per-tenant
        # breakdowns while the merged stream is still flowing past.
        records, stats = self.sink.finalize(tenant_of)
        latencies = [c.latency for c in cells if c.latency is not None]
        latency = LatencySummary.fold(latencies) if latencies else None
        workflows = stats.workflow_names()
        profile_tags: Dict[str, dict] = {}
        system_name = spec.system_name
        if spec.has_profiles:
            for cell in cells:
                for tenant in sorted(set(cell.tenant_of.values())):
                    profile_tags[tenant] = cell.profile
            # The headline system field must name what actually ran, not
            # the base spec's default a profile may have overridden
            # everywhere.
            systems = sorted(
                {str(cell.profile["system"]) for cell in cells if cell.profile}
            )
            if systems:
                system_name = "+".join(systems)
        return ParallelReplayResult(
            system_name=system_name,
            workflow="+".join(workflows) if workflows else self._trace.name,
            duration_s=max((cell.duration_s for cell in cells), default=0.0),
            offered=sum(cell.offered for cell in cells),
            records=records,
            usage=usage,
            tenant_of=tenant_of,
            cell_count=len(cells),
            cell_wall_s={key: self._cells[key].wall_s for key in keys},
            merged_latency=latency,
            tenant_profile_tags=profile_tags,
            record_stats=stats,
        )


def merge_shard_results(
    shard_results: List[ShardResult],
    trace: InvocationTrace,
    spec: ReplaySpec,
) -> ParallelReplayResult:
    """Fold per-shard cell results into one deterministic merged report.

    A thin wrapper over :class:`StreamingMerge` — the batched and
    streaming engines share one canonical merge, which is what makes
    their reports byte-identical by construction.
    """
    merge = StreamingMerge(trace, spec)
    for shard in shard_results:
        for cell in shard.cells:
            merge.add(cell)
    return merge.finalize()


def _validate(trace: InvocationTrace, spec: ReplaySpec, policy: ShardPolicy) -> None:
    if spec.has_profiles and policy.name != "tenant":
        # Profiles key on tenant cells.  Under other partitions the same
        # tenant's events could run under different profiles depending on
        # which cells they share with other tenants, and the merged
        # per-tenant tags could not describe what actually ran.
        raise ValueError(
            f"tenant profiles require the 'tenant' shard policy, got "
            f"{policy.name!r}"
        )
    if spec.default_app is None and any(e.app is None for e in trace.events):
        raise ValueError(
            f"trace {trace.name!r} has events naming no app and the replay "
            f"spec has no default_app (--app on the CLI)"
        )


def observe_cell_metrics(
    metrics: MetricsRegistry, cell: CellResult, resumed: bool = False
) -> None:
    """Fold one cell's facts into the registry.

    Counts the cell (``resumed`` distinguishes journal-restored residues
    from freshly executed replays), bumps the per-tenant request
    counter, and observes each completed request's end-to-end latency
    into the tenant's histogram — the same samples the merged report's
    per-tenant summaries are built from, so scraped quantiles and
    reported quantiles agree over identical windows.
    """
    metrics.counter(
        "repro_cells_resumed_total" if resumed
        else "repro_cells_completed_total"
    ).inc()
    for record in cell.records:
        tenant = cell.tenant_of.get(record.request_id, cell.key)
        metrics.counter("repro_tenant_requests_total", tenant=tenant).inc()
        if record.completed:
            metrics.histogram(
                "repro_tenant_request_latency_seconds", tenant=tenant
            ).observe(record.latency)


@contextmanager
def _frozen_gc():
    """Freeze the parent heap across worker-pool forks.

    On fork start methods, workers inherit every tracked object the
    parent holds; their first full collections then traverse that
    inherited heap — touching reference counts and copy-on-write
    unsharing pages for objects the worker will never free.  With a
    large parent (a server holding earlier runs' merged records, or a
    benchmark that already replayed once in-process) that churn
    dominates small-cell replays.  ``gc.freeze()`` moves the pre-fork
    heap into the permanent generation, which neither parent nor
    children collections walk; the parent unfreezes once the pool is
    gone, returning its own objects to normal collection.
    """
    gc.freeze()
    try:
        yield
    finally:
        gc.unfreeze()


#: One streamed task: ``(cell key, sub-trace, attempt number)``.
_CellTask = Tuple[str, InvocationTrace, int]


def _stream_cells(
    cells: List[Cell],
    spec: ReplaySpec,
    workers: int,
    fold: Callable[[CellResult], None],
    policy: ShardPolicy,
    retry: RetryPolicy,
    fault_plan: Optional[HostFaultPlan],
    on_cell_failure: str,
    failures: List[CellFailure],
    metrics: Optional[MetricsRegistry] = None,
) -> None:
    """Work-stealing fan-out: one task per cell, folded as completed.

    Cells submit costliest-first (:meth:`ShardPolicy.cell_cost`, key as
    tie-break) — the LPT heuristic — so a skewed tenant starts
    immediately while the small cells pack around it.  Submission runs
    through a sliding window of ``2 * workers`` outstanding tasks: a
    replacement cell is submitted as each result is consumed, so
    workers never starve while the main thread folds, and — unlike
    submitting everything up front, where every completed-but-unfolded
    future would hold its unpickled records — no more than the window's
    worth of cell results ever exists outside the merge.

    The loop survives worker death: when any future raises
    ``BrokenProcessPool``, every in-flight task is re-derived from the
    future→task map, the dead pool is replaced, and the tasks requeue at
    their next attempt number — results that completed before the crash
    have already folded, and re-running the rest is byte-identical.
    Other exceptions charge only their own cell, which retries per
    ``retry`` until its budget runs out and then fails the run
    (``on_cell_failure="fail"``) or lands in ``failures`` (``"skip"``).
    """
    ordered = sorted(
        cells, key=lambda cell: (-policy.cell_cost(cell[1]), cell[0])
    )
    todo: "deque[_CellTask]" = deque(
        (key, cell_trace, 1) for key, cell_trace in ordered
    )
    window = 2 * workers
    initial_fill = min(window, len(ordered))
    submitted = 0
    max_workers = min(workers, len(ordered))

    def handle_failure(task: _CellTask, exc: BaseException) -> None:
        key, cell_trace, attempt = task
        if attempt < retry.max_attempts:
            todo.append((key, cell_trace, attempt + 1))
            if metrics is not None:
                metrics.counter("repro_cell_retries_total").inc()
            return
        failure = CellFailure(
            key=key,
            kind=classify_failure(exc),
            attempts=attempt,
            message=_failure_message(exc),
        )
        if on_cell_failure == "fail":
            raise CellFailedError(failure) from exc
        failures.append(failure)

    with _frozen_gc():
        pool = ProcessPoolExecutor(max_workers=max_workers)
        inflight: Dict[object, _CellTask] = {}
        try:
            while todo or inflight:
                while todo and len(inflight) < window:
                    task = todo.popleft()
                    key, cell_trace, attempt = task
                    try:
                        future = pool.submit(
                            _replay_cell_task,
                            spec, key, cell_trace, attempt, retry, fault_plan,
                        )
                    except BrokenProcessPool:
                        # The pool died between completions.  Requeue the
                        # task unconsumed; if futures are in flight the
                        # wait() below observes the crash and charges
                        # them, otherwise just replace the pool.
                        todo.appendleft(task)
                        if inflight:
                            break
                        # wait=True is cheap on a broken pool (its
                        # workers are gone) and retires the management
                        # thread, so no dead executor machinery lingers
                        # to fire at interpreter exit.
                        pool.shutdown(wait=True)
                        pool = ProcessPoolExecutor(max_workers=max_workers)
                        continue
                    inflight[future] = task
                    submitted += 1
                    # Every submission past the initial window fill is a
                    # steal: a worker that finished early claimed a cell
                    # beyond the LPT window instead of idling behind a
                    # skewed tenant.
                    if submitted > initial_fill and metrics is not None:
                        metrics.counter("repro_cells_stolen_total").inc()
                if not inflight:
                    continue
                done, _ = wait(list(inflight), return_when=FIRST_COMPLETED)
                crashed: List[_CellTask] = []
                broken: Optional[BaseException] = None
                for future in done:
                    task = inflight.pop(future)
                    exc = future.exception()
                    if exc is None:
                        # Fold results that survived before charging any
                        # crash — a completed-but-unfolded result is
                        # still good even when a sibling died.
                        fold(future.result())
                    elif isinstance(exc, BrokenProcessPool):
                        broken = exc
                        crashed.append(task)
                    else:
                        handle_failure(task, exc)
                if broken is not None:
                    crashed.extend(inflight.values())
                    inflight.clear()
                    if metrics is not None:
                        metrics.counter("repro_worker_crashes_total").inc()
                    pool.shutdown(wait=True)
                    pool = ProcessPoolExecutor(max_workers=max_workers)
                    for task in crashed:
                        handle_failure(task, broken)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)


def _serial_stream(
    cells: List[Cell],
    spec: ReplaySpec,
    fold: Callable[[CellResult], None],
    retry: RetryPolicy,
    fault_plan: Optional[HostFaultPlan],
    on_cell_failure: str,
    failures: List[CellFailure],
    metrics: Optional[MetricsRegistry] = None,
) -> None:
    """The in-process serial fold, with full retry/failure semantics.

    Kill faults raise :class:`~repro.parallel.resilience.\
WorkerCrashError` here instead of SIGKILLing (the plan's parent-pid
    guard), so single-worker replays exercise the same classify → retry
    → degrade path the pooled engines do — and the crash-identity
    property holds at ``workers=1``.
    """
    for key, cell_trace in cells:
        attempt = 1
        while True:
            try:
                fold(
                    _replay_cell_task(
                        spec, key, cell_trace, attempt, retry, fault_plan
                    )
                )
                break
            except Exception as exc:
                if metrics is not None and (
                    classify_failure(exc) == "worker-crash"
                ):
                    metrics.counter("repro_worker_crashes_total").inc()
                if attempt < retry.max_attempts:
                    attempt += 1
                    if metrics is not None:
                        metrics.counter("repro_cell_retries_total").inc()
                    continue
                failure = CellFailure(
                    key=key,
                    kind=classify_failure(exc),
                    attempts=attempt,
                    message=_failure_message(exc),
                )
                if on_cell_failure == "fail":
                    raise CellFailedError(failure) from exc
                failures.append(failure)
                break


def _run_shards(
    payloads: List[tuple],
    workers: int,
    fold_shard: Callable[[ShardResult], None],
    retry: RetryPolicy,
    on_cell_failure: str,
    failures: List[CellFailure],
    metrics: Optional[MetricsRegistry] = None,
) -> None:
    """Batched fan-out that survives worker death.

    Cell-level retries live inside :func:`_replay_shard`; this loop
    handles only the failure mode workers cannot handle themselves —
    their own death.  A ``BrokenProcessPool`` resubmits every in-flight
    shard payload at ``attempt_base + 1`` on a fresh pool (completed
    shards already folded; the dead ones' partial work is re-derived
    byte-identically).  A shard whose attempt base passes the retry
    budget converts wholesale into worker-crash cell failures.
    """
    max_workers = min(workers, len(payloads))

    def exhaust(payload: tuple, exc: BaseException) -> None:
        _spec, _index, cells, attempt_base, *_ = payload
        shard_failures = [
            CellFailure(
                key=key,
                kind="worker-crash",
                attempts=attempt_base,
                message=_failure_message(exc),
            )
            for key, _cell_trace in cells
        ]
        if on_cell_failure == "fail":
            raise CellFailedError(shard_failures[0]) from exc
        failures.extend(shard_failures)

    with _frozen_gc():
        pool = ProcessPoolExecutor(max_workers=max_workers)
        inflight: Dict[object, tuple] = {}
        try:
            for payload in payloads:
                inflight[pool.submit(_replay_shard, payload)] = payload
            while inflight:
                done, _ = wait(list(inflight), return_when=FIRST_COMPLETED)
                crashed: List[tuple] = []
                broken: Optional[BaseException] = None
                for future in done:
                    payload = inflight.pop(future)
                    exc = future.exception()
                    if exc is None:
                        fold_shard(future.result())
                    elif isinstance(exc, BrokenProcessPool):
                        broken = exc
                        crashed.append(payload)
                    else:
                        # CellFailedError from a worker's "fail" mode,
                        # or an unexpected host error — both abort.
                        raise exc
                if broken is not None:
                    crashed.extend(inflight.values())
                    inflight.clear()
                    if metrics is not None:
                        metrics.counter("repro_worker_crashes_total").inc()
                    pool.shutdown(wait=True)
                    pool = ProcessPoolExecutor(max_workers=max_workers)
                    for payload in crashed:
                        spec, index, cells, attempt_base, *rest = payload
                        if attempt_base < retry.max_attempts:
                            resubmit = (
                                spec, index, cells, attempt_base + 1, *rest
                            )
                            inflight[
                                pool.submit(_replay_shard, resubmit)
                            ] = resubmit
                            if metrics is not None:
                                metrics.counter(
                                    "repro_cell_retries_total"
                                ).inc(len(cells))
                        else:
                            exhaust(payload, broken)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)


def run_parallel_replay(
    trace: InvocationTrace,
    spec: ReplaySpec,
    shards: int = 1,
    workers: Optional[int] = None,
    policy: Union[str, ShardPolicy] = "tenant",
    stream: bool = True,
    on_cell: Optional[Callable[[CellResult], None]] = None,
    completed_cells: Optional[Iterable[CellResult]] = None,
    metrics: Optional[MetricsRegistry] = None,
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[HostFaultPlan] = None,
    on_cell_failure: str = "fail",
) -> ParallelReplayResult:
    """Replay a trace across worker processes and merge the results.

    ``stream=True`` (the default) runs the cell-granular work-stealing
    scheduler: ``workers`` processes (default ``min(shards,
    cpu_count)``) pull cells from a longest-first queue and results fold
    into the merge as they complete, in whatever order they finish.
    ``stream=False`` runs the legacy static engine: cells pack into
    ``shards`` hash-assigned batches, each replayed whole by one worker
    task.  The merged report depends only on ``(trace, spec, policy)``
    — never on ``shards``, ``workers``, ``stream``, or completion
    order.  At one worker (or one cell) both modes degrade to the same
    in-process serial fold.

    ``on_cell`` is an observation hook: it runs in the parent process
    with each :class:`CellResult` immediately after that cell folds
    into the merge, in completion order (which is scheduling-dependent
    under parallelism — observers must not infer order).  The HTTP
    service streams per-cell progress through it without forking the
    engine.  The hook must treat the cell as read-only; an exception it
    raises aborts the replay.

    ``completed_cells`` is the checkpoint/resume entry point: cells
    already replayed (e.g. rebuilt from a durable run journal via
    :meth:`CellResult.from_payload`) fold straight into the merge and
    are *skipped* by the replay — only the remaining cells execute.
    Because per-cell seeds and the canonical merge order are functions
    of (trace, spec, policy) alone, resuming from any subset of
    completed cells produces a report byte-identical to an
    uninterrupted run.  ``on_cell`` fires only for newly executed
    cells, never for pre-folded ones.  A completed cell whose key is
    not a cell of this trace/policy raises ``ValueError`` (the
    checkpoint belongs to a different run).

    ``metrics`` is an optional
    :class:`~repro.metrics.telemetry.MetricsRegistry` the run
    populates as it goes: cells completed/resumed/stolen, per-tenant
    request counts and latency histograms, and per-phase wall-clock
    (also recorded on the result's :attr:`~ParallelReplayResult.\
phase_wall_s`).  Telemetry never feeds back into the replay, so the
    merged report stays byte-identical with or without a registry.

    ``retry`` (default :class:`RetryPolicy()
    <repro.parallel.resilience.RetryPolicy>`) governs per-cell attempt
    budgets, backoff, and deadlines; ``fault_plan`` deterministically
    injects host faults (tests/chaos harness); ``on_cell_failure``
    picks between aborting on the first exhausted cell (``"fail"``) and
    degrading the report with a ``failed_cells`` section (``"skip"``).
    None of the three perturbs cell seeds or merge order, so a run that
    recovers from every fault stays byte-identical to a fault-free run.
    """
    t_prepare = time.perf_counter()
    if isinstance(policy, str):
        policy = get_shard_policy(policy)
    _validate(trace, spec, policy)
    if workers is None:
        workers = min(shards, os.cpu_count() or 1)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if on_cell_failure not in ON_CELL_FAILURE_MODES:
        raise ValueError(
            f"on_cell_failure must be one of {list(ON_CELL_FAILURE_MODES)}, "
            f"got {on_cell_failure!r}"
        )
    if retry is None:
        retry = RetryPolicy()
    retry.validate()
    if fault_plan is not None:
        fault_plan.validate()
    failures: List[CellFailure] = []
    merge = StreamingMerge(trace, spec)
    skip: set = set()
    if completed_cells is not None:
        for cell in completed_cells:
            merge.add(cell)  # a duplicate key raises here
            skip.add(cell.key)
            if metrics is not None:
                observe_cell_metrics(metrics, cell, resumed=True)
        if skip:
            known = {key for key, _ in policy.split(trace)}
            unknown = sorted(skip - known)
            if unknown:
                raise ValueError(
                    f"completed cells {unknown} are not cells of this "
                    f"trace under the {policy.name!r} policy"
                )

    def fold(cell: CellResult) -> None:
        merge.add(cell)
        if metrics is not None:
            observe_cell_metrics(metrics, cell)
        if on_cell is not None:
            on_cell(cell)

    def fold_shard(shard: ShardResult) -> None:
        for cell in shard.cells:
            fold(cell)
        failures.extend(shard.failures)
        if metrics is not None and shard.retries:
            metrics.counter("repro_cell_retries_total").inc(shard.retries)

    start = time.perf_counter()
    prepare_s = start - t_prepare
    try:
        if stream:
            cells = [
                cell for cell in policy.split(trace) if cell[0] not in skip
            ]
            if workers == 1 or len(cells) <= 1:
                # In-process serial fold with the same retry semantics;
                # kill faults degrade to WorkerCrashError here (the
                # fault plan never SIGKILLs its own parent process).
                _serial_stream(
                    cells, spec, fold, retry, fault_plan,
                    on_cell_failure, failures, metrics,
                )
            else:
                _stream_cells(
                    cells, spec, workers, fold, policy,
                    retry, fault_plan, on_cell_failure, failures,
                    metrics=metrics,
                )
        else:
            batches = [
                [cell for cell in batch if cell[0] not in skip]
                for batch in partition_trace(trace, shards, policy)
            ]
            payloads = [
                (spec, index, cells, 1, retry, fault_plan, on_cell_failure)
                for index, cells in enumerate(batches)
                if cells
            ]
            if workers == 1 or len(payloads) <= 1:
                for payload in payloads:
                    fold_shard(_replay_shard(payload))
            else:
                _run_shards(
                    payloads, workers, fold_shard, retry,
                    on_cell_failure, failures, metrics,
                )
        wall_s = time.perf_counter() - start
        t_finalize = time.perf_counter()
        merged = merge.finalize()
    except BaseException:
        # The sink may hold scratch state (the spilling sink's NDJSON
        # run files); a failed replay must not leak it — retries and
        # subsequent runs would accumulate orphan runs otherwise.
        merge.sink.close()
        raise
    merged.failed_cells = sorted(failures, key=lambda failure: failure.key)
    finalize_s = time.perf_counter() - t_finalize
    merged.policy_name = policy.name
    merged.shards = shards
    merged.workers = workers
    merged.streamed = stream
    merged.wall_s = wall_s
    merged.phase_wall_s = {
        "prepare": prepare_s,
        "execute": wall_s,
        "finalize": finalize_s,
    }
    if metrics is not None:
        for phase, seconds in merged.phase_wall_s.items():
            metrics.histogram("repro_run_phase_seconds", phase=phase).observe(
                seconds
            )
        if merge.sink.spilled_records:
            metrics.counter("repro_records_spilled_total").inc(
                merge.sink.spilled_records
            )
    merged.rss_mb = max_rss_mb()
    return merged


def fold_remote_cells(
    trace: InvocationTrace,
    spec: ReplaySpec,
    outcomes: Iterable[Union[CellResult, CellFailure]],
    policy: Union[str, ShardPolicy] = "tenant",
    on_cell: Optional[Callable[[CellResult], None]] = None,
    completed_cells: Optional[Iterable[CellResult]] = None,
    metrics: Optional[MetricsRegistry] = None,
    on_cell_failure: str = "fail",
) -> ParallelReplayResult:
    """Fold remotely executed cells into the same canonical merged report.

    The remote-fleet entry point (``repro serve --workers remote``):
    cells execute on ``repro worker`` processes elsewhere, and the
    control plane consumes their outcomes — :class:`CellResult` payloads
    delivered over HTTP, or :class:`~repro.parallel.resilience.\
CellFailure` records for cells whose retry budget ran out — from the
    blocking ``outcomes`` iterable.  Everything folds through the exact
    :class:`StreamingMerge` the local engines use, so a fleet replay is
    byte-identical to ``run_parallel_replay`` of the same (trace, spec,
    policy) regardless of worker count, lease order, or worker death.

    ``on_cell``, ``completed_cells`` (journal resume), ``metrics``, and
    ``on_cell_failure`` carry the semantics of
    :func:`run_parallel_replay`: the hook fires per freshly delivered
    cell, resumed cells fold without re-execution, and an exhausted cell
    either aborts the fold (``"fail"`` — a :class:`~repro.parallel.\
resilience.CellFailedError`) or lands in the report's ``failed_cells``
    section (``"skip"``).
    """
    t_prepare = time.perf_counter()
    if isinstance(policy, str):
        policy = get_shard_policy(policy)
    _validate(trace, spec, policy)
    if on_cell_failure not in ON_CELL_FAILURE_MODES:
        raise ValueError(
            f"on_cell_failure must be one of {list(ON_CELL_FAILURE_MODES)}, "
            f"got {on_cell_failure!r}"
        )
    failures: List[CellFailure] = []
    merge = StreamingMerge(trace, spec)
    skip: set = set()
    if completed_cells is not None:
        for cell in completed_cells:
            merge.add(cell)  # a duplicate key raises here
            skip.add(cell.key)
            if metrics is not None:
                observe_cell_metrics(metrics, cell, resumed=True)
        if skip:
            known = {key for key, _ in policy.split(trace)}
            unknown = sorted(skip - known)
            if unknown:
                raise ValueError(
                    f"completed cells {unknown} are not cells of this "
                    f"trace under the {policy.name!r} policy"
                )
    start = time.perf_counter()
    prepare_s = start - t_prepare
    try:
        for outcome in outcomes:
            if isinstance(outcome, CellFailure):
                if on_cell_failure == "fail":
                    raise CellFailedError(outcome)
                failures.append(outcome)
                continue
            merge.add(outcome)
            if metrics is not None:
                observe_cell_metrics(metrics, outcome)
            if on_cell is not None:
                on_cell(outcome)
        wall_s = time.perf_counter() - start
        t_finalize = time.perf_counter()
        merged = merge.finalize()
    except BaseException:
        merge.sink.close()
        raise
    merged.failed_cells = sorted(failures, key=lambda failure: failure.key)
    finalize_s = time.perf_counter() - t_finalize
    merged.policy_name = policy.name
    merged.shards = 1
    merged.workers = 1
    merged.streamed = True
    merged.wall_s = wall_s
    merged.phase_wall_s = {
        "prepare": prepare_s,
        "execute": wall_s,
        "finalize": finalize_s,
    }
    if metrics is not None:
        for phase, seconds in merged.phase_wall_s.items():
            metrics.histogram("repro_run_phase_seconds", phase=phase).observe(
                seconds
            )
        if merge.sink.spilled_records:
            metrics.counter("repro_records_spilled_total").inc(
                merge.sink.spilled_records
            )
    merged.rss_mb = max_rss_mb()
    return merged
