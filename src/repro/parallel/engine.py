"""Sharded trace replay: cells → shards → worker processes → one report.

The pipeline:

1. A :class:`~repro.parallel.policy.ShardPolicy` splits the trace into
   *cells* — independent sub-traces that never interact (per tenant by
   default).  The cell partition depends only on trace + policy.
2. :func:`partition_trace` packs cells into ``shards`` batches by a
   stable hash of the cell key.
3. Each shard replays in a worker process (``ProcessPoolExecutor``) — or
   inline when ``workers == 1`` / ``shards == 1``, the serial fallback.
   A worker rebuilds a fresh simulated world per cell from the picklable
   :class:`~repro.parallel.spec.ReplaySpec` — under the cell tenant's
   resolved :class:`~repro.parallel.profiles.TenantProfile`, so tenants
   may replay on different systems, placements, and clusters — with a
   seed derived from (root seed, cell key, resolved profile), then runs
   the ordinary :func:`~repro.loadgen.trace.run_trace` on the cell's
   events.
4. :func:`merge_shard_results` folds every cell's records, usage
   integrals, and tenant map into one :class:`ParallelReplayResult` in
   sorted-cell-key order.

Because cells, seeds, and the merge order are all independent of the
shard count and worker count, the merged report is bit-identical across
``--shards``/``--workers`` settings — parallelism never changes results,
only wall-clock time.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..loadgen.trace import InvocationTrace, TraceRunResult, run_trace
from ..metrics.latency import LatencySummary, RequestRecord
from ..metrics.usage import UsageSummary
from .policy import ShardPolicy, get_shard_policy, stable_hash
from .spec import ReplaySpec

__all__ = [
    "CellResult",
    "ParallelReplayResult",
    "ShardResult",
    "merge_shard_results",
    "partition_trace",
    "replay_cell",
    "run_parallel_replay",
]

#: One cell: ``(cell key, sub-trace)``.
Cell = Tuple[str, InvocationTrace]


@dataclass
class CellResult:
    """The replay of one cell, ready to cross a process boundary."""

    key: str
    offered: int
    duration_s: float
    records: List[RequestRecord]
    tenant_of: Dict[str, str]
    usage: Optional[UsageSummary]
    latency: Optional[LatencySummary]
    wall_s: float
    #: Audit tag of the resolved tenant profile this cell replayed under
    #: (:meth:`~repro.parallel.spec.ResolvedProfile.tag`).
    profile: Dict[str, object] = field(default_factory=dict)


@dataclass
class ShardResult:
    """Everything one shard (= one worker task) produced."""

    index: int
    cells: List[CellResult]
    wall_s: float


@dataclass
class ParallelReplayResult(TraceRunResult):
    """A merged :class:`TraceRunResult` plus replay-engine bookkeeping.

    ``to_dict`` stays deterministic — it reports the policy and cell
    count (functions of trace + policy alone) but *not* shard/worker
    counts or wall-clock times, so two runs of the same trace at
    different parallelism produce byte-identical reports.  The
    scheduling facts live on the object (:attr:`shards`,
    :attr:`workers`, :attr:`wall_s`, per-cell :attr:`cell_wall_s`) for
    benchmarks and the CLI to surface separately.
    """

    policy_name: str = "tenant"
    cell_count: int = 0
    shards: int = 1
    workers: int = 1
    wall_s: float = 0.0
    cell_wall_s: Dict[str, float] = field(default_factory=dict)
    #: Per-cell latency summaries folded via :meth:`LatencySummary.merge`
    #: in sorted-cell-key order (``None`` when nothing completed).
    merged_latency: Optional[LatencySummary] = None
    #: tenant -> resolved-profile tag, populated only when the spec
    #: carried tenant profiles (heterogeneous replay); functions of
    #: (trace, spec) alone, so including them in reports stays
    #: shard-invariant.
    tenant_profile_tags: Dict[str, dict] = field(default_factory=dict)

    def latency(self) -> LatencySummary:
        """The merged latency summary (falls back to recomputation)."""
        if self.merged_latency is not None:
            return self.merged_latency
        return super().latency()

    def events_per_s(self) -> float:
        """Replayed trace events per wall-clock second (host speed)."""
        return self.offered / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> dict:
        from ..metrics.report import tag_tenant_profiles

        payload = super().to_dict()
        payload["replay"] = {
            "policy": self.policy_name,
            "cells": self.cell_count,
        }
        if self.tenant_profile_tags:
            payload["replay"]["profiles"] = {
                tenant: dict(tag)
                for tenant, tag in sorted(self.tenant_profile_tags.items())
            }
            tag_tenant_profiles(payload, self.tenant_profile_tags)
        return payload


def partition_trace(
    trace: InvocationTrace,
    shards: int,
    policy: Union[str, ShardPolicy] = "tenant",
) -> List[List[Cell]]:
    """Split a trace into ``shards`` batches of policy-defined cells.

    Cells assign to shards by a stable hash of their key, so the same
    trace + policy + shard count always yields the same batches; some
    batches may be empty when cells are fewer than shards.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if isinstance(policy, str):
        policy = get_shard_policy(policy)
    batches: List[List[Cell]] = [[] for _ in range(shards)]
    for key, cell_trace in policy.split(trace):
        batches[stable_hash(f"shard-of:{key}") % shards].append((key, cell_trace))
    return batches


def replay_cell(spec: ReplaySpec, key: str, cell_trace: InvocationTrace) -> CellResult:
    """Replay one cell in a fresh world built from the spec.

    The cell replays under its tenant's resolved profile: system,
    placement, cluster, and request defaults may all differ per tenant
    (heterogeneous tenancy), but resolution is a pure function of
    (spec, cell), so shard invariance is preserved.
    """
    start = time.perf_counter()
    resolved = spec.resolve(key, cell_trace)
    setup = spec.build_setup(cell_trace, key, resolved=resolved)
    # Cell-qualified request ids stay unique in the merged record stream.
    setup.system.request_id_prefix = f"{key}/"
    result = run_trace(
        setup.system,
        cell_trace,
        default_app=spec.default_app,
        timeout_s=resolved.timeout_s,
        input_bytes=resolved.input_bytes,
        fanout=resolved.fanout,
    )
    return CellResult(
        key=key,
        offered=result.offered,
        duration_s=result.duration_s,
        records=result.records,
        tenant_of=result.tenant_of,
        usage=result.usage,
        latency=result.latency() if result.completed else None,
        wall_s=time.perf_counter() - start,
        profile=resolved.tag(),
    )


def _replay_shard(payload: Tuple[ReplaySpec, int, List[Cell]]) -> ShardResult:
    """Worker entry point: replay one shard's cells back to back."""
    spec, index, cells = payload
    start = time.perf_counter()
    results = [replay_cell(spec, key, cell_trace) for key, cell_trace in cells]
    return ShardResult(
        index=index, cells=results, wall_s=time.perf_counter() - start
    )


def merge_shard_results(
    shard_results: List[ShardResult],
    trace: InvocationTrace,
    spec: ReplaySpec,
) -> ParallelReplayResult:
    """Fold per-shard cell results into one deterministic merged report.

    Cells merge in sorted-key order — latency summaries fold through
    :meth:`LatencySummary.merge`, usage integrals through
    :meth:`UsageSummary.merge` — and records sort by
    ``(submit_time, request_id)``, so the result — including
    float-summation order inside the merged summaries — is independent
    of how cells were batched into shards or which worker finished
    first.
    """
    cells = sorted(
        (cell for shard in shard_results for cell in shard.cells),
        key=lambda cell: cell.key,
    )
    records = [record for cell in cells for record in cell.records]
    records.sort(key=lambda record: (record.submit_time, record.request_id))
    usage: Optional[UsageSummary] = None
    latency: Optional[LatencySummary] = None
    tenant_of: Dict[str, str] = {}
    for cell in cells:
        tenant_of.update(cell.tenant_of)
        if cell.usage is not None:
            usage = cell.usage if usage is None else usage.merge(cell.usage)
        if cell.latency is not None:
            latency = (
                cell.latency if latency is None else latency.merge(cell.latency)
            )
    workflows = sorted({record.workflow for record in records})
    profile_tags: Dict[str, dict] = {}
    system_name = spec.system_name
    if spec.has_profiles:
        for cell in cells:
            for tenant in sorted(set(cell.tenant_of.values())):
                profile_tags[tenant] = cell.profile
        # The headline system field must name what actually ran, not the
        # base spec's default a profile may have overridden everywhere.
        systems = sorted(
            {str(cell.profile["system"]) for cell in cells if cell.profile}
        )
        if systems:
            system_name = "+".join(systems)
    return ParallelReplayResult(
        system_name=system_name,
        workflow="+".join(workflows) if workflows else trace.name,
        duration_s=max((cell.duration_s for cell in cells), default=0.0),
        offered=sum(cell.offered for cell in cells),
        records=records,
        usage=usage,
        tenant_of=tenant_of,
        cell_count=len(cells),
        cell_wall_s={cell.key: cell.wall_s for cell in cells},
        merged_latency=latency,
        tenant_profile_tags=profile_tags,
    )


def run_parallel_replay(
    trace: InvocationTrace,
    spec: ReplaySpec,
    shards: int = 1,
    workers: Optional[int] = None,
    policy: Union[str, ShardPolicy] = "tenant",
) -> ParallelReplayResult:
    """Replay a trace sharded across worker processes and merge results.

    ``workers`` defaults to ``min(shards, cpu_count)``; the run falls
    back to the in-process serial path at one shard or one worker.  The
    merged report depends only on ``(trace, spec, policy)``.
    """
    if isinstance(policy, str):
        policy = get_shard_policy(policy)
    if spec.has_profiles and policy.name != "tenant":
        # Profiles key on tenant cells.  Under other partitions the same
        # tenant's events could run under different profiles depending on
        # which cells they share with other tenants, and the merged
        # per-tenant tags could not describe what actually ran.
        raise ValueError(
            f"tenant profiles require the 'tenant' shard policy, got "
            f"{policy.name!r}"
        )
    if spec.default_app is None and any(e.app is None for e in trace.events):
        raise ValueError(
            f"trace {trace.name!r} has events naming no app and the replay "
            f"spec has no default_app (--app on the CLI)"
        )
    if workers is None:
        workers = min(shards, os.cpu_count() or 1)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    batches = partition_trace(trace, shards, policy)
    payloads = [
        (spec, index, cells)
        for index, cells in enumerate(batches)
        if cells
    ]
    start = time.perf_counter()
    if workers == 1 or len(payloads) <= 1:
        shard_results = [_replay_shard(payload) for payload in payloads]
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(payloads))) as pool:
            shard_results = list(pool.map(_replay_shard, payloads))
    wall_s = time.perf_counter() - start
    merged = merge_shard_results(shard_results, trace, spec)
    merged.policy_name = policy.name
    merged.shards = shards
    merged.workers = workers
    merged.wall_s = wall_s
    return merged
