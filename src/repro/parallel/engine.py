"""Streaming work-stealing trace replay: cells → workers → one report.

The pipeline:

1. A :class:`~repro.parallel.policy.ShardPolicy` splits the trace into
   *cells* — independent sub-traces that never interact (per tenant by
   default).  The cell partition depends only on trace + policy.
2. The **streaming engine** (default) submits cells individually to a
   ``ProcessPoolExecutor`` via ``submit()``, costliest cell first,
   through a sliding window of ``2 * workers`` outstanding tasks, and
   consumes :class:`CellResult`\\ s as they complete.  Workers pull the
   next cell the moment they finish one — fast workers steal the
   remaining queue instead of idling behind a skewed tenant, so the
   makespan approaches LPT-optimal regardless of how skewed the cells
   are.  Each result folds into an online :class:`StreamingMerge` as it
   arrives and is then dropped, so peak memory is bounded by the final
   merged report plus the window's worth of in-flight cells — never by
   whole-shard pickles.
3. The **batched engine** (``stream=False``, the pre-streaming
   behavior) packs cells into ``shards`` batches by a stable hash of
   the cell key (:func:`partition_trace`) and replays each batch back
   to back in one worker task.  It survives as the measured baseline
   work-stealing is benchmarked against.
4. Both paths fold through the same :class:`StreamingMerge`, which
   accepts cells in *any* arrival order and canonicalizes at
   :meth:`~StreamingMerge.finalize`: per-cell summaries fold in
   sorted-cell-key order (so even float-summation order is
   deterministic) and records sort by ``(submit_time, request_id)``.

A worker rebuilds a fresh simulated world per cell from the picklable
:class:`~repro.parallel.spec.ReplaySpec` — under the cell tenant's
resolved :class:`~repro.parallel.profiles.TenantProfile`, so tenants
may replay on different systems, placements, and clusters — with a
seed derived from (root seed, cell key, resolved profile), then runs
the ordinary :func:`~repro.loadgen.trace.run_trace` on the cell's
events.

Because cells, seeds, and the canonical merge order are all independent
of shard count, worker count, and completion order, the merged report
is bit-identical across ``--shards``/``--workers``/``--stream``
settings — parallelism and scheduling never change results, only
wall-clock time and memory.
"""

from __future__ import annotations

import gc
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from itertools import islice
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from ..loadgen.trace import InvocationTrace, TraceRunResult, run_trace
from ..metrics.latency import LatencySummary, RequestRecord
from ..metrics.telemetry import MetricsRegistry
from ..metrics.usage import UsageSummary
from .policy import ShardPolicy, get_shard_policy, stable_hash
from .sink import (
    RecordAggregate,
    make_record_sink,
    record_from_payload,
    record_to_payload,
)
from .spec import ReplaySpec

__all__ = [
    "CellResult",
    "ParallelReplayResult",
    "ShardResult",
    "StreamingMerge",
    "max_rss_mb",
    "merge_shard_results",
    "partition_trace",
    "replay_cell",
    "run_parallel_replay",
]

#: One cell: ``(cell key, sub-trace)``.
Cell = Tuple[str, InvocationTrace]


@dataclass
class CellResult:
    """The replay of one cell, ready to cross a process boundary."""

    key: str
    offered: int
    duration_s: float
    records: List[RequestRecord]
    tenant_of: Dict[str, str]
    usage: Optional[UsageSummary]
    latency: Optional[LatencySummary]
    wall_s: float
    #: Audit tag of the resolved tenant profile this cell replayed under
    #: (:meth:`~repro.parallel.spec.ResolvedProfile.tag`).
    profile: Dict[str, object] = field(default_factory=dict)

    def to_payload(self) -> dict:
        """This cell as a JSON-ready dict that round-trips exactly.

        The durable run journal (``repro serve --journal``) persists one
        payload per completed cell; :meth:`from_payload` rebuilds a
        :class:`CellResult` whose fold through :class:`StreamingMerge`
        is byte-identical to folding the original — Python floats
        round-trip exactly through JSON (shortest-repr), latency
        summaries keep their sample arrays in record order, and records
        keep their task timelines.
        """
        return {
            "key": self.key,
            "offered": self.offered,
            "duration_s": self.duration_s,
            "wall_s": self.wall_s,
            "tenant_of": dict(self.tenant_of),
            "profile": dict(self.profile),
            "usage": None if self.usage is None else {
                "memory_gbs": self.usage.memory_gbs,
                "cache_mbs": self.usage.cache_mbs,
                "completed_requests": self.usage.completed_requests,
            },
            "latency": (
                None if self.latency is None
                else list(self.latency.samples)
            ),
            "records": [
                record_to_payload(record) for record in self.records
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CellResult":
        """Rebuild a :class:`CellResult` from :meth:`to_payload` output."""
        usage = payload.get("usage")
        latency = payload.get("latency")
        return cls(
            key=payload["key"],
            offered=payload["offered"],
            duration_s=payload["duration_s"],
            wall_s=payload["wall_s"],
            tenant_of=dict(payload["tenant_of"]),
            profile=dict(payload.get("profile") or {}),
            usage=None if usage is None else UsageSummary(**usage),
            latency=(
                None if latency is None
                else LatencySummary(samples=tuple(latency))
            ),
            records=[
                record_from_payload(record) for record in payload["records"]
            ],
        )


@dataclass
class ShardResult:
    """Everything one shard (= one batched worker task) produced."""

    index: int
    cells: List[CellResult]
    wall_s: float


@dataclass
class ParallelReplayResult(TraceRunResult):
    """A merged :class:`TraceRunResult` plus replay-engine bookkeeping.

    ``to_dict`` stays deterministic — it reports the policy and cell
    count (functions of trace + policy alone) but *not* shard/worker
    counts, scheduling mode, or wall-clock times, so two runs of the
    same trace at different parallelism produce byte-identical reports.
    The scheduling facts live on the object (:attr:`shards`,
    :attr:`workers`, :attr:`streamed`, :attr:`wall_s`, :attr:`rss_mb`,
    per-cell :attr:`cell_wall_s`) for benchmarks and the CLI to surface
    separately.
    """

    policy_name: str = "tenant"
    cell_count: int = 0
    shards: int = 1
    workers: int = 1
    #: Whether the streaming work-stealing scheduler ran (vs the static
    #: hash-batched baseline).  Scheduling detail only — never reported.
    streamed: bool = True
    wall_s: float = 0.0
    #: Parent-process peak RSS after the run, MB — where merge/pickle
    #: memory lives (a high-water mark including everything the host
    #: process did before the replay; 0.0 when unmeasurable).
    rss_mb: float = 0.0
    #: Wall-clock per engine phase: ``prepare`` (validation, checkpoint
    #: folding, cell partition), ``execute`` (the replay itself),
    #: ``finalize`` (the canonical merge).  Scheduling facts — kept out
    #: of the deterministic report, surfaced via telemetry gauges.
    phase_wall_s: Dict[str, float] = field(default_factory=dict)
    cell_wall_s: Dict[str, float] = field(default_factory=dict)
    #: Per-cell latency summaries folded via :meth:`LatencySummary.fold`
    #: in sorted-cell-key order (``None`` when nothing completed).
    merged_latency: Optional[LatencySummary] = None
    #: tenant -> resolved-profile tag, populated only when the spec
    #: carried tenant profiles (heterogeneous replay); functions of
    #: (trace, spec) alone, so including them in reports stays
    #: shard-invariant.
    tenant_profile_tags: Dict[str, dict] = field(default_factory=dict)
    #: Streaming aggregate the record sink folded in canonical merge
    #: order.  When present, ``to_dict`` renders the record-derived
    #: report sections from it instead of re-scanning :attr:`records` —
    #: which is what lets a disk-spilled result report without reading
    #: its records back into RAM.  The aggregate observes records in the
    #: exact order an in-memory scan would, so both paths are
    #: byte-identical.
    record_stats: Optional[RecordAggregate] = None

    def latency(self) -> LatencySummary:
        """The merged latency summary (falls back to recomputation)."""
        if self.merged_latency is not None:
            return self.merged_latency
        return super().latency()

    def events_per_s(self) -> float:
        """Replayed trace events per wall-clock second (host speed)."""
        return self.offered / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> dict:
        from ..metrics.report import tag_tenant_profiles

        if self.record_stats is not None:
            payload = self.record_stats.report_payload(
                system=self.system_name,
                workflow=self.workflow,
                duration_s=self.duration_s,
                offered=self.offered,
                latency=self.merged_latency,
                usage=self.usage,
            )
        else:
            payload = super().to_dict()
        payload["replay"] = {
            "policy": self.policy_name,
            "cells": self.cell_count,
        }
        if self.tenant_profile_tags:
            payload["replay"]["profiles"] = {
                tenant: dict(tag)
                for tenant, tag in sorted(self.tenant_profile_tags.items())
            }
            tag_tenant_profiles(payload, self.tenant_profile_tags)
        return payload


def max_rss_mb() -> float:
    """Peak RSS high-water mark of *this* process, in MB.

    Parent-side only, deliberately: the merge memory — whole-shard
    pickle buffers versus streamed per-cell results — lives in the
    parent, while each worker holds one cell world under either engine.
    (``RUSAGE_CHILDREN``'s ``ru_maxrss`` is the max over any single
    reaped child, not a sum, so folding it in would only blur the
    signal.)  ``getrusage`` reports kilobytes on Linux and bytes on
    macOS; 0.0 on platforms without the ``resource`` module (Windows).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0.0
    import sys

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    scale = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    return peak / scale


def partition_trace(
    trace: InvocationTrace,
    shards: int,
    policy: Union[str, ShardPolicy] = "tenant",
) -> List[List[Cell]]:
    """Split a trace into ``shards`` batches of policy-defined cells.

    Cells assign to shards by a stable hash of their key, so the same
    trace + policy + shard count always yields the same batches; some
    batches may be empty when cells are fewer than shards.  This static
    assignment is the batched (``stream=False``) engine's unit of work
    distribution — the streaming engine schedules cells individually
    instead.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if isinstance(policy, str):
        policy = get_shard_policy(policy)
    batches: List[List[Cell]] = [[] for _ in range(shards)]
    for key, cell_trace in policy.split(trace):
        batches[stable_hash(f"shard-of:{key}") % shards].append((key, cell_trace))
    return batches


def replay_cell(spec: ReplaySpec, key: str, cell_trace: InvocationTrace) -> CellResult:
    """Replay one cell in a fresh world built from the spec.

    The cell replays under its tenant's resolved profile: system,
    placement, cluster, and request defaults may all differ per tenant
    (heterogeneous tenancy), but resolution is a pure function of
    (spec, cell), so shard invariance is preserved.
    """
    start = time.perf_counter()
    resolved = spec.resolve(key, cell_trace)
    setup = spec.build_setup(cell_trace, key, resolved=resolved)
    # Cell-qualified request ids stay unique in the merged record stream.
    setup.system.request_id_prefix = f"{key}/"
    result = run_trace(
        setup.system,
        cell_trace,
        default_app=spec.default_app,
        timeout_s=resolved.timeout_s,
        input_bytes=resolved.input_bytes,
        fanout=resolved.fanout,
    )
    return CellResult(
        key=key,
        offered=result.offered,
        duration_s=result.duration_s,
        records=result.records,
        tenant_of=result.tenant_of,
        usage=result.usage,
        latency=result.latency() if result.completed else None,
        wall_s=time.perf_counter() - start,
        profile=resolved.tag(),
    )


def _replay_shard(payload: Tuple[ReplaySpec, int, List[Cell]]) -> ShardResult:
    """Batched worker entry point: replay one shard's cells back to back."""
    spec, index, cells = payload
    start = time.perf_counter()
    results = [replay_cell(spec, key, cell_trace) for key, cell_trace in cells]
    return ShardResult(
        index=index, cells=results, wall_s=time.perf_counter() - start
    )


@dataclass
class _CellFold:
    """The bounded-size residue one folded cell leaves behind: every
    per-cell quantity whose canonical merge order matters, minus the
    records (which stream straight into the record sink)."""

    offered: int
    duration_s: float
    wall_s: float
    tenant_of: Dict[str, str]
    usage: Optional[UsageSummary]
    latency: Optional[LatencySummary]
    profile: Dict[str, object]


class StreamingMerge:
    """Online, order-insensitive fold of :class:`CellResult`\\ s.

    ``add`` accepts cells in *any* arrival order (work stealing
    completes them unpredictably) and keeps only two things: the cell's
    record run handed to a pluggable **record sink** (in-memory per-cell
    sorted runs by default, disk-spilled runs when the spec asks — see
    :mod:`repro.parallel.sink`) and a small per-cell residue (counters,
    usage integrals, the latency sample chunk, the tenant map).
    ``finalize`` canonicalizes: residues fold in sorted-cell-key order —
    so float summation order, profile tags, and tenant maps are
    independent of scheduling — and the sink k-way merges its per-cell
    sorted runs by the globally unique ``(submit_time, request_id)``
    key, releasing each run as it drains.  The result is byte-identical
    to the legacy whole-batch merge at every shard/worker/steal order,
    under either sink.

    Memory stays bounded by the sink's policy: the in-memory sink by
    the final merged report, the spilling sink by its record threshold
    — never by whole-shard pickles or a second sort buffer.
    """

    def __init__(
        self,
        trace: InvocationTrace,
        spec: ReplaySpec,
        sink=None,
    ) -> None:
        self._trace = trace
        self._spec = spec
        self.sink = (
            sink
            if sink is not None
            else make_record_sink(getattr(spec, "record_sink", None))
        )
        self._cells: Dict[str, _CellFold] = {}

    def __len__(self) -> int:
        return len(self._cells)

    def add(self, cell: CellResult) -> None:
        """Fold one cell's result; the cell may be garbage-collected
        afterwards (its record list is absorbed, not referenced)."""
        if cell.key in self._cells:
            raise ValueError(f"cell {cell.key!r} already merged")
        self.sink.add(cell.key, cell.records)
        self._cells[cell.key] = _CellFold(
            offered=cell.offered,
            duration_s=cell.duration_s,
            wall_s=cell.wall_s,
            tenant_of=cell.tenant_of,
            usage=cell.usage,
            latency=cell.latency,
            profile=cell.profile,
        )

    def finalize(self) -> ParallelReplayResult:
        """Canonicalize the fold into the deterministic merged report."""
        spec = self._spec
        keys = sorted(self._cells)
        cells = [self._cells[key] for key in keys]
        usage: Optional[UsageSummary] = None
        tenant_of: Dict[str, str] = {}
        for cell in cells:
            tenant_of.update(cell.tenant_of)
            if cell.usage is not None:
                usage = cell.usage if usage is None else usage.merge(cell.usage)
        # The sink needs the full tenant map to aggregate per-tenant
        # breakdowns while the merged stream is still flowing past.
        records, stats = self.sink.finalize(tenant_of)
        latencies = [c.latency for c in cells if c.latency is not None]
        latency = LatencySummary.fold(latencies) if latencies else None
        workflows = stats.workflow_names()
        profile_tags: Dict[str, dict] = {}
        system_name = spec.system_name
        if spec.has_profiles:
            for cell in cells:
                for tenant in sorted(set(cell.tenant_of.values())):
                    profile_tags[tenant] = cell.profile
            # The headline system field must name what actually ran, not
            # the base spec's default a profile may have overridden
            # everywhere.
            systems = sorted(
                {str(cell.profile["system"]) for cell in cells if cell.profile}
            )
            if systems:
                system_name = "+".join(systems)
        return ParallelReplayResult(
            system_name=system_name,
            workflow="+".join(workflows) if workflows else self._trace.name,
            duration_s=max((cell.duration_s for cell in cells), default=0.0),
            offered=sum(cell.offered for cell in cells),
            records=records,
            usage=usage,
            tenant_of=tenant_of,
            cell_count=len(cells),
            cell_wall_s={key: self._cells[key].wall_s for key in keys},
            merged_latency=latency,
            tenant_profile_tags=profile_tags,
            record_stats=stats,
        )


def merge_shard_results(
    shard_results: List[ShardResult],
    trace: InvocationTrace,
    spec: ReplaySpec,
) -> ParallelReplayResult:
    """Fold per-shard cell results into one deterministic merged report.

    A thin wrapper over :class:`StreamingMerge` — the batched and
    streaming engines share one canonical merge, which is what makes
    their reports byte-identical by construction.
    """
    merge = StreamingMerge(trace, spec)
    for shard in shard_results:
        for cell in shard.cells:
            merge.add(cell)
    return merge.finalize()


def _validate(trace: InvocationTrace, spec: ReplaySpec, policy: ShardPolicy) -> None:
    if spec.has_profiles and policy.name != "tenant":
        # Profiles key on tenant cells.  Under other partitions the same
        # tenant's events could run under different profiles depending on
        # which cells they share with other tenants, and the merged
        # per-tenant tags could not describe what actually ran.
        raise ValueError(
            f"tenant profiles require the 'tenant' shard policy, got "
            f"{policy.name!r}"
        )
    if spec.default_app is None and any(e.app is None for e in trace.events):
        raise ValueError(
            f"trace {trace.name!r} has events naming no app and the replay "
            f"spec has no default_app (--app on the CLI)"
        )


def observe_cell_metrics(
    metrics: MetricsRegistry, cell: CellResult, resumed: bool = False
) -> None:
    """Fold one cell's facts into the registry.

    Counts the cell (``resumed`` distinguishes journal-restored residues
    from freshly executed replays), bumps the per-tenant request
    counter, and observes each completed request's end-to-end latency
    into the tenant's histogram — the same samples the merged report's
    per-tenant summaries are built from, so scraped quantiles and
    reported quantiles agree over identical windows.
    """
    metrics.counter(
        "repro_cells_resumed_total" if resumed
        else "repro_cells_completed_total"
    ).inc()
    for record in cell.records:
        tenant = cell.tenant_of.get(record.request_id, cell.key)
        metrics.counter("repro_tenant_requests_total", tenant=tenant).inc()
        if record.completed:
            metrics.histogram(
                "repro_tenant_request_latency_seconds", tenant=tenant
            ).observe(record.latency)


@contextmanager
def _frozen_gc():
    """Freeze the parent heap across worker-pool forks.

    On fork start methods, workers inherit every tracked object the
    parent holds; their first full collections then traverse that
    inherited heap — touching reference counts and copy-on-write
    unsharing pages for objects the worker will never free.  With a
    large parent (a server holding earlier runs' merged records, or a
    benchmark that already replayed once in-process) that churn
    dominates small-cell replays.  ``gc.freeze()`` moves the pre-fork
    heap into the permanent generation, which neither parent nor
    children collections walk; the parent unfreezes once the pool is
    gone, returning its own objects to normal collection.
    """
    gc.freeze()
    try:
        yield
    finally:
        gc.unfreeze()


def _stream_cells(
    cells: List[Cell],
    spec: ReplaySpec,
    workers: int,
    fold: Callable[[CellResult], None],
    policy: ShardPolicy,
    metrics: Optional[MetricsRegistry] = None,
) -> None:
    """Work-stealing fan-out: one task per cell, folded as completed.

    Cells submit costliest-first (:meth:`ShardPolicy.cell_cost`, key as
    tie-break) — the LPT heuristic — so a skewed tenant starts
    immediately while the small cells pack around it.  Submission runs
    through a sliding window of ``2 * workers`` outstanding tasks: a
    replacement cell is submitted as each result is consumed, so
    workers never starve while the main thread folds, and — unlike
    submitting everything up front, where every completed-but-unfolded
    future would hold its unpickled records — no more than the window's
    worth of cell results ever exists outside the merge.
    """
    ordered = sorted(
        cells, key=lambda cell: (-policy.cell_cost(cell[1]), cell[0])
    )
    queue = iter(ordered)
    window = 2 * workers
    with _frozen_gc(), ProcessPoolExecutor(
        max_workers=min(workers, len(ordered))
    ) as pool:
        pending = {
            pool.submit(replay_cell, spec, key, cell_trace)
            for key, cell_trace in islice(queue, window)
        }
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                # Refill the window before folding so the pool stays fed.
                # Every refill is a steal: a worker that finished early
                # claimed a cell beyond the initial LPT window instead
                # of idling behind a skewed tenant.
                for key, cell_trace in islice(queue, 1):
                    pending.add(pool.submit(replay_cell, spec, key, cell_trace))
                    if metrics is not None:
                        metrics.counter("repro_cells_stolen_total").inc()
                fold(future.result())


def run_parallel_replay(
    trace: InvocationTrace,
    spec: ReplaySpec,
    shards: int = 1,
    workers: Optional[int] = None,
    policy: Union[str, ShardPolicy] = "tenant",
    stream: bool = True,
    on_cell: Optional[Callable[[CellResult], None]] = None,
    completed_cells: Optional[Iterable[CellResult]] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> ParallelReplayResult:
    """Replay a trace across worker processes and merge the results.

    ``stream=True`` (the default) runs the cell-granular work-stealing
    scheduler: ``workers`` processes (default ``min(shards,
    cpu_count)``) pull cells from a longest-first queue and results fold
    into the merge as they complete, in whatever order they finish.
    ``stream=False`` runs the legacy static engine: cells pack into
    ``shards`` hash-assigned batches, each replayed whole by one worker
    task.  The merged report depends only on ``(trace, spec, policy)``
    — never on ``shards``, ``workers``, ``stream``, or completion
    order.  At one worker (or one cell) both modes degrade to the same
    in-process serial fold.

    ``on_cell`` is an observation hook: it runs in the parent process
    with each :class:`CellResult` immediately after that cell folds
    into the merge, in completion order (which is scheduling-dependent
    under parallelism — observers must not infer order).  The HTTP
    service streams per-cell progress through it without forking the
    engine.  The hook must treat the cell as read-only; an exception it
    raises aborts the replay.

    ``completed_cells`` is the checkpoint/resume entry point: cells
    already replayed (e.g. rebuilt from a durable run journal via
    :meth:`CellResult.from_payload`) fold straight into the merge and
    are *skipped* by the replay — only the remaining cells execute.
    Because per-cell seeds and the canonical merge order are functions
    of (trace, spec, policy) alone, resuming from any subset of
    completed cells produces a report byte-identical to an
    uninterrupted run.  ``on_cell`` fires only for newly executed
    cells, never for pre-folded ones.  A completed cell whose key is
    not a cell of this trace/policy raises ``ValueError`` (the
    checkpoint belongs to a different run).

    ``metrics`` is an optional
    :class:`~repro.metrics.telemetry.MetricsRegistry` the run
    populates as it goes: cells completed/resumed/stolen, per-tenant
    request counts and latency histograms, and per-phase wall-clock
    (also recorded on the result's :attr:`~ParallelReplayResult.\
phase_wall_s`).  Telemetry never feeds back into the replay, so the
    merged report stays byte-identical with or without a registry.
    """
    t_prepare = time.perf_counter()
    if isinstance(policy, str):
        policy = get_shard_policy(policy)
    _validate(trace, spec, policy)
    if workers is None:
        workers = min(shards, os.cpu_count() or 1)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    merge = StreamingMerge(trace, spec)
    skip: set = set()
    if completed_cells is not None:
        for cell in completed_cells:
            merge.add(cell)  # a duplicate key raises here
            skip.add(cell.key)
            if metrics is not None:
                observe_cell_metrics(metrics, cell, resumed=True)
        if skip:
            known = {key for key, _ in policy.split(trace)}
            unknown = sorted(skip - known)
            if unknown:
                raise ValueError(
                    f"completed cells {unknown} are not cells of this "
                    f"trace under the {policy.name!r} policy"
                )

    def fold(cell: CellResult) -> None:
        merge.add(cell)
        if metrics is not None:
            observe_cell_metrics(metrics, cell)
        if on_cell is not None:
            on_cell(cell)

    start = time.perf_counter()
    prepare_s = start - t_prepare
    if stream:
        cells = [
            cell for cell in policy.split(trace) if cell[0] not in skip
        ]
        if workers == 1 or len(cells) <= 1:
            for key, cell_trace in cells:
                fold(replay_cell(spec, key, cell_trace))
        else:
            _stream_cells(cells, spec, workers, fold, policy, metrics=metrics)
    else:
        batches = [
            [cell for cell in batch if cell[0] not in skip]
            for batch in partition_trace(trace, shards, policy)
        ]
        payloads = [
            (spec, index, cells)
            for index, cells in enumerate(batches)
            if cells
        ]
        if workers == 1 or len(payloads) <= 1:
            for payload in payloads:
                for cell in _replay_shard(payload).cells:
                    fold(cell)
        else:
            with _frozen_gc(), ProcessPoolExecutor(
                max_workers=min(workers, len(payloads))
            ) as pool:
                for shard in pool.map(_replay_shard, payloads):
                    for cell in shard.cells:
                        fold(cell)
    wall_s = time.perf_counter() - start
    t_finalize = time.perf_counter()
    merged = merge.finalize()
    finalize_s = time.perf_counter() - t_finalize
    merged.policy_name = policy.name
    merged.shards = shards
    merged.workers = workers
    merged.streamed = stream
    merged.wall_s = wall_s
    merged.phase_wall_s = {
        "prepare": prepare_s,
        "execute": wall_s,
        "finalize": finalize_s,
    }
    if metrics is not None:
        for phase, seconds in merged.phase_wall_s.items():
            metrics.histogram("repro_run_phase_seconds", phase=phase).observe(
                seconds
            )
        if merge.sink.spilled_records:
            metrics.counter("repro_records_spilled_total").inc(
                merge.sink.spilled_records
            )
    merged.rss_mb = max_rss_mb()
    return merged
