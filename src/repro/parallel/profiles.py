"""Tenant profiles: heterogeneous per-cell configuration for replay.

DataFlower's evaluation co-locates workflows with very different
resource profiles (Figure 18); real multi-tenant platforms likewise give
each tenant its own execution system, placement policy, and limits.  The
sharded replay engine already gives every tenant its own world (cell);
this module adds the *configuration* side: a :class:`TenantProfile`
describes how one tenant's world differs from the base
:class:`~repro.parallel.spec.ReplaySpec`, and a :class:`TenantConfig`
holds a default profile plus per-tenant overrides, loadable from a JSON
or YAML-lite file (``repro replay --tenant-config``).

Precedence, most specific wins::

    ReplaySpec base  <  TenantConfig default profile  <  tenants[<id>]

A layer that switches the execution system discards system-config
overrides accumulated for the previous system (they target a different
config class).  Profile resolution is a pure function of (spec, cell),
so heterogeneous replays keep the engine's guarantee: merged reports are
bit-identical at any ``--shards``/``--workers`` setting.

Everything validates eagerly against the system/placement registries via
:meth:`TenantConfig.validate`, so a bad profile fails fast in the CLI
with the tenant's name — never deep inside a worker process.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..cluster.cluster import ClusterConfig
from ..workflow.dsl import parse_size

__all__ = [
    "TenantConfig",
    "TenantProfile",
    "TenantProfileError",
    "parse_yaml_lite",
    "validated_tenant_config",
]


class TenantProfileError(ValueError):
    """A bad tenant profile; the message names the offending tenant."""


#: Recognized keys in a profile mapping (config-file schema).
_PROFILE_KEYS = {
    "system",
    "placement",
    "timeout_s",
    "input_bytes",
    "fanout",
    "system_overrides",
    "cluster",
    "max_concurrent_runs",
}


@dataclass(frozen=True)
class TenantProfile:
    """How one tenant's replay world differs from the base spec.

    Every field defaults to ``None`` = "inherit from the layer below"
    (the config file's default profile, then the :class:`ReplaySpec`).
    """

    #: Execution system registry name (``repro systems``).
    system: Optional[str] = None
    #: Placement policy spec (``round_robin``, ``hashed``, ``offset:<n>``).
    placement: Optional[str] = None
    #: Per-request timeout for this tenant's cells.
    timeout_s: Optional[float] = None
    #: Input-size default for events carrying none.
    input_bytes: Optional[float] = None
    #: Fan-out default for events carrying none.
    fanout: Optional[int] = None
    #: System-config overrides (picklable scalars keyed by config field).
    system_overrides: Optional[Dict[str, object]] = None
    #: :class:`~repro.cluster.cluster.ClusterConfig` field overrides.
    cluster_overrides: Optional[Dict[str, object]] = None
    #: Admission-control quota: how many of this tenant's runs may be
    #: queued or running at once in ``repro serve`` (``None`` =
    #: unlimited).  A control-plane knob only — it never reaches the
    #: replay engine, so it cannot perturb seeds or reports.
    max_concurrent_runs: Optional[int] = None

    def is_empty(self) -> bool:
        return all(
            getattr(self, spec.name) is None
            for spec in dataclasses.fields(self)
        )

    @classmethod
    def from_payload(cls, tenant: str, payload: dict) -> "TenantProfile":
        """Parse one config-file profile mapping, naming bad fields."""
        if not isinstance(payload, dict):
            raise TenantProfileError(
                f"tenant {tenant!r}: profile must be a mapping, "
                f"got {type(payload).__name__}"
            )
        unknown = sorted(set(payload) - _PROFILE_KEYS)
        if unknown:
            raise TenantProfileError(
                f"tenant {tenant!r}: unknown profile keys {unknown}; "
                f"expected {sorted(_PROFILE_KEYS)}"
            )
        size = payload.get("input_bytes")
        if isinstance(size, str):
            try:
                size = parse_size(size)
            except ValueError as exc:
                raise TenantProfileError(
                    f"tenant {tenant!r}: bad input_bytes: {exc}"
                ) from None
        for key in ("system_overrides", "cluster"):
            value = payload.get(key)
            if value is not None and not isinstance(value, dict):
                raise TenantProfileError(
                    f"tenant {tenant!r}: {key} must be a mapping"
                )
        try:
            profile = cls(
                system=payload.get("system"),
                placement=payload.get("placement"),
                timeout_s=(
                    float(payload["timeout_s"])
                    if payload.get("timeout_s") is not None
                    else None
                ),
                input_bytes=float(size) if size is not None else None,
                fanout=(
                    int(payload["fanout"])
                    if payload.get("fanout") is not None
                    else None
                ),
                system_overrides=payload.get("system_overrides"),
                cluster_overrides=payload.get("cluster"),
                max_concurrent_runs=(
                    int(payload["max_concurrent_runs"])
                    if payload.get("max_concurrent_runs") is not None
                    else None
                ),
            )
        except (TypeError, ValueError) as exc:
            raise TenantProfileError(f"tenant {tenant!r}: {exc}") from None
        if profile.timeout_s is not None and profile.timeout_s <= 0:
            raise TenantProfileError(
                f"tenant {tenant!r}: timeout_s must be positive"
            )
        if profile.fanout is not None and profile.fanout < 1:
            raise TenantProfileError(f"tenant {tenant!r}: fanout must be >= 1")
        if profile.input_bytes is not None and profile.input_bytes < 0:
            raise TenantProfileError(
                f"tenant {tenant!r}: input_bytes must be non-negative"
            )
        if (
            profile.max_concurrent_runs is not None
            and profile.max_concurrent_runs < 1
        ):
            raise TenantProfileError(
                f"tenant {tenant!r}: max_concurrent_runs must be >= 1"
            )
        return profile

    def to_payload(self) -> dict:
        """The profile as a :meth:`from_payload` mapping (round-trips).

        ``None`` fields are omitted so the payload layers exactly like
        the profile does: an absent key inherits from the layer below.
        """
        payload: Dict[str, object] = {}
        for spec in dataclasses.fields(self):
            value = getattr(self, spec.name)
            if value is None:
                continue
            key = "cluster" if spec.name == "cluster_overrides" else spec.name
            payload[key] = dict(value) if isinstance(value, dict) else value
        return payload


@dataclass(frozen=True)
class TenantConfig:
    """A default profile plus per-tenant overrides (the config file)."""

    default: Optional[TenantProfile] = None
    tenants: Dict[str, TenantProfile] = field(default_factory=dict)

    @classmethod
    def from_payload(cls, payload: dict) -> "TenantConfig":
        """Parse the ``{"default": {...}, "tenants": {id: {...}}}`` schema."""
        if not isinstance(payload, dict):
            raise TenantProfileError(
                f"tenant config must be a mapping, got {type(payload).__name__}"
            )
        unknown = sorted(set(payload) - {"default", "tenants"})
        if unknown:
            raise TenantProfileError(
                f"tenant config: unknown top-level keys {unknown}; "
                f"expected ['default', 'tenants']"
            )
        default = None
        if payload.get("default") is not None:
            default = TenantProfile.from_payload("default", payload["default"])
        tenants_payload = payload.get("tenants") or {}
        if not isinstance(tenants_payload, dict):
            raise TenantProfileError("tenant config: 'tenants' must be a mapping")
        tenants = {
            str(tenant): TenantProfile.from_payload(str(tenant), body)
            for tenant, body in tenants_payload.items()
        }
        return cls(default=default, tenants=tenants)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TenantConfig":
        """Load a config file: ``.json`` via :mod:`json`, else YAML-lite."""
        path = Path(path)
        text = path.read_text()
        if path.suffix.lower() == ".json":
            try:
                payload = json.loads(text)
            except json.JSONDecodeError as exc:
                # No path in the message: callers (the CLI) prefix it.
                raise TenantProfileError(f"invalid JSON: {exc}") from None
        else:
            payload = parse_yaml_lite(text)
        return cls.from_payload(payload)

    def to_payload(self) -> dict:
        """The config as the :meth:`from_payload` schema (round-trips).

        This is how a config crosses process boundaries: the serve
        control plane injects its server-level ``--tenant-config`` into
        the payload shipped to remote workers as an inline
        ``tenant_config``, so a worker rebuilding the
        :class:`~repro.parallel.spec.ReplaySpec` from the payload alone
        resolves exactly the profiles the control plane validated.
        """
        payload: Dict[str, object] = {}
        if self.default is not None:
            payload["default"] = self.default.to_payload()
        if self.tenants:
            payload["tenants"] = {
                tenant: profile.to_payload()
                for tenant, profile in sorted(self.tenants.items())
            }
        return payload

    def validate(self, base_system: str, base_placement: str) -> None:
        """Check every profile against the system/placement registries.

        Raises :class:`TenantProfileError` naming the first offending
        tenant, so the CLI fails before any worker process spawns.
        """
        named = [("default", self.default)] if self.default else []
        named += sorted(self.tenants.items())
        for tenant, profile in named:
            _validate_profile(
                tenant,
                profile,
                default_system=(
                    (self.default.system if self.default else None)
                    or base_system
                ),
                base_placement=base_placement,
            )


def validated_tenant_config(
    payload: dict, base_system: str, base_placement: str
) -> TenantConfig:
    """Parse *and* registry-validate an inline tenant-config payload.

    The single fail-fast gate every request path shares: the CLI runs
    loaded ``--tenant-config`` files through the same
    :meth:`TenantConfig.validate`, and the HTTP service
    (:mod:`repro.serve`) routes inline ``tenant_config`` request bodies
    here, so a profile naming an unknown system or placement dies with
    the same named-tenant :class:`TenantProfileError` whether it
    arrived as a file or as JSON over REST — never inside a worker.
    """
    config = TenantConfig.from_payload(payload)
    config.validate(base_system, base_placement)
    return config


def _validate_profile(
    tenant: str,
    profile: TenantProfile,
    default_system: str,
    base_placement: str,
) -> None:
    # Local imports: experiments.common imports systems which must not
    # import the parallel package back at module load.
    from ..experiments.common import CONFIG_CLASSES, SYSTEM_CLASSES
    from ..systems.placement import get_policy

    if profile.system is not None and profile.system not in SYSTEM_CLASSES:
        raise TenantProfileError(
            f"tenant {tenant!r}: unknown system {profile.system!r}; "
            f"choose from {list(SYSTEM_CLASSES)}"
        )
    if profile.placement is not None:
        try:
            get_policy(profile.placement)
        except (KeyError, ValueError) as exc:
            message = exc.args[0] if exc.args else exc
            raise TenantProfileError(
                f"tenant {tenant!r}: {message}"
            ) from None
    else:
        # The inherited placement must itself resolve.
        try:
            get_policy(base_placement)
        except (KeyError, ValueError) as exc:
            message = exc.args[0] if exc.args else exc
            raise TenantProfileError(
                f"tenant {tenant!r}: inherited {message}"
            ) from None
    if profile.system_overrides:
        config_cls = CONFIG_CLASSES[profile.system or default_system]
        known = {spec.name for spec in dataclasses.fields(config_cls)}
        unknown = sorted(set(profile.system_overrides) - known)
        if unknown:
            raise TenantProfileError(
                f"tenant {tenant!r}: unknown system_overrides {unknown} "
                f"for system {(profile.system or default_system)!r}; "
                f"fields: {sorted(known)}"
            )
        _check_override_types(tenant, config_cls, profile.system_overrides)
    if profile.cluster_overrides:
        known = {spec.name for spec in dataclasses.fields(ClusterConfig)}
        unknown = sorted(set(profile.cluster_overrides) - known)
        if unknown:
            raise TenantProfileError(
                f"tenant {tenant!r}: unknown cluster overrides {unknown}; "
                f"fields: {sorted(known)}"
            )
        try:
            dataclasses.replace(
                ClusterConfig(), **profile.cluster_overrides
            ).validate()
        except (TypeError, ValueError) as exc:
            raise TenantProfileError(f"tenant {tenant!r}: {exc}") from None


def _check_override_types(tenant: str, config_cls, overrides: dict) -> None:
    """Reject overrides whose values cannot inhabit the config field.

    Dataclasses don't type-check at construction, so a string where a
    float belongs would otherwise pass validation and explode mid-replay
    (possibly inside a worker process) with a raw TypeError — exactly
    the failure mode fail-fast validation exists to prevent.
    """
    import typing

    hints = typing.get_type_hints(config_cls)
    for key, value in overrides.items():
        expected = hints.get(key)
        if expected is None:
            continue
        origin = typing.get_origin(expected)
        if origin is typing.Union:
            args = [a for a in typing.get_args(expected) if a is not type(None)]
            if value is None or len(args) != 1:
                continue
            expected = args[0]
        ok = True
        if expected is bool:
            ok = isinstance(value, bool)
        elif expected in (float, int):
            ok = isinstance(value, (int, float)) and not isinstance(value, bool)
        elif expected is str:
            ok = isinstance(value, str)
        if not ok:
            raise TenantProfileError(
                f"tenant {tenant!r}: system_overrides[{key!r}] must be "
                f"{expected.__name__}, got {type(value).__name__} "
                f"({value!r})"
            )


# -- YAML-lite ----------------------------------------------------------------------
#
# The container deliberately avoids a PyYAML dependency; tenant configs
# need only nested mappings of scalars, so a ~60-line indentation parser
# covers the format without the dependency.  Supported: two-or-more-space
# indented nested mappings, ``key: value`` scalars (ints, floats, bools,
# null, bare or quoted strings), blank lines, and ``#`` comments.


def _strip_comment(line: str) -> str:
    """Drop a ``#`` comment, honoring single/double quotes."""
    quote = ""
    for index, char in enumerate(line):
        if quote:
            if char == quote:
                quote = ""
        elif char in "'\"":
            quote = char
        elif char == "#":
            return line[:index]
    return line


def _scalar(text: str) -> object:
    text = text.strip()
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        return text[1:-1]
    lowered = text.lower()
    if lowered in ("null", "~", ""):
        return None
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_yaml_lite(text: str) -> dict:
    """Parse the nested-mapping YAML subset tenant configs use.

    Raises :class:`TenantProfileError` (with a line number) on anything
    outside the subset — sequences, flow style, tabs, bad indentation.
    """
    root: dict = {}
    # (indent, mapping) pairs, innermost last.
    stack: List[Tuple[int, dict]] = [(-1, root)]
    # The key awaiting a nested block, if the previous line ended in ':'.
    pending: Optional[Tuple[int, dict, str]] = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        stripped = _strip_comment(raw).rstrip()
        if not stripped.strip():
            continue
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise TenantProfileError(
                f"yaml-lite line {line_no}: tabs are not allowed in indentation"
            )
        indent = len(stripped) - len(stripped.lstrip())
        content = stripped.strip()
        if content.startswith("- "):
            raise TenantProfileError(
                f"yaml-lite line {line_no}: sequences are not supported"
            )
        if ":" not in content:
            raise TenantProfileError(
                f"yaml-lite line {line_no}: expected 'key: value', "
                f"got {content!r}"
            )
        if pending is not None:
            parent_indent, parent, key = pending
            if indent > parent_indent:
                child: dict = {}
                parent[key] = child
                stack.append((indent, child))
            else:
                parent[key] = None
            pending = None
        while stack and indent < stack[-1][0]:
            stack.pop()
        if indent != stack[-1][0] and stack[-1][0] != -1:
            raise TenantProfileError(
                f"yaml-lite line {line_no}: bad indentation ({indent} spaces)"
            )
        if stack[-1][0] == -1 and indent != 0:
            raise TenantProfileError(
                f"yaml-lite line {line_no}: top-level keys must not be indented"
            )
        mapping = stack[-1][1]
        key, _, value = content.partition(":")
        key = _scalar(key)
        if not isinstance(key, str):
            key = str(key)
        if value.strip():
            mapping[key] = _scalar(value)
        else:
            pending = (indent, mapping, key)
    if pending is not None:
        parent_indent, parent, key = pending
        parent[key] = None
    return root
