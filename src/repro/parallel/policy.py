"""Shard policies: how a trace splits into independently simulable cells.

A :class:`ShardPolicy` maps every :class:`~repro.loadgen.trace.TraceEvent`
to a *cell key*.  A cell is the unit of simulation in the sharded replay
engine: all events sharing a key replay together in one fresh simulated
world, and different cells never interact.  Crucially the cell partition
depends only on the trace and the policy — never on how many shards or
worker processes the run uses — which is what makes the merged report
bit-identical across ``--shards``/``--workers`` settings.

Shards are merely batches of cells handed to worker processes; the
stable cell→shard assignment lives in
:func:`repro.parallel.engine.partition_trace`.

Two built-in policies:

``tenant``
    One cell per tenant (key = tenant name).  Preserves each tenant's
    intra-tenant container warmth and pacing exactly; models a
    shared-nothing per-tenant cluster cell.
``timeslice:<seconds>``
    One cell per fixed window of arrival time.  Balances skewed tenant
    loads across cells, but a tenant spanning windows restarts cold in
    each one — the classic locality-vs-balance trade-off
    (see ``docs/scaling.md``).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Tuple

from ..loadgen.trace import InvocationTrace, TraceEvent

__all__ = [
    "ShardPolicy",
    "TenantShardPolicy",
    "TimeSliceShardPolicy",
    "get_shard_policy",
    "shard_policy_names",
    "stable_hash",
]


def stable_hash(text: str) -> int:
    """A process-invariant 64-bit hash (``hash()`` is salted per run)."""
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class ShardPolicy:
    """Assigns every trace event to a cell key."""

    name = "abstract"

    def cell_key(self, event: TraceEvent) -> str:
        raise NotImplementedError

    def cell_cost(self, cell_trace: InvocationTrace) -> float:
        """Estimated replay cost of one cell, for scheduling only.

        The streaming engine submits cells costliest-first (the LPT
        heuristic), so a policy that knows some events are heavier than
        others can override this to improve the makespan.  Scheduling
        order never affects results — only wall-clock time — so the
        estimate is free to be wrong.
        """
        return float(len(cell_trace.events))

    def split(self, trace: InvocationTrace) -> List[Tuple[str, InvocationTrace]]:
        """The trace partitioned into ``(cell_key, sub-trace)`` pairs.

        Cells come back sorted by key; each sub-trace keeps the events'
        original timestamps and the parent trace's name suffixed with the
        cell key.
        """
        groups: Dict[str, List[TraceEvent]] = {}
        for event in trace.events:
            groups.setdefault(self.cell_key(event), []).append(event)
        return [
            (key, InvocationTrace(events=events, name=f"{trace.name}[{key}]"))
            for key, events in sorted(groups.items())
        ]


class TenantShardPolicy(ShardPolicy):
    """One cell per tenant: tenant-disjoint, warmth-preserving sharding."""

    name = "tenant"

    def cell_key(self, event: TraceEvent) -> str:
        return event.tenant


class TimeSliceShardPolicy(ShardPolicy):
    """One cell per ``slice_s``-second window of arrival time."""

    name = "timeslice"

    def __init__(self, slice_s: float = 60.0) -> None:
        if slice_s <= 0:
            raise ValueError("timeslice width must be positive")
        self.slice_s = float(slice_s)

    def cell_key(self, event: TraceEvent) -> str:
        return f"slice{int(event.at_s // self.slice_s):06d}"


def shard_policy_names() -> List[str]:
    return ["tenant", "timeslice[:<seconds>]"]


def get_shard_policy(spec: str) -> ShardPolicy:
    """Resolve a policy spec string (``tenant``, ``timeslice:30``)."""
    kind, _, arg = spec.partition(":")
    if kind == "tenant":
        if arg:
            raise ValueError("the tenant policy takes no argument")
        return TenantShardPolicy()
    if kind == "timeslice":
        try:
            return TimeSliceShardPolicy(float(arg)) if arg else TimeSliceShardPolicy()
        except ValueError as exc:
            raise ValueError(f"bad timeslice policy {spec!r}: {exc}") from None
    raise ValueError(
        f"unknown shard policy {spec!r}; expected one of {shard_policy_names()}"
    )
