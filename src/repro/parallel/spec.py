"""The picklable recipe a replay worker uses to rebuild a world.

Worker processes cannot share the parent's :class:`Environment` or
:class:`WorkflowSystem` (live simulation state does not pickle, and
sharing it would serialize the run anyway).  Instead the engine ships a
:class:`ReplaySpec` — plain configuration data — and every worker builds
its own fresh environment, cluster, and system per cell via
:meth:`ReplaySpec.build_setup`.

Heterogeneous tenancy: a spec may carry a
:class:`~repro.parallel.profiles.TenantProfile` map (default profile
plus per-tenant overrides).  :meth:`ReplaySpec.resolve` folds the
layers — spec base, then the default profile, then the cell tenant's
profile — into one :class:`ResolvedProfile` that names the system,
placement, cluster, and request defaults that cell replays under.

Per-cell seeds derive deterministically from the spec's root seed, the
cell key, and the resolved profile (never from shard or worker indices),
so a cell simulates identically no matter which shard or process it
lands on.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cluster.cluster import ClusterConfig
from ..loadgen.runner import DEFAULT_TIMEOUT_S
from ..loadgen.trace import InvocationTrace
from .policy import stable_hash
from .profiles import TenantConfig, TenantProfile
from .sink import RecordSinkSpec

__all__ = ["ReplaySpec", "ResolvedProfile"]


@dataclass(slots=True)
class ResolvedProfile:
    """The concrete configuration one cell replays under."""

    #: Tenant the profile resolved for (the cell key when no tenant is
    #: identifiable, e.g. mixed timeslice cells).
    tenant: str
    system: str
    placement: str
    timeout_s: float
    input_bytes: Optional[float]
    fanout: Optional[int]
    system_overrides: Dict[str, object]
    cluster_config: ClusterConfig
    #: Which layer won: ``base`` (spec only), ``default`` (config-file
    #: default profile), or ``tenant`` (a per-tenant entry applied).
    source: str = "base"

    def tag(self) -> Dict[str, object]:
        """The audit tag reports attach to per-tenant sections."""
        tag: Dict[str, object] = {
            "system": self.system,
            "placement": self.placement,
            "source": self.source,
        }
        if self.timeout_s != DEFAULT_TIMEOUT_S:
            tag["timeout_s"] = self.timeout_s
        return tag


@dataclass(frozen=True, slots=True)
class ReplaySpec:
    """Everything needed to replay one trace cell in a fresh world.

    Slotted: the streaming engine pickles one spec per *cell* task (not
    per shard), so the spec stays as small and cheap to serialize as a
    plain tuple of its fields.
    """

    #: Execution system registry name (``repro systems``).
    system_name: str = "dataflower"
    #: App used by events that name none (``None``: every event must name one).
    default_app: Optional[str] = None
    #: Placement policy registry name.
    placement: str = "round_robin"
    #: Root seed; per-cell system seeds derive from it via :meth:`cell_seed`.
    seed: int = 0
    #: Per-request timeout inside each cell.
    timeout_s: float = DEFAULT_TIMEOUT_S
    #: Input-size override for events that carry none.
    input_bytes: Optional[float] = None
    #: Fan-out override for events that carry none.
    fanout: Optional[int] = None
    #: Simulated cluster topology each cell gets a private copy of.
    cluster_config: ClusterConfig = field(default_factory=ClusterConfig)
    #: Extra system-config overrides (must be picklable scalars).
    system_overrides: Optional[dict] = None
    #: Profile applied to every tenant before per-tenant overrides.
    default_profile: Optional[TenantProfile] = None
    #: Per-tenant-id profile overrides (heterogeneous tenancy).
    tenant_profiles: Optional[Dict[str, TenantProfile]] = None
    #: Where the merged record stream lives (``None``: in memory).
    #: Pure memory policy — never feeds cell seeds or the report, so
    #: specs differing only here replay byte-identically.
    record_sink: Optional[RecordSinkSpec] = None

    @property
    def has_profiles(self) -> bool:
        """Whether any tenant-profile layer is configured."""
        return bool(self.tenant_profiles) or self.default_profile is not None

    def with_tenant_config(self, config: TenantConfig) -> "ReplaySpec":
        """This spec with a loaded ``--tenant-config`` file applied."""
        return dataclasses.replace(
            self,
            default_profile=config.default,
            tenant_profiles=dict(config.tenants) or None,
        )

    # -- profile resolution ---------------------------------------------------

    def _cell_tenant(
        self, cell_key: str, cell_trace: Optional[InvocationTrace]
    ) -> str:
        if cell_trace is not None:
            tenant = cell_trace.sole_tenant()
            if tenant is not None:
                return tenant
        return cell_key

    def resolve(
        self, cell_key: str, cell_trace: Optional[InvocationTrace] = None
    ) -> ResolvedProfile:
        """Fold the profile layers for one cell, most specific last.

        The cell's tenant is the sole tenant of its sub-trace when one
        exists (always true under the ``tenant`` shard policy), else the
        cell key.  Resolution depends only on (spec, cell) — never on
        shard or worker indices — preserving shard invariance.
        """
        tenant = self._cell_tenant(cell_key, cell_trace)
        layers: List[TenantProfile] = []
        source = "base"
        if self.default_profile is not None:
            layers.append(self.default_profile)
            source = "default"
        tenant_profile = (self.tenant_profiles or {}).get(tenant)
        if tenant_profile is not None:
            layers.append(tenant_profile)
            source = "tenant"
        system = self.system_name
        placement = self.placement
        timeout_s = self.timeout_s
        input_bytes = self.input_bytes
        fanout = self.fanout
        overrides: Dict[str, object] = dict(self.system_overrides or {})
        cluster = self.cluster_config
        for layer in layers:
            if layer.system is not None and layer.system != system:
                # A layer that switches systems invalidates overrides
                # accumulated for the previous system's config class.
                system = layer.system
                overrides = {}
            if layer.placement is not None:
                placement = layer.placement
            if layer.timeout_s is not None:
                timeout_s = layer.timeout_s
            if layer.input_bytes is not None:
                input_bytes = layer.input_bytes
            if layer.fanout is not None:
                fanout = layer.fanout
            if layer.system_overrides:
                overrides.update(layer.system_overrides)
            if layer.cluster_overrides:
                cluster = dataclasses.replace(
                    cluster, **layer.cluster_overrides
                )
        return ResolvedProfile(
            tenant=tenant,
            system=system,
            placement=placement,
            timeout_s=timeout_s,
            input_bytes=input_bytes,
            fanout=fanout,
            system_overrides=overrides,
            cluster_config=cluster,
            source=source,
        )

    def _seed_for(self, cell_key: str, resolved: ResolvedProfile) -> int:
        tag = ""
        if (
            resolved.system != self.system_name
            or resolved.placement != self.placement
        ):
            tag = f":{resolved.system}:{resolved.placement}"
        return stable_hash(f"replay-seed:{self.seed}:{cell_key}{tag}")

    def cell_seed(
        self, cell_key: str, cell_trace: Optional[InvocationTrace] = None
    ) -> int:
        """The system seed for one cell.

        Stable in (root seed, cell key, resolved profile) only — a
        homogeneous spec derives exactly the legacy ``(seed, key)``
        value, while a profile that changes the cell's system or
        placement steers its RNG streams onto a distinct sequence.
        """
        return self._seed_for(cell_key, self.resolve(cell_key, cell_trace))

    def cell_identity(
        self, cell_key: str, cell_trace: Optional[InvocationTrace] = None
    ) -> str:
        """A stable serialized identity for one cell of this spec.

        ``<key>@<cell seed>`` — the key names the cell, the derived seed
        fingerprints everything that determines its replay (root seed
        plus the resolved profile's system/placement).  The durable run
        journal stamps every checkpointed cell with this token; on
        recovery a journaled residue is only reused when the resubmitted
        request derives the *same* identity, so a checkpoint from a
        different seed or profile configuration is re-run, never merged.
        """
        return f"{cell_key}@{self.cell_seed(cell_key, cell_trace)}"

    def build_setup(
        self,
        cell_trace: InvocationTrace,
        cell_key: str,
        resolved: Optional[ResolvedProfile] = None,
    ):
        """A fresh env + cluster + system with the cell's apps deployed,
        built under the cell tenant's resolved profile.

        ``resolved`` lets the engine's per-cell hot path reuse one
        resolution for setup, seed, and request defaults.
        """
        from ..experiments.common import make_setup  # local: avoid cycle

        if resolved is None:
            resolved = self.resolve(cell_key, cell_trace)
        apps = list(cell_trace.apps())
        if self.default_app and self.default_app not in apps:
            apps.append(self.default_app)
        if not apps:
            raise ValueError(
                f"cell {cell_key!r} of trace {cell_trace.name!r} names no "
                f"apps and the spec has no default_app"
            )
        overrides = dict(resolved.system_overrides)
        overrides["seed"] = self._seed_for(cell_key, resolved)
        return make_setup(
            resolved.system,
            self.default_app or apps[0],
            cluster_config=resolved.cluster_config,
            system_overrides=overrides,
            placement=resolved.placement,
            apps=apps,
        )
