"""The picklable recipe a replay worker uses to rebuild a world.

Worker processes cannot share the parent's :class:`Environment` or
:class:`WorkflowSystem` (live simulation state does not pickle, and
sharing it would serialize the run anyway).  Instead the engine ships a
:class:`ReplaySpec` — plain configuration data — and every worker builds
its own fresh environment, cluster, and system per cell via
:meth:`ReplaySpec.build_setup`.

Per-cell seeds derive deterministically from the spec's root seed and
the cell key (never from shard or worker indices), so a cell simulates
identically no matter which shard or process it lands on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cluster.cluster import ClusterConfig
from ..loadgen.runner import DEFAULT_TIMEOUT_S
from ..loadgen.trace import InvocationTrace
from .policy import stable_hash

__all__ = ["ReplaySpec"]


@dataclass(frozen=True)
class ReplaySpec:
    """Everything needed to replay one trace cell in a fresh world."""

    #: Execution system registry name (``repro systems``).
    system_name: str = "dataflower"
    #: App used by events that name none (``None``: every event must name one).
    default_app: Optional[str] = None
    #: Placement policy registry name.
    placement: str = "round_robin"
    #: Root seed; per-cell system seeds derive from it via :meth:`cell_seed`.
    seed: int = 0
    #: Per-request timeout inside each cell.
    timeout_s: float = DEFAULT_TIMEOUT_S
    #: Input-size override for events that carry none.
    input_bytes: Optional[float] = None
    #: Fan-out override for events that carry none.
    fanout: Optional[int] = None
    #: Simulated cluster topology each cell gets a private copy of.
    cluster_config: ClusterConfig = field(default_factory=ClusterConfig)
    #: Extra system-config overrides (must be picklable scalars).
    system_overrides: Optional[dict] = None

    def cell_seed(self, cell_key: str) -> int:
        """The system seed for one cell: stable in (root seed, key) only."""
        return stable_hash(f"replay-seed:{self.seed}:{cell_key}")

    def build_setup(self, cell_trace: InvocationTrace, cell_key: str):
        """A fresh env + cluster + system with the cell's apps deployed."""
        from ..experiments.common import make_setup  # local: avoid cycle

        apps = list(cell_trace.apps())
        if self.default_app and self.default_app not in apps:
            apps.append(self.default_app)
        if not apps:
            raise ValueError(
                f"cell {cell_key!r} of trace {cell_trace.name!r} names no "
                f"apps and the spec has no default_app"
            )
        overrides = dict(self.system_overrides or {})
        overrides["seed"] = self.cell_seed(cell_key)
        return make_setup(
            self.system_name,
            self.default_app or apps[0],
            cluster_config=self.cluster_config,
            system_overrides=overrides,
            placement=self.placement,
            apps=apps,
        )
