"""Record sinks: where a merged replay keeps its request records.

The paper's thesis is that intermediate data should live where it is
produced instead of materializing centrally; the replay pipeline's own
record stream is the same problem in miniature.  Every cell hands the
parent a list of :class:`~repro.metrics.latency.RequestRecord`\\ s and
the merge must present them in one canonical order — but nothing forces
the canonical sequence to *live in parent RAM*.  A
:class:`StreamingMerge <repro.parallel.engine.StreamingMerge>` therefore
writes records through a pluggable **record sink**:

:class:`MemoryRecordSink` (default)
    Keeps each cell's records as an in-memory sorted run and k-way
    merges the runs at finalize (``heapq.merge`` — the k-way
    generalization of :func:`repro.metrics.latency._merge_sorted`).
    Per-cell buffers release as the merge drains them; the full record
    list exists exactly once, never a second sort-buffer copy.

:class:`SpillingRecordSink` (``--spill-dir`` / ``--max-records-in-memory``)
    Buffers cells up to a record-count threshold, then flushes each
    buffered cell to a **per-cell sorted run file** (NDJSON of
    :func:`record_to_payload` lines).  ``finalize`` k-way merges the
    disk runs with the still-buffered cells by the same
    ``(submit_time, request_id)`` key, streams the result into one
    merged spill file, and returns a :class:`SpilledRecords` sequence
    that reads records lazily from that file.  Parent peak RSS is
    bounded by the threshold plus one in-flight cell — not by the
    trace size.

Both sinks produce the merged stream in the identical canonical order
(the key is globally unique: request ids are cell-qualified), and both
fold a :class:`RecordAggregate` over it in that order — every count and
float the report's record-derived sections need, computed in exactly
the order the in-memory scan would have used.  Reports are therefore
byte-identical across sinks, shard counts, worker counts, and engines;
Python floats round-trip JSON exactly (shortest repr), so a record that
passed through a spill file aggregates to the same bits as one that
never left RAM.
"""

from __future__ import annotations

import heapq
import json
import os
import shutil
import tempfile
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..metrics.latency import LatencySummary, RequestRecord, TaskRecord

__all__ = [
    "MemoryRecordSink",
    "RecordAggregate",
    "RecordSinkSpec",
    "SpillError",
    "SpilledRecords",
    "SpillingRecordSink",
    "make_record_sink",
    "record_from_payload",
    "record_to_payload",
]

#: Default spill threshold: records buffered in parent RAM before cells
#: flush to sorted run files.  ~10k records keeps the parent's share of
#: a 100k-event replay under a tenth of the in-memory footprint while
#: staying far above any per-page working set.
DEFAULT_MAX_RECORDS_IN_MEMORY = 10_000

_SINK_KINDS = ("memory", "spill")


class SpillError(RuntimeError):
    """A spill file failed integrity checks (torn write, truncation)."""


# -- record (de)serialization -------------------------------------------------


def record_to_payload(record: RequestRecord) -> dict:
    """One record as a JSON-ready dict that round-trips exactly.

    The shared record schema: cell payloads in the durable run journal
    (:meth:`~repro.parallel.engine.CellResult.to_payload`), spill run
    files, and the ``GET /v1/runs/<id>/records`` pages all speak it.
    """
    return {
        "request_id": record.request_id,
        "workflow": record.workflow,
        "submit_time": record.submit_time,
        "end_time": record.end_time,
        "failed": record.failed,
        "error": record.error,
        "tasks": [
            {
                "task_id": task.task_id,
                "function": task.function,
                "node": task.node,
                "ready_time": task.ready_time,
                "trigger_time": task.trigger_time,
                "exec_start": task.exec_start,
                "exec_end": task.exec_end,
                "get_s": task.get_s,
                "compute_s": task.compute_s,
                "put_s": task.put_s,
                "cold_start": task.cold_start,
                "retries": task.retries,
            }
            for task in record.tasks
        ],
    }


def record_from_payload(payload: dict) -> RequestRecord:
    """Rebuild a :class:`RequestRecord` from :func:`record_to_payload`."""
    return RequestRecord(
        request_id=payload["request_id"],
        workflow=payload["workflow"],
        submit_time=payload["submit_time"],
        end_time=payload["end_time"],
        failed=payload["failed"],
        error=payload["error"],
        tasks=[TaskRecord(**task) for task in payload.get("tasks", ())],
    )


def _record_key(record: RequestRecord) -> Tuple[float, str]:
    return (record.submit_time, record.request_id)


def _payload_key(payload: dict) -> Tuple[float, str]:
    return (payload["submit_time"], payload["request_id"])


# -- the streaming aggregate --------------------------------------------------


class _Group:
    """Offered count plus completed latencies (merged order) for one
    tenant or workflow breakdown row."""

    __slots__ = ("offered", "latencies")

    def __init__(self) -> None:
        self.offered = 0
        self.latencies: List[float] = []


class RecordAggregate:
    """Everything ``to_dict`` derives from records, folded in one pass.

    Observed strictly in canonical merged order, so the per-group
    latency sample order — and therefore float-summation order inside
    :class:`~repro.metrics.latency.LatencySummary` — matches a scan of
    the materialized record list bit for bit.  This is what lets a
    spilled result render its report without ever holding the records.
    """

    __slots__ = ("total", "completed", "failed", "tenants", "workflows")

    def __init__(self) -> None:
        self.total = 0
        self.completed = 0
        self.failed = 0
        self.tenants: Dict[str, _Group] = {}
        self.workflows: Dict[str, _Group] = {}

    def observe(
        self,
        request_id: str,
        workflow: str,
        submit_time: float,
        end_time: Optional[float],
        failed: bool,
        tenant: str,
    ) -> None:
        self.total += 1
        tenant_group = self.tenants.get(tenant)
        if tenant_group is None:
            tenant_group = self.tenants[tenant] = _Group()
        workflow_group = self.workflows.get(workflow)
        if workflow_group is None:
            workflow_group = self.workflows[workflow] = _Group()
        tenant_group.offered += 1
        workflow_group.offered += 1
        if end_time is not None and not failed:
            self.completed += 1
            latency = end_time - submit_time
            tenant_group.latencies.append(latency)
            workflow_group.latencies.append(latency)
        elif failed:
            self.failed += 1

    def observe_record(
        self, record: RequestRecord, tenant_of: Dict[str, str]
    ) -> None:
        self.observe(
            record.request_id,
            record.workflow,
            record.submit_time,
            record.end_time,
            record.failed,
            tenant_of.get(record.request_id, "default"),
        )

    def observe_payload(
        self, payload: dict, tenant_of: Dict[str, str]
    ) -> None:
        self.observe(
            payload["request_id"],
            payload["workflow"],
            payload["submit_time"],
            payload["end_time"],
            payload["failed"],
            tenant_of.get(payload["request_id"], "default"),
        )

    def workflow_names(self) -> List[str]:
        return sorted(self.workflows)

    @staticmethod
    def _breakdown(groups: Dict[str, _Group]) -> dict:
        from ..metrics.report import summary_to_dict

        out = {}
        for key, group in sorted(groups.items()):
            out[key] = {
                "offered": group.offered,
                "completed": len(group.latencies),
                "latency": (
                    summary_to_dict(
                        LatencySummary.from_latencies(group.latencies)
                    )
                    if group.latencies
                    else None
                ),
            }
        return out

    def report_payload(
        self,
        system: str,
        workflow: str,
        duration_s: float,
        offered: int,
        latency: Optional[LatencySummary],
        usage,
    ) -> dict:
        """The record-derived report body, mirroring
        :meth:`~repro.loadgen.runner.RunResult.to_dict` plus the
        tenant/workflow breakdowns of
        :meth:`~repro.loadgen.trace.TraceRunResult.to_dict` field for
        field — any drift here breaks report byte-identity between the
        spilled and in-memory paths, which the sink property tests pin.
        """
        from ..metrics.report import summary_to_dict

        payload: dict = {
            "system": system,
            "workflow": workflow,
            "duration_s": duration_s,
            "offered": offered,
            "completed": self.completed,
            "failed": self.failed,
            "failure_rate": self.failed / self.total if self.total else 0.0,
            "throughput_rpm": (
                self.completed / duration_s * 60.0 if duration_s > 0 else 0.0
            ),
            "latency": (
                summary_to_dict(latency)
                if self.completed and latency is not None
                else None
            ),
            "usage": None,
        }
        if usage is not None:
            usage_dict = summary_to_dict(usage)
            per_request = usage.memory_gbs_per_request
            usage_dict["memory_gbs_per_request"] = (
                None if per_request != per_request else per_request
            )
            per_request = usage.cache_mbs_per_request
            usage_dict["cache_mbs_per_request"] = (
                None if per_request != per_request else per_request
            )
            payload["usage"] = usage_dict
        payload["tenants"] = self._breakdown(self.tenants)
        payload["workflows"] = self._breakdown(self.workflows)
        return payload


# -- sink configuration -------------------------------------------------------


@dataclass(frozen=True)
class RecordSinkSpec:
    """Picklable sink configuration carried on a
    :class:`~repro.parallel.spec.ReplaySpec`.

    Pure scheduling/memory policy: the sink never feeds back into cell
    seeds or the merged report, so two specs differing only here
    produce byte-identical reports.
    """

    kind: str = "memory"
    #: Directory spill scratch lives under (``None``: the system temp
    #: dir).  Each run creates and cleans up its own subdirectory.
    spill_dir: Optional[str] = None
    #: Records buffered in parent RAM before cells flush to run files.
    max_records_in_memory: int = DEFAULT_MAX_RECORDS_IN_MEMORY

    def __post_init__(self) -> None:
        if self.kind not in _SINK_KINDS:
            raise ValueError(
                f"unknown record sink kind {self.kind!r}; "
                f"choose from {list(_SINK_KINDS)}"
            )
        if self.max_records_in_memory < 1:
            raise ValueError(
                f"max_records_in_memory must be >= 1, "
                f"got {self.max_records_in_memory}"
            )


def make_record_sink(spec: Optional[RecordSinkSpec]):
    """Build the sink a spec asks for (``None`` → in-memory default)."""
    if spec is None or spec.kind == "memory":
        return MemoryRecordSink()
    return SpillingRecordSink(
        spill_dir=spec.spill_dir,
        max_records_in_memory=spec.max_records_in_memory,
    )


# -- the in-memory sink -------------------------------------------------------


class MemoryRecordSink:
    """Today's behavior, restructured: per-cell sorted runs in RAM,
    k-way merged at finalize.

    Unlike the old single flat list + global ``sort()``, each cell's
    records stay a separate pre-sorted run (cells emit records in
    submission order, so the per-cell sort is a near-no-op Timsort
    pass) and ``finalize`` drains them through ``heapq.merge`` — O(n
    log k) instead of O(n log n), and each cell's buffer releases as
    its iterator exhausts rather than surviving to the end inside a
    second list.
    """

    kind = "memory"

    def __init__(self) -> None:
        self._cells: Dict[str, List[RequestRecord]] = {}
        self.spilled_records = 0  # uniform surface with the spilling sink

    def add(self, key: str, records: Sequence[RequestRecord]) -> None:
        self._cells[key] = sorted(records, key=_record_key)

    def finalize(
        self, tenant_of: Dict[str, str]
    ) -> Tuple[List[RequestRecord], RecordAggregate]:
        keys = sorted(self._cells)
        # pop() drops the dict's reference; heapq.merge drops each
        # iterator (and with it the run list) the moment it exhausts.
        runs = [iter(self._cells.pop(key)) for key in keys]
        aggregate = RecordAggregate()
        observe = aggregate.observe_record
        merged: List[RequestRecord] = []
        append = merged.append
        for record in heapq.merge(*runs, key=_record_key):
            append(record)
            observe(record, tenant_of)
        return merged, aggregate

    def close(self) -> None:
        self._cells.clear()


# -- the disk-spilling sink ---------------------------------------------------


@dataclass
class _SpillRun:
    """One on-disk sorted run: a cell flushed to NDJSON."""

    path: Path
    count: int


class SpilledRecords(Sequence):
    """A lazily-read record sequence backed by the merged spill file.

    Supports ``len``/iteration/indexing like the in-memory list (records
    rebuild via :func:`record_from_payload` on access) plus
    :meth:`iter_payloads` for consumers — the records pagination
    endpoint — that want the raw JSON payloads without object
    construction.  Holds a byte offset per record, so random access is
    one seek.  The backing directory is removed on :meth:`close` or
    garbage collection.
    """

    def __init__(
        self, path: Path, offsets: List[int], cleanup_dir: Optional[Path]
    ) -> None:
        self._path = Path(path)
        self._offsets = offsets
        self._finalizer = (
            weakref.finalize(
                self, shutil.rmtree, str(cleanup_dir), ignore_errors=True
            )
            if cleanup_dir is not None
            else None
        )

    @property
    def path(self) -> Path:
        return self._path

    def __len__(self) -> int:
        return len(self._offsets)

    def __iter__(self) -> Iterator[RequestRecord]:
        for payload in self.iter_payloads():
            yield record_from_payload(payload)

    def iter_payloads(
        self, start: int = 0, stop: Optional[int] = None
    ) -> Iterator[dict]:
        """Yield record payload dicts for ``[start, stop)``."""
        total = len(self._offsets)
        start = max(0, start)
        stop = total if stop is None else min(stop, total)
        if start >= stop:
            return
        with open(self._path, "r", encoding="utf-8") as handle:
            handle.seek(self._offsets[start])
            for _ in range(stop - start):
                line = handle.readline()
                try:
                    yield json.loads(line)
                except ValueError as exc:
                    raise SpillError(
                        f"merged spill file {self._path} is corrupt: {exc}"
                    ) from None

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self._offsets))
            records = [
                record_from_payload(payload)
                for payload in self.iter_payloads(start, stop)
            ]
            return records[::step] if step != 1 else records
        if index < 0:
            index += len(self._offsets)
        if not 0 <= index < len(self._offsets):
            raise IndexError(index)
        for payload in self.iter_payloads(index, index + 1):
            return record_from_payload(payload)
        raise IndexError(index)  # pragma: no cover - range-checked above

    def close(self) -> None:
        if self._finalizer is not None:
            self._finalizer()


class SpillingRecordSink:
    """Bounded-memory sink: cells spill to sorted run files past a
    record-count threshold; finalize k-way merges runs and buffers.

    The spill format is one NDJSON line per record
    (:func:`record_to_payload`, compact separators), one file per
    spilled cell, records pre-sorted by the canonical ``(submit_time,
    request_id)`` key — so every file is a sorted run and the merge
    never re-sorts.  Each run file's expected record count is tracked;
    a truncated or torn file raises :class:`SpillError` at finalize
    instead of yielding a silently short report.
    """

    kind = "spill"

    def __init__(
        self,
        spill_dir: Optional[str] = None,
        max_records_in_memory: int = DEFAULT_MAX_RECORDS_IN_MEMORY,
    ) -> None:
        if max_records_in_memory < 1:
            raise ValueError("max_records_in_memory must be >= 1")
        self._threshold = max_records_in_memory
        self._parent_dir = spill_dir
        self._dir: Optional[Path] = None
        self._buffers: Dict[str, List[RequestRecord]] = {}
        self._buffered = 0
        self._runs: List[_SpillRun] = []
        self._run_seq = 0
        self.spilled_records = 0
        self._finalized = False

    # -- plumbing -------------------------------------------------------------

    def _scratch_dir(self) -> Path:
        if self._dir is None:
            if self._parent_dir is not None:
                os.makedirs(self._parent_dir, exist_ok=True)
            self._dir = Path(
                tempfile.mkdtemp(prefix="repro-spill-", dir=self._parent_dir)
            )
        return self._dir

    def _flush_buffers(self) -> None:
        """Write every buffered cell to its own sorted run file."""
        for key in sorted(self._buffers):
            records = self._buffers.pop(key)
            if not records:
                continue
            path = self._scratch_dir() / f"run-{self._run_seq:06d}.ndjson"
            self._run_seq += 1
            with open(path, "w", encoding="utf-8") as handle:
                for record in records:
                    handle.write(
                        json.dumps(
                            record_to_payload(record), separators=(",", ":")
                        )
                    )
                    handle.write("\n")
            self._runs.append(_SpillRun(path=path, count=len(records)))
            self.spilled_records += len(records)
        self._buffered = 0

    @staticmethod
    def _iter_run(run: _SpillRun) -> Iterator[dict]:
        """Stream one run file, verifying integrity as it goes."""
        read = 0
        with open(run.path, "r", encoding="utf-8") as handle:
            for line in handle:
                try:
                    payload = json.loads(line)
                except ValueError:
                    raise SpillError(
                        f"spill run file {run.path} is corrupt at record "
                        f"{read}: torn or truncated write"
                    ) from None
                read += 1
                yield payload
        if read != run.count:
            raise SpillError(
                f"spill run file {run.path} is truncated: expected "
                f"{run.count} records, read {read}"
            )

    @staticmethod
    def _iter_buffer(records: List[RequestRecord]) -> Iterator[dict]:
        for record in records:
            yield record_to_payload(record)

    # -- the sink surface -----------------------------------------------------

    def add(self, key: str, records: Sequence[RequestRecord]) -> None:
        self._buffers[key] = sorted(records, key=_record_key)
        self._buffered += len(records)
        if self._buffered > self._threshold:
            self._flush_buffers()

    def finalize(
        self, tenant_of: Dict[str, str]
    ) -> Tuple[Sequence[RequestRecord], RecordAggregate]:
        if self._finalized:
            raise RuntimeError("record sink already finalized")
        self._finalized = True
        aggregate = RecordAggregate()
        total = sum(run.count for run in self._runs) + self._buffered
        if total == 0:
            self.close()
            return [], aggregate
        streams = [self._iter_run(run) for run in self._runs]
        for key in sorted(self._buffers):
            streams.append(self._iter_buffer(self._buffers.pop(key)))
        scratch = self._scratch_dir()
        merged_path = scratch / "merged.ndjson"
        offsets: List[int] = []
        observe = aggregate.observe_payload
        try:
            with open(merged_path, "wb") as out:
                offset = 0
                for payload in heapq.merge(*streams, key=_payload_key):
                    line = (
                        json.dumps(payload, separators=(",", ":")) + "\n"
                    ).encode("utf-8")
                    offsets.append(offset)
                    out.write(line)
                    offset += len(line)
                    observe(payload, tenant_of)
        except SpillError:
            self.close()
            raise
        for run in self._runs:
            try:
                run.path.unlink()
            except OSError:  # pragma: no cover - cleanup is best-effort
                pass
        self._runs = []
        # SpilledRecords owns the scratch directory from here: the merged
        # file lives until the result is closed or garbage collected.
        self._dir = None
        return SpilledRecords(merged_path, offsets, cleanup_dir=scratch), (
            aggregate
        )

    def close(self) -> None:
        """Drop buffers and remove any scratch still owned by the sink."""
        self._buffers.clear()
        self._buffered = 0
        self._runs = []
        if self._dir is not None:
            shutil.rmtree(self._dir, ignore_errors=True)
            self._dir = None
