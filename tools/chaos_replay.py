#!/usr/bin/env python3
"""Chaos harness: SIGKILL replay workers mid-cell, assert report identity.

The crash-identity property, end to end on real processes::

    PYTHONPATH=src python tools/chaos_replay.py                  # CI smoke
    PYTHONPATH=src python tools/chaos_replay.py --kill 2 --engine both
    PYTHONPATH=src python tools/chaos_replay.py --mode kill-worker
    PYTHONPATH=src python tools/chaos_replay.py --log /tmp/faults.json

``--mode pool`` (the default) exercises the local replay engines: it
synthesizes a deterministic multi-tenant trace, replays it once on the
fault-free serial path to get the *control* report, then replays it
again under a :class:`~repro.parallel.resilience.HostFaultPlan` that
SIGKILLs the worker process on the first attempt of the ``--kill``
hottest-sorted cells — through the streamed work-stealing engine, the
static batched engine, or both.  Every faulted run must recover (pool
rebuilt, in-flight cells resubmitted, killed cells retried) and produce
a report whose canonical rendering is SHA-256-identical to the control.

``--mode kill-worker`` exercises the remote fleet instead: it boots a
real ``repro serve --journal`` control plane plus two real ``repro
worker`` subprocesses, submits a ``"workers": "remote"`` run, SIGKILLs
one worker while the control plane shows it holding a cell lease, and
asserts the lease expires, the survivor finishes the run, and the
merged report is SHA-256-identical to the fault-free control — with no
cell journaled twice (see ``docs/workers.md``).

A machine-readable fault log (``--log``) records the control hash and
every run's verdict; CI uploads it as an artifact when the identity
check fails.  Exit status: 0 all identical, 1 any mismatch.

See ``docs/robustness.md`` for the failure model this exercises.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.loadgen.trace import synthesize_trace  # noqa: E402
from repro.metrics.report import render_json  # noqa: E402
from repro.parallel import (  # noqa: E402
    FaultSpec,
    HostFaultPlan,
    ReplaySpec,
    RetryPolicy,
    run_parallel_replay,
)


def report_sha256(result) -> str:
    """The canonical rendering's hash — the identity the harness asserts."""
    return hashlib.sha256(
        render_json(result.to_dict()).encode("utf-8")
    ).hexdigest()


def _sha_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def run_kill_worker_mode(args) -> int:
    """SIGKILL a real ``repro worker`` holding a lease; assert identity.

    Topology: one ``repro serve --journal`` control plane, two ``repro
    worker`` subprocesses, one remote run.  The victim is frozen
    (SIGSTOP) only once the control plane's ``GET /v1/workers`` shows it
    holding a lease — then killed, so the kill provably lands mid-cell.
    """
    import os
    import re
    import signal
    import subprocess
    import tempfile
    import time
    import urllib.request

    listening = re.compile(r"listening on (http://[0-9.]+:\d+)")
    worker_banner = re.compile(r"repro worker (w-\d+) serving")

    def request(url, body=None, timeout=10):
        data = None if body is None else json.dumps(body).encode()
        req = urllib.request.Request(
            url, data=data,
            headers={"Content-Type": "application/json"} if body else {},
        )
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return json.loads(resp.read())

    def poll(predicate, timeout_s, what):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            value = predicate()
            if value is not None:
                return value
            time.sleep(0.02)
        raise RuntimeError(f"timed out after {timeout_s}s waiting for {what}")

    synth = {
        "tenants": args.tenants, "duration_s": args.duration_s,
        "mean_rpm": args.mean_rpm, "apps": [args.app], "seed": args.seed,
    }
    body = {
        "app": args.app, "seed": args.seed, "workers": "remote",
        "synth": synth,
    }
    trace = synthesize_trace(**synth)
    spec = ReplaySpec(default_app=args.app, seed=args.seed)
    control = run_parallel_replay(trace, spec, shards=1, workers=1)
    control_sha = report_sha256(control)
    print(f"control: {control.offered} events, {control.cell_count} cells, "
          f"sha256 {control_sha[:16]}…")

    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )

    def spawn(argv):
        return subprocess.Popen(
            [sys.executable, "-m", "repro", *argv],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            env=env, text=True,
        )

    workdir = Path(tempfile.mkdtemp(prefix="chaos-kill-worker-"))
    journal_path = workdir / "journal.jsonl"
    serve = spawn([
        "serve", "--port", "0", "--workers", "1",
        "--journal", str(journal_path),
        "--lease-timeout-s", str(args.lease_timeout_s),
    ])
    workers = []
    run_record = {"mode": "kill-worker", "identical": False}
    try:
        match = listening.search(serve.stdout.readline() or "")
        if not match:
            raise RuntimeError("repro serve printed no listening banner")
        base = match.group(1)

        by_id = {}
        for _ in range(2):
            proc = spawn(["worker", "--server", base, "--poll-s", "1"])
            workers.append(proc)
            match = worker_banner.search(proc.stdout.readline() or "")
            if not match:
                raise RuntimeError("repro worker printed no banner")
            by_id[match.group(1)] = proc

        run_id = request(f"{base}/v1/runs", body)["id"]

        def journaled_cells():
            if not journal_path.exists():
                return []
            keys = []
            for line in journal_path.read_text(
                errors="replace"
            ).split("\n")[:-1]:
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if record.get("rec") == "cell" and record.get(
                    "run"
                ) == run_id:
                    keys.append(record["key"])
            return keys

        poll(lambda: journaled_cells() or None, 60, "first journaled cell")

        def freeze_lease_holder():
            snap = request(f"{base}/v1/workers")
            for worker in snap["workers"]:
                if worker["leases"] and worker["id"] in by_id:
                    proc = by_id[worker["id"]]
                    os.kill(proc.pid, signal.SIGSTOP)
                    held = all(
                        any(
                            w["id"] == worker["id"] and w["leases"]
                            for w in request(
                                f"{base}/v1/workers"
                            )["workers"]
                        )
                        for _ in range(2)
                    )
                    if held:
                        return worker["id"], proc
                    os.kill(proc.pid, signal.SIGCONT)
            return None

        victim_id, victim = poll(
            freeze_lease_holder, 60, "a worker holding a lease"
        )
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)
        print(f"SIGKILLed {victim_id} while it held a cell lease")

        def finished():
            snap = request(f"{base}/v1/runs/{run_id}")
            return snap if snap["status"] not in (
                "queued", "running"
            ) else None

        snap = poll(finished, 300, "the remote run to finish")
        if snap["status"] != "done":
            raise RuntimeError(
                f"remote run ended {snap['status']}: {snap.get('error')}"
            )
        sha = _sha_text(render_json(snap["report"]))
        identical = sha == control_sha
        cells = journaled_cells()
        dupes = len(cells) - len(set(cells))
        run_record = {
            "mode": "kill-worker",
            "victim": victim_id,
            "report_sha256": sha,
            "identical": identical,
            "cells_journaled": len(cells),
            "journal_duplicates": dupes,
        }
        verdict = "identical" if identical else "MISMATCH"
        print(f"kill-worker: survivor finished the run, "
              f"sha256 {sha[:16]}… [{verdict}]; "
              f"{len(cells)} cells journaled, {dupes} duplicate(s)")
        failed = (not identical) or dupes
    finally:
        for proc in [serve, *workers]:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=30)

    log = {
        "trace": {**synth, "events": control.offered},
        "control_sha256": control_sha,
        "runs": [run_record],
        "identical": run_record.get("identical", False),
    }
    args.log.parent.mkdir(parents=True, exist_ok=True)
    args.log.write_text(json.dumps(log, indent=2) + "\n")
    print(f"[fault log: {args.log}]")
    if failed:
        print("FAIL: the recovered remote run diverged from control",
              file=sys.stderr)
        return 1
    print("OK: the recovered remote report is byte-identical to the control")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="SIGKILL replay workers mid-cell; assert the recovered "
        "report is SHA-256-identical to the fault-free control"
    )
    parser.add_argument("--tenants", type=int, default=6,
                        help="synthetic trace tenants (default: 6)")
    parser.add_argument("--duration-s", type=float, default=20.0,
                        help="synthetic trace length (default: 20)")
    parser.add_argument("--mean-rpm", type=float, default=40.0,
                        help="mean per-tenant rate (default: 40)")
    parser.add_argument("--seed", type=int, default=0,
                        help="trace + replay seed (default: 0)")
    parser.add_argument("--app", default="wc",
                        help="app for every synthetic event (default: wc)")
    parser.add_argument("--workers", type=int, default=2,
                        help="replay worker processes (default: 2)")
    parser.add_argument("--shards", type=int, default=2,
                        help="batched-engine shard count (default: 2)")
    parser.add_argument("--kill", type=int, default=1, metavar="N",
                        help="cells whose first attempt SIGKILLs its "
                        "worker (default: 1)")
    parser.add_argument("--max-attempts", type=int, default=4,
                        help="retry budget per cell (default: 4)")
    parser.add_argument("--engine", choices=["streamed", "batched", "both"],
                        default="both",
                        help="which engine(s) to fault (default: both)")
    parser.add_argument("--log", type=Path,
                        default=Path("chaos_fault_log.json"),
                        help="machine-readable fault log "
                        "(default: chaos_fault_log.json)")
    parser.add_argument("--mode", choices=["pool", "kill-worker"],
                        default="pool",
                        help="pool: SIGKILL local replay workers via a "
                        "fault plan (default); kill-worker: boot a real "
                        "control plane + 2 'repro worker' processes and "
                        "SIGKILL one mid-cell (see docs/workers.md)")
    parser.add_argument("--lease-timeout-s", type=float, default=6.0,
                        help="kill-worker mode: the control plane's cell "
                        "lease deadline (default: 6)")
    args = parser.parse_args(argv)
    if args.kill < 0:
        parser.error("--kill must be >= 0")
    if args.kill > args.tenants:
        parser.error("--kill cannot exceed --tenants")
    if args.lease_timeout_s <= 0:
        parser.error("--lease-timeout-s must be > 0")
    if args.mode == "kill-worker":
        return run_kill_worker_mode(args)

    trace = synthesize_trace(
        tenants=args.tenants,
        duration_s=args.duration_s,
        mean_rpm=args.mean_rpm,
        apps=[args.app],
        seed=args.seed,
    )
    spec = ReplaySpec(default_app=args.app, seed=args.seed)
    victims = sorted(trace.tenants())[: args.kill]
    retry = RetryPolicy(max_attempts=args.max_attempts, backoff_base_s=0.01)
    plan = HostFaultPlan(faults=tuple(
        FaultSpec(kind="kill", cell=cell, attempt=1) for cell in victims
    ))

    control = run_parallel_replay(trace, spec, shards=1, workers=1)
    control_sha = report_sha256(control)
    print(f"control: {control.offered} events, {control.cell_count} cells, "
          f"sha256 {control_sha[:16]}…")

    engines = (
        ["streamed", "batched"] if args.engine == "both" else [args.engine]
    )
    runs = []
    failures = []
    for engine in engines:
        streamed = engine == "streamed"
        result = run_parallel_replay(
            trace,
            spec,
            shards=1 if streamed else args.shards,
            workers=args.workers,
            stream=streamed,
            retry=retry,
            fault_plan=plan,
        )
        sha = report_sha256(result)
        identical = sha == control_sha
        runs.append({
            "engine": engine,
            "workers": args.workers,
            "shards": 1 if streamed else args.shards,
            "report_sha256": sha,
            "identical": identical,
        })
        verdict = "identical" if identical else "MISMATCH"
        print(f"{engine}: recovered from {len(victims)} worker kill(s), "
              f"sha256 {sha[:16]}… [{verdict}]")
        if not identical:
            failures.append(engine)

    log = {
        "trace": {
            "tenants": args.tenants,
            "duration_s": args.duration_s,
            "mean_rpm": args.mean_rpm,
            "seed": args.seed,
            "app": args.app,
            "events": control.offered,
        },
        "faults": plan.to_payload(),
        "retry": {"max_attempts": args.max_attempts},
        "control_sha256": control_sha,
        "runs": runs,
        "identical": not failures,
    }
    args.log.parent.mkdir(parents=True, exist_ok=True)
    args.log.write_text(json.dumps(log, indent=2) + "\n")
    print(f"[fault log: {args.log}]")
    if failures:
        print(f"FAIL: recovered report diverged from control on "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    print("OK: every recovered report is byte-identical to the control")
    return 0


if __name__ == "__main__":
    sys.exit(main())
