#!/usr/bin/env python3
"""Chaos harness: SIGKILL replay workers mid-cell, assert report identity.

The crash-identity property, end to end on a real process pool::

    PYTHONPATH=src python tools/chaos_replay.py                  # CI smoke
    PYTHONPATH=src python tools/chaos_replay.py --kill 2 --engine both
    PYTHONPATH=src python tools/chaos_replay.py --log /tmp/faults.json

It synthesizes a deterministic multi-tenant trace, replays it once on
the fault-free serial path to get the *control* report, then replays it
again under a :class:`~repro.parallel.resilience.HostFaultPlan` that
SIGKILLs the worker process on the first attempt of the ``--kill``
hottest-sorted cells — through the streamed work-stealing engine, the
static batched engine, or both.  Every faulted run must recover (pool
rebuilt, in-flight cells resubmitted, killed cells retried) and produce
a report whose canonical rendering is SHA-256-identical to the control.

A machine-readable fault log (``--log``) records the control hash and
every run's verdict; CI uploads it as an artifact when the identity
check fails.  Exit status: 0 all identical, 1 any mismatch.

See ``docs/robustness.md`` for the failure model this exercises.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.loadgen.trace import synthesize_trace  # noqa: E402
from repro.metrics.report import render_json  # noqa: E402
from repro.parallel import (  # noqa: E402
    FaultSpec,
    HostFaultPlan,
    ReplaySpec,
    RetryPolicy,
    run_parallel_replay,
)


def report_sha256(result) -> str:
    """The canonical rendering's hash — the identity the harness asserts."""
    return hashlib.sha256(
        render_json(result.to_dict()).encode("utf-8")
    ).hexdigest()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="SIGKILL replay workers mid-cell; assert the recovered "
        "report is SHA-256-identical to the fault-free control"
    )
    parser.add_argument("--tenants", type=int, default=6,
                        help="synthetic trace tenants (default: 6)")
    parser.add_argument("--duration-s", type=float, default=20.0,
                        help="synthetic trace length (default: 20)")
    parser.add_argument("--mean-rpm", type=float, default=40.0,
                        help="mean per-tenant rate (default: 40)")
    parser.add_argument("--seed", type=int, default=0,
                        help="trace + replay seed (default: 0)")
    parser.add_argument("--app", default="wc",
                        help="app for every synthetic event (default: wc)")
    parser.add_argument("--workers", type=int, default=2,
                        help="replay worker processes (default: 2)")
    parser.add_argument("--shards", type=int, default=2,
                        help="batched-engine shard count (default: 2)")
    parser.add_argument("--kill", type=int, default=1, metavar="N",
                        help="cells whose first attempt SIGKILLs its "
                        "worker (default: 1)")
    parser.add_argument("--max-attempts", type=int, default=4,
                        help="retry budget per cell (default: 4)")
    parser.add_argument("--engine", choices=["streamed", "batched", "both"],
                        default="both",
                        help="which engine(s) to fault (default: both)")
    parser.add_argument("--log", type=Path,
                        default=Path("chaos_fault_log.json"),
                        help="machine-readable fault log "
                        "(default: chaos_fault_log.json)")
    args = parser.parse_args(argv)
    if args.kill < 0:
        parser.error("--kill must be >= 0")
    if args.kill > args.tenants:
        parser.error("--kill cannot exceed --tenants")

    trace = synthesize_trace(
        tenants=args.tenants,
        duration_s=args.duration_s,
        mean_rpm=args.mean_rpm,
        apps=[args.app],
        seed=args.seed,
    )
    spec = ReplaySpec(default_app=args.app, seed=args.seed)
    victims = sorted(trace.tenants())[: args.kill]
    retry = RetryPolicy(max_attempts=args.max_attempts, backoff_base_s=0.01)
    plan = HostFaultPlan(faults=tuple(
        FaultSpec(kind="kill", cell=cell, attempt=1) for cell in victims
    ))

    control = run_parallel_replay(trace, spec, shards=1, workers=1)
    control_sha = report_sha256(control)
    print(f"control: {control.offered} events, {control.cell_count} cells, "
          f"sha256 {control_sha[:16]}…")

    engines = (
        ["streamed", "batched"] if args.engine == "both" else [args.engine]
    )
    runs = []
    failures = []
    for engine in engines:
        streamed = engine == "streamed"
        result = run_parallel_replay(
            trace,
            spec,
            shards=1 if streamed else args.shards,
            workers=args.workers,
            stream=streamed,
            retry=retry,
            fault_plan=plan,
        )
        sha = report_sha256(result)
        identical = sha == control_sha
        runs.append({
            "engine": engine,
            "workers": args.workers,
            "shards": 1 if streamed else args.shards,
            "report_sha256": sha,
            "identical": identical,
        })
        verdict = "identical" if identical else "MISMATCH"
        print(f"{engine}: recovered from {len(victims)} worker kill(s), "
              f"sha256 {sha[:16]}… [{verdict}]")
        if not identical:
            failures.append(engine)

    log = {
        "trace": {
            "tenants": args.tenants,
            "duration_s": args.duration_s,
            "mean_rpm": args.mean_rpm,
            "seed": args.seed,
            "app": args.app,
            "events": control.offered,
        },
        "faults": plan.to_payload(),
        "retry": {"max_attempts": args.max_attempts},
        "control_sha256": control_sha,
        "runs": runs,
        "identical": not failures,
    }
    args.log.parent.mkdir(parents=True, exist_ok=True)
    args.log.write_text(json.dumps(log, indent=2) + "\n")
    print(f"[fault log: {args.log}]")
    if failures:
        print(f"FAIL: recovered report diverged from control on "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    print("OK: every recovered report is byte-identical to the control")
    return 0


if __name__ == "__main__":
    sys.exit(main())
