#!/usr/bin/env python3
"""Check that the docs run and cover the public surface.

Three enforcement passes, so docs never drift from the code:

1. **Code blocks run.**  Every fenced ```python block in README.md and
   docs/*.md executes in a fresh namespace.  Blocks fenced with any
   other info string (```text, ```console, ```json, ...) are ignored.
2. **CLI coverage.**  Every ``repro`` subcommand registered in
   :func:`repro.cli.build_parser` must be mentioned somewhere in the
   docs corpus — adding a subcommand without documenting it fails CI.
3. **REST coverage.**  Every route in :data:`repro.serve.ROUTES` must
   appear (method and path pattern) in ``docs/serve.md`` — adding an
   endpoint to ``src/repro/serve/`` without a matching reference
   section fails CI.
4. **Telemetry coverage.**  Every event kind and metric name declared
   in :mod:`repro.metrics.telemetry` must appear in
   ``docs/observability.md`` — adding a kind or metric without
   documenting it fails CI.
5. **Failure-model coverage.**  Every failure kind declared in
   :data:`repro.parallel.resilience.FAILURE_KINDS` must appear as
   inline code in ``docs/robustness.md`` — extending the taxonomy
   without documenting it fails CI.
6. **Worker-fleet coverage.**  While the ``repro worker`` subcommand
   exists, ``docs/workers.md`` must exist, name the subcommand, and
   mention every fleet route (the ``/v1/workers*`` and ``/v1/cells*``
   entries of :data:`repro.serve.ROUTES`) — the lease protocol cannot
   drift undocumented.

Usage:  PYTHONPATH=src python tools/check_docs.py [paths...]
(Coverage passes run only on the default full-corpus invocation.)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

FENCE = re.compile(r"^```(\w*)\s*$")


def python_blocks(text: str) -> List[Tuple[int, str]]:
    """(start line, source) for each ```python block in a document."""
    blocks = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        match = FENCE.match(lines[i])
        if match and match.group(1) == "python":
            start = i + 2  # first code line, 1-indexed
            body = []
            i += 1
            while i < len(lines) and not lines[i].startswith("```"):
                body.append(lines[i])
                i += 1
            blocks.append((start, "\n".join(body)))
        i += 1
    return blocks


def check_file(path: Path) -> Tuple[int, List[str]]:
    """(block count, failure messages) for one document."""
    blocks = python_blocks(path.read_text())
    failures = []
    for line_no, source in blocks:
        try:
            code = compile(source, f"{path}:{line_no}", "exec")
            exec(code, {"__name__": f"docs_block_{path.stem}_{line_no}"})
        except Exception as exc:  # noqa: BLE001 - report every failure kind
            failures.append(f"{path}:{line_no}: {type(exc).__name__}: {exc}")
    return len(blocks), failures


def cli_subcommands() -> List[str]:
    """Every registered ``repro`` subcommand name, from the live parser."""
    from repro.cli import build_parser

    parser = build_parser()
    for action in parser._subparsers._group_actions:  # noqa: SLF001
        return sorted(action.choices)
    return []


def serve_routes() -> List[Tuple[str, str]]:
    """Every REST route the service answers, from the live route table."""
    from repro.serve import ROUTES

    return [(method, pattern) for method, pattern, _summary in ROUTES]


def check_cli_coverage(corpus: str) -> List[str]:
    """Each CLI subcommand must be named somewhere in the docs corpus."""
    failures = []
    for name in cli_subcommands():
        if not re.search(rf"repro {re.escape(name)}\b", corpus):
            failures.append(
                f"CLI subcommand 'repro {name}' is not documented anywhere "
                f"in README.md or docs/"
            )
    return failures


def check_route_coverage(serve_doc: Path) -> List[str]:
    """Each REST route must appear — method and path — in docs/serve.md.

    Path matches are whole-route: a pattern must not continue into a
    longer sibling (``/v1/runs`` is not documented by a mention of
    ``/v1/runs/<id>``), enforced by the no-path-character lookahead.
    """
    if not serve_doc.is_file():
        return [f"{serve_doc} is missing but repro.serve defines routes"]
    text = serve_doc.read_text()
    failures = []
    for method, pattern in serve_routes():
        exact = rf"{re.escape(pattern)}(?![/\w<])"
        if not re.search(exact, text):
            failures.append(
                f"route {method} {pattern} has no matching section in "
                f"{serve_doc.name}"
            )
        elif not re.search(rf"\b{method}\b[^\n]*{exact}", text):
            failures.append(
                f"{serve_doc.name} mentions {pattern} but never with its "
                f"method {method}"
            )
    return failures


def telemetry_surface() -> Tuple[List[str], List[str]]:
    """(event kinds, metric names) from the live telemetry schema."""
    from repro.metrics.telemetry import event_kinds, metric_names

    return event_kinds(), metric_names()


def check_event_coverage(obs_doc: Path) -> List[str]:
    """Each event kind and metric name must appear in observability.md.

    Kinds must show up as inline code (`` `cell` ``) so a prose word
    like "error" never satisfies the check by accident; metric names
    are unambiguous enough to match bare.
    """
    kinds, names = telemetry_surface()
    if not obs_doc.is_file():
        return [
            f"{obs_doc} is missing but repro.metrics.telemetry declares "
            f"{len(kinds)} event kind(s) and {len(names)} metric(s)"
        ]
    text = obs_doc.read_text()
    failures = []
    for kind in kinds:
        if not re.search(rf"`{re.escape(kind)}`", text):
            failures.append(
                f"event kind '{kind}' has no `{kind}` reference in "
                f"{obs_doc.name}"
            )
    for name in names:
        if not re.search(rf"\b{re.escape(name)}\b", text):
            failures.append(
                f"metric '{name}' is not documented in {obs_doc.name}"
            )
    return failures


def check_failure_coverage(robustness_doc: Path) -> List[str]:
    """Each failure kind must appear as inline code in robustness.md.

    Same inline-code rule as event kinds: a prose "timeout" never
    satisfies the check by accident.
    """
    from repro.parallel.resilience import FAILURE_KINDS

    if not robustness_doc.is_file():
        return [
            f"{robustness_doc} is missing but repro.parallel.resilience "
            f"declares {len(FAILURE_KINDS)} failure kind(s)"
        ]
    text = robustness_doc.read_text()
    failures = []
    for kind in FAILURE_KINDS:
        if not re.search(rf"`{re.escape(kind)}`", text):
            failures.append(
                f"failure kind '{kind}' has no `{kind}` reference in "
                f"{robustness_doc.name}"
            )
    return failures


def check_worker_coverage(workers_doc: Path) -> List[str]:
    """The worker subcommand demands a lease-protocol reference doc.

    ``docs/workers.md`` must exist, name ``repro worker``, and mention
    every fleet route; the method-on-same-line rule stays with
    :func:`check_route_coverage`, which covers the full route table.
    """
    if "worker" not in cli_subcommands():
        return []
    fleet_routes = [
        (method, pattern)
        for method, pattern in serve_routes()
        if pattern.startswith(("/v1/workers", "/v1/cells"))
    ]
    if not workers_doc.is_file():
        return [
            f"{workers_doc} is missing but the 'repro worker' subcommand "
            f"and {len(fleet_routes)} fleet route(s) exist"
        ]
    text = workers_doc.read_text()
    failures = []
    if not re.search(r"repro worker\b", text):
        failures.append(
            f"{workers_doc.name} never names the 'repro worker' subcommand"
        )
    for method, pattern in fleet_routes:
        if not re.search(rf"{re.escape(pattern)}(?![/\w<])", text):
            failures.append(
                f"fleet route {method} {pattern} is not mentioned in "
                f"{workers_doc.name}"
            )
    return failures


def main(argv: List[str]) -> int:
    paths = (
        [Path(p) for p in argv]
        if argv
        else [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]
    )
    failures: List[str] = []
    checked = 0
    for path in paths:
        count, file_failures = check_file(path)
        checked += count
        failures.extend(file_failures)
    coverage = 0
    if not argv:
        corpus = "\n".join(path.read_text() for path in paths)
        coverage_failures = check_cli_coverage(corpus)
        coverage_failures += check_route_coverage(ROOT / "docs" / "serve.md")
        coverage_failures += check_event_coverage(
            ROOT / "docs" / "observability.md"
        )
        coverage_failures += check_failure_coverage(
            ROOT / "docs" / "robustness.md"
        )
        coverage_failures += check_worker_coverage(
            ROOT / "docs" / "workers.md"
        )
        from repro.parallel.resilience import FAILURE_KINDS

        kinds, names = telemetry_surface()
        coverage = (len(cli_subcommands()) + len(serve_routes())
                    + len(kinds) + len(names) + len(FAILURE_KINDS))
        failures.extend(coverage_failures)
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    print(f"checked {checked} python block(s) in {len(paths)} file(s) and "
          f"{coverage} CLI/REST surface item(s): "
          f"{'FAIL' if failures else 'ok'}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
