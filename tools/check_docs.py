#!/usr/bin/env python3
"""Check that every ``python`` code block in the docs actually runs.

Extracts fenced ```python blocks from README.md and docs/*.md and
executes each in a fresh namespace (so docs never drift from the code).
Blocks fenced with any other info string (```text, ```console, ```json,
...) are ignored.

Usage:  PYTHONPATH=src python tools/check_docs.py [paths...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

FENCE = re.compile(r"^```(\w*)\s*$")


def python_blocks(text: str) -> List[Tuple[int, str]]:
    """(start line, source) for each ```python block in a document."""
    blocks = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        match = FENCE.match(lines[i])
        if match and match.group(1) == "python":
            start = i + 2  # first code line, 1-indexed
            body = []
            i += 1
            while i < len(lines) and not lines[i].startswith("```"):
                body.append(lines[i])
                i += 1
            blocks.append((start, "\n".join(body)))
        i += 1
    return blocks


def check_file(path: Path) -> Tuple[int, List[str]]:
    """(block count, failure messages) for one document."""
    blocks = python_blocks(path.read_text())
    failures = []
    for line_no, source in blocks:
        try:
            code = compile(source, f"{path}:{line_no}", "exec")
            exec(code, {"__name__": f"docs_block_{path.stem}_{line_no}"})
        except Exception as exc:  # noqa: BLE001 - report every failure kind
            failures.append(f"{path}:{line_no}: {type(exc).__name__}: {exc}")
    return len(blocks), failures


def main(argv: List[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    paths = (
        [Path(p) for p in argv]
        if argv
        else [root / "README.md", *sorted((root / "docs").glob("*.md"))]
    )
    failures: List[str] = []
    checked = 0
    for path in paths:
        count, file_failures = check_file(path)
        checked += count
        failures.extend(file_failures)
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    print(f"checked {checked} python block(s) in {len(paths)} file(s): "
          f"{'FAIL' if failures else 'ok'}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
