#!/usr/bin/env python3
"""Regenerate the golden replay reports under ``tests/golden/``.

Each registered execution system gets one canonical fixture: the merged
JSON report of a small fixed trace (one app, two tenants) replayed
through the sharded engine at ``shards=2``.  The comparator in
``tests/test_golden_reports.py`` re-runs the same scenario on every test
run and diffs byte-for-byte, so any drift in the simulator, the metrics
layer, or the report serialization is caught explicitly instead of
silently absorbed.

Run after an *intentional* behavior change::

    PYTHONPATH=src python tools/regen_golden.py

and commit the updated fixtures together with the change that caused
them.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.experiments.common import system_names  # noqa: E402
from repro.loadgen.trace import InvocationTrace  # noqa: E402
from repro.metrics.report import render_json  # noqa: E402
from repro.parallel import ReplaySpec, run_parallel_replay  # noqa: E402

GOLDEN_DIR = ROOT / "tests" / "golden"
GOLDEN_APP = "wc"
GOLDEN_SEED = 7
GOLDEN_SHARDS = 2

#: The canonical scenario: two tenants, six requests, one app, with the
#: input-size/fanout/seed variety the report schema must round-trip.
GOLDEN_TRACE_CSV = """at_s,tenant,app,input_bytes,fanout,seed
0.0,acme,wc,1MB,2,0
0.5,globex,wc,2MB,,1
1.0,acme,wc,,4,2
1.5,globex,wc,1MB,2,3
2.5,acme,wc,2MB,,4
3.0,globex,wc,,,5
"""


def golden_trace() -> InvocationTrace:
    return InvocationTrace.from_csv(GOLDEN_TRACE_CSV, name="golden")


def golden_report(system_name: str) -> str:
    """The canonical serialized report for one system (trailing newline)."""
    spec = ReplaySpec(
        system_name=system_name, default_app=GOLDEN_APP, seed=GOLDEN_SEED
    )
    result = run_parallel_replay(
        golden_trace(), spec, shards=GOLDEN_SHARDS, workers=1
    )
    return render_json(result.to_dict()) + "\n"


def golden_path(system_name: str) -> Path:
    return GOLDEN_DIR / f"replay_{system_name}__{GOLDEN_APP}.json"


def main(argv=None) -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for system_name in system_names():
        path = golden_path(system_name)
        path.write_text(golden_report(system_name))
        print(f"[wrote {path.relative_to(ROOT)}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
