#!/usr/bin/env python3
"""Record replay-engine benchmark points into ``BENCH_replay.json``.

Runs the benches defined in ``benchmarks/test_bench_replay.py`` (the
same code the pytest benchmarks execute), prints each point as a
``BENCH {json}`` line, and appends one run entry to the committed
trajectory file::

    PYTHONPATH=src python tools/bench_replay.py                 # ~900-event run
    PYTHONPATH=src python tools/bench_replay.py --scale 114     # ~100k-event run
    PYTHONPATH=src python tools/bench_replay.py --points spill,multicore
    PYTHONPATH=src python tools/bench_replay.py --output /tmp/b.json

Points: ``throughput`` (serial vs parallel), ``skew`` (static-batched
vs work-stealing on the skewed trace), ``memory`` (per-engine peak
RSS), ``multicore`` (shards×workers sweep, both engines), ``spill``
(streamed-engine RSS with the in-memory vs disk-spill record sink —
fails if spill does not win at >= 50k events).

Every engine-vs-engine measurement replays in a *fresh subprocess*
(the hidden ``--engine`` mode below) so wall clock and the monotonic
``ru_maxrss`` high-water mark are isolated per engine — and so neither
engine's forked workers inherit the other's heap.  Report identity is
asserted across processes via the canonical rendering's SHA-256.

CI runs this at reduced scale and uploads the result as an artifact
(plus the full-scale spill gate); full-scale runs are recorded
manually and committed so the perf trajectory of the engine is
diffable across commits.
"""

from __future__ import annotations

import argparse
import hashlib
import importlib.util
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

_spec = importlib.util.spec_from_file_location(
    "bench_replay_module", ROOT / "benchmarks" / "test_bench_replay.py"
)
bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench)

DEFAULT_OUTPUT = ROOT / "BENCH_replay.json"


def _run_engine(
    engine: str, scale: float, workers: int, shards: int, record_sink: str
) -> dict:
    """The hidden ``--engine`` subprocess body: one isolated replay."""
    from repro.metrics.report import render_json

    sink = None
    if record_sink == "spill":
        from repro.parallel.sink import RecordSinkSpec

        sink = RecordSinkSpec(kind="spill")
    result = bench.replay_skewed(
        engine == "streamed", scale, workers, shards, record_sink=sink
    )
    report = render_json(result.to_dict())
    return {
        "engine": engine,
        "record_sink": record_sink,
        "events": result.offered,
        "wall_s": round(result.wall_s, 4),
        "max_rss_mb": round(result.rss_mb, 1),
        # Identity across subprocess boundaries: the canonical report
        # rendering hashed, compared by the parent per comparison point.
        "report_sha256": hashlib.sha256(
            report.encode("utf-8")
        ).hexdigest(),
    }


def memory_point(scale: float, workers: int) -> dict:
    """Per-engine peak RSS over the skewed trace, isolated per process."""
    streamed = bench.engine_subprocess("streamed", scale, workers)
    batched = bench.engine_subprocess("batched", scale, workers)
    return {
        "bench": "replay_memory",
        "events": streamed["events"],
        "workers": workers,
        "streamed_wall_s": streamed["wall_s"],
        "batched_wall_s": batched["wall_s"],
        "streamed_max_rss_mb": streamed["max_rss_mb"],
        "batched_max_rss_mb": batched["max_rss_mb"],
        "identical": streamed["report_sha256"] == batched["report_sha256"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="record replay bench points into BENCH_replay.json"
    )
    parser.add_argument("--scale", type=float, default=1.0,
                        help="trace duration multiplier (1.0 ~= 900 "
                        "events; ~114 gives the 100k-event trace)")
    parser.add_argument("--workers", type=int, default=bench.WORKERS,
                        help=f"worker processes (default: {bench.WORKERS})")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="trajectory file to append the run to "
                        "(default: BENCH_replay.json at the repo root)")
    parser.add_argument("--points", default="throughput,skew,memory",
                        help="comma-separated subset of throughput,skew,"
                        "memory,multicore,spill to record (full-scale "
                        "runs usually record skew/memory/spill only)")
    parser.add_argument("--engine", choices=["streamed", "batched"],
                        help=argparse.SUPPRESS)  # internal subprocess mode
    parser.add_argument("--shards", type=int, default=bench.SHARDS,
                        help=argparse.SUPPRESS)  # internal subprocess mode
    parser.add_argument("--record-sink", choices=["memory", "spill"],
                        default="memory",
                        help=argparse.SUPPRESS)  # internal subprocess mode
    args = parser.parse_args(argv)

    if args.engine:
        print(json.dumps(_run_engine(
            args.engine, args.scale, args.workers, args.shards,
            args.record_sink,
        )))
        return 0

    selected = {name.strip() for name in args.points.split(",") if name.strip()}
    unknown = selected - {"throughput", "skew", "memory", "multicore", "spill"}
    if unknown:
        parser.error(f"unknown --points: {sorted(unknown)}")
    if not selected:
        parser.error("--points selected nothing to record")
    points = []
    if "throughput" in selected:
        points.append(bench.throughput_point(args.scale))
    if "skew" in selected:
        points.append(bench.skew_point(args.scale, args.workers))
    if "memory" in selected:
        points.append(memory_point(args.scale, args.workers))
    if "multicore" in selected:
        points.append(bench.multicore_point(args.scale))
    if "spill" in selected:
        points.append(bench.spill_point(args.scale, args.workers))
    for point in points:
        print("BENCH " + json.dumps(point, sort_keys=True))

    run = {
        "recorded": time.strftime("%Y-%m-%d"),
        "scale": args.scale,
        "points": points,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    if args.output.exists():
        payload = json.loads(args.output.read_text())
    else:
        payload = {"bench": "replay", "runs": []}
    payload["runs"].append(run)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[appended run to {args.output}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
