#!/usr/bin/env python3
"""Record replay-engine benchmark points into ``BENCH_replay.json``.

Runs the benches defined in ``benchmarks/test_bench_replay.py`` (the
same code the pytest benchmarks execute), prints each point as a
``BENCH {json}`` line, and appends one run entry — throughput,
skew-stealing, and a per-engine peak-RSS comparison — to the committed
trajectory file::

    PYTHONPATH=src python tools/bench_replay.py                 # ~900-event run
    PYTHONPATH=src python tools/bench_replay.py --scale 114     # ~100k-event run
    PYTHONPATH=src python tools/bench_replay.py --output /tmp/b.json

The memory point replays the skewed trace once per engine in a *fresh
subprocess* so each engine's ``ru_maxrss`` high-water mark is measured
in isolation (within one process the mark is monotonic and the second
engine could never measure below the first).

CI runs this at reduced scale and uploads the result as an artifact;
full-scale runs are recorded manually and committed so the perf
trajectory of the engine is diffable across commits.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

_spec = importlib.util.spec_from_file_location(
    "bench_replay_module", ROOT / "benchmarks" / "test_bench_replay.py"
)
bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench)

DEFAULT_OUTPUT = ROOT / "BENCH_replay.json"


def _engine_subprocess(engine: str, scale: float, workers: int) -> dict:
    """Run one engine over the skewed trace in a fresh process and
    report its isolated wall clock and peak RSS."""
    out = subprocess.run(
        [
            sys.executable, str(Path(__file__).resolve()),
            "--engine", engine, "--scale", str(scale),
            "--workers", str(workers),
        ],
        capture_output=True, text=True, check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def _run_engine(engine: str, scale: float, workers: int) -> dict:
    result = bench.replay_skewed(engine == "streamed", scale, workers)
    return {
        "engine": engine,
        "events": result.offered,
        "wall_s": round(result.wall_s, 4),
        "max_rss_mb": round(result.rss_mb, 1),
    }


def memory_point(scale: float, workers: int) -> dict:
    """Per-engine peak RSS over the skewed trace, isolated per process."""
    streamed = _engine_subprocess("streamed", scale, workers)
    batched = _engine_subprocess("batched", scale, workers)
    return {
        "bench": "replay_memory",
        "events": streamed["events"],
        "workers": workers,
        "streamed_wall_s": streamed["wall_s"],
        "batched_wall_s": batched["wall_s"],
        "streamed_max_rss_mb": streamed["max_rss_mb"],
        "batched_max_rss_mb": batched["max_rss_mb"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="record replay bench points into BENCH_replay.json"
    )
    parser.add_argument("--scale", type=float, default=1.0,
                        help="trace duration multiplier (1.0 ~= 900 "
                        "events; ~114 gives the 100k-event trace)")
    parser.add_argument("--workers", type=int, default=bench.WORKERS,
                        help=f"worker processes (default: {bench.WORKERS})")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="trajectory file to append the run to "
                        "(default: BENCH_replay.json at the repo root)")
    parser.add_argument("--points", default="throughput,skew,memory",
                        help="comma-separated subset of "
                        "throughput,skew,memory to record (full-scale "
                        "runs usually record skew/memory only)")
    parser.add_argument("--engine", choices=["streamed", "batched"],
                        help=argparse.SUPPRESS)  # internal subprocess mode
    args = parser.parse_args(argv)

    if args.engine:
        print(json.dumps(_run_engine(args.engine, args.scale, args.workers)))
        return 0

    selected = {name.strip() for name in args.points.split(",") if name.strip()}
    unknown = selected - {"throughput", "skew", "memory"}
    if unknown:
        parser.error(f"unknown --points: {sorted(unknown)}")
    if not selected:
        parser.error("--points selected nothing to record")
    points = []
    if "throughput" in selected:
        points.append(bench.throughput_point(args.scale))
    if "skew" in selected:
        points.append(bench.skew_point(args.scale, args.workers))
    if "memory" in selected:
        points.append(memory_point(args.scale, args.workers))
    for point in points:
        print("BENCH " + json.dumps(point, sort_keys=True))

    run = {
        "recorded": time.strftime("%Y-%m-%d"),
        "scale": args.scale,
        "points": points,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    if args.output.exists():
        payload = json.loads(args.output.read_text())
    else:
        payload = {"bench": "replay", "runs": []}
    payload["runs"].append(run)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[appended run to {args.output}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
