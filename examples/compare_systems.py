#!/usr/bin/env python3
"""Compare DataFlower against FaaSFlow and SONIC on the video pipeline.

Drives the vid benchmark (split -> transcode x4 -> merge, the workload the
paper's introduction motivates) with an open-loop load on all three
systems and prints the latency/memory comparison of Figure 10(b).

Run:  python examples/compare_systems.py [rpm]
"""

import sys

from repro import (
    Cluster,
    ClusterConfig,
    DataFlowerSystem,
    Environment,
    FaasFlowSystem,
    SonicSystem,
    constant,
    default_request_factory,
    render_table,
    round_robin,
    run_open_loop,
)
from repro.apps import get_app

SYSTEMS = [DataFlowerSystem, FaasFlowSystem, SonicSystem]


def run_one(system_cls, rpm: float, duration_s: float = 60.0):
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    system = system_cls(env, cluster)
    app = get_app("vid")
    workflow = app.build()
    system.deploy(workflow, round_robin(workflow, cluster.workers))
    factory = default_request_factory(
        system, workflow.name, app.default_input_bytes, app.default_fanout
    )
    return run_open_loop(
        system, workflow.name, factory, constant(rpm, duration_s)
    )


def main() -> None:
    rpm = float(sys.argv[1]) if len(sys.argv) > 1 else 16.0
    rows = []
    for system_cls in SYSTEMS:
        result = run_one(system_cls, rpm)
        latency = result.latency()
        rows.append(
            [
                result.system_name,
                result.offered,
                f"{latency.mean_s:.2f}",
                f"{latency.p99_s:.2f}",
                f"{result.usage.memory_gbs_per_request:.2f}",
                len(result.failed),
            ]
        )
    print(
        render_table(
            ["system", "requests", "mean_s", "p99_s", "mem GB*s/req", "failed"],
            rows,
            title=f"Video-FFmpeg at {rpm:.0f} rpm (async invocations, 60 s)",
        )
    )
    print(
        "\nDataFlower wins on both latency (early triggering + streaming "
        "overlap)\nand memory (containers finish sooner; sink entries are "
        "proactively released)."
    )


if __name__ == "__main__":
    main()
