# A minimal Figure-7 DSL workflow for `repro validate examples/pipeline.dsl`.
workflow_name: pipeline
dataflows:
  pipe_split:
    memory_mb: 256
    compute: base=0.01 per_mb=0.002
    output: ratio=1.0
    input_datas:
      source: $USER.input
    output_datas:
      chunks:
        type: FOREACH
        destination: pipe_work
  pipe_work:
    memory_mb: 256
    compute: base=0.02 per_mb=0.010
    output: fixed=128KB
    input_datas:
      source: pipe_split.chunks
    output_datas:
      results:
        type: MERGE
        destination: pipe_join
  pipe_join:
    memory_mb: 256
    compute: base=0.01 per_mb=0.004
    output: fixed=64KB
    input_datas:
      source: pipe_work.results
    output_datas:
      output:
        type: NORMAL
        destination: $USER
entry: pipe_split
