#!/usr/bin/env python3
"""Replay a multi-tenant invocation trace and compare two systems.

Demonstrates the trace-driven workload subsystem:

* load a mixed-workflow trace from CSV (three tenants, three apps),
* synthesize a larger Azure-style trace with heavy-tailed tenant rates,
* replay both against DataFlower and the FaaSFlow baseline,
* print per-tenant tail latency.

Run:  python examples/trace_replay.py
"""

from pathlib import Path

from repro import Cluster, ClusterConfig, Environment, render_table, round_robin
from repro.apps import get_app
from repro.experiments.common import SYSTEM_CLASSES
from repro.loadgen import InvocationTrace, run_trace, synthesize_trace

TRACE_PATH = Path(__file__).parent / "traces" / "mixed_tenants.csv"


def replay(system_name: str, trace: InvocationTrace, default_app: str = "wc"):
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    system = SYSTEM_CLASSES[system_name](env, cluster)
    for app_name in set(trace.apps()) | {default_app}:
        workflow = get_app(app_name).build()
        system.deploy(workflow, round_robin(workflow, cluster.workers))
    return run_trace(system, trace, default_app=default_app)


def main() -> None:
    trace = InvocationTrace.load(TRACE_PATH)
    print(f"file trace: {len(trace)} events, tenants={trace.tenants()}, "
          f"apps={trace.apps()}")

    rows = []
    for system_name in ("dataflower", "faasflow"):
        result = replay(system_name, trace)
        for tenant, records in sorted(result.tenant_records().items()):
            summary = result.tenant_latency(tenant)
            rows.append(
                [system_name, tenant, len(records), summary.p50_s, summary.p99_s]
            )
    print(render_table(
        ["system", "tenant", "requests", "p50_s", "p99_s"], rows,
        title="per-tenant latency, file trace",
    ))

    synthetic = synthesize_trace(
        tenants=6, duration_s=60.0, mean_rpm=15,
        apps=["wc", "ml_ensemble", "etl"], seed=42,
    )
    print(f"\nsynthetic trace: {len(synthetic)} events over "
          f"{synthetic.duration_s:.0f}s across {len(synthetic.tenants())} tenants")
    result = replay("dataflower", synthetic)
    report = result.to_dict()
    print(f"dataflower: {report['completed']}/{report['offered']} completed, "
          f"p99 {report['latency']['p99_s']:.2f}s")


if __name__ == "__main__":
    main()
