#!/usr/bin/env python3
"""Watch pressure-aware scaling absorb a traffic burst.

Replays the Figure 15 scenario — WordCount load jumping 10x — on
DataFlower with and without the pressure-aware mechanism, and reports how
each variant's latency distribution and container fleet respond.

Run:  python examples/bursty_autoscaling.py
"""

from repro import (
    Cluster,
    ClusterConfig,
    DataFlowerConfig,
    DataFlowerSystem,
    Environment,
    burst,
    default_request_factory,
    render_table,
    round_robin,
    run_open_loop,
)
from repro.apps import get_app


def run_variant(pressure_aware: bool):
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    system = DataFlowerSystem(
        env, cluster, DataFlowerConfig(pressure_aware=pressure_aware)
    )
    app = get_app("wc")
    workflow = app.build()
    system.deploy(workflow, round_robin(workflow, cluster.workers))
    factory = default_request_factory(
        system, workflow.name, app.default_input_bytes, app.default_fanout
    )
    result = run_open_loop(
        system, workflow.name, factory,
        burst(base_rpm=10, burst_rpm=100, base_duration_s=60, burst_duration_s=60),
    )
    containers = sum(
        dispatcher.pool.cold_starts
        for deployment in system.deployments.values()
        for dispatcher in deployment.dispatchers.values()
    )
    return result, containers


def main() -> None:
    rows = []
    for pressure_aware in [True, False]:
        result, containers = run_variant(pressure_aware)
        latency = result.latency()
        rows.append(
            [
                "pressure-aware" if pressure_aware else "non-aware",
                result.offered,
                f"{latency.mean_s:.3f}",
                f"{latency.p99_s:.3f}",
                f"{latency.sigma_s:.3f}",
                containers,
                len(result.failed),
            ]
        )
    print(
        render_table(
            ["variant", "requests", "mean_s", "p99_s", "sigma", "cold starts",
             "failed"],
            rows,
            title="wc under a 10 rpm -> 100 rpm burst (2 minutes)",
        )
    )
    print(
        "\nThe Callstack blocking signal (Equation 1) limits each FLU to "
        "its DLU's\ndrain rate, so the burst translates into scale-out "
        "instead of queueing."
    )


if __name__ == "__main__":
    main()
