#!/usr/bin/env python3
"""Demonstrate DataFlower's fault-tolerance model (paper §6.2).

Kills a transcode container mid-execution during a video workflow and
shows the ReDo recovery: the crashed function re-executes on a fresh
container, checkpointed pipe connectors resume rather than restart, and
the request still completes with exactly-once data delivery.

Run:  python examples/fault_injection.py
"""

from repro import (
    Cluster,
    ClusterConfig,
    DataFlowerSystem,
    Environment,
    FailureInjector,
    RequestSpec,
    render_table,
    round_robin,
)
from repro.apps import get_app


def main() -> None:
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    system = DataFlowerSystem(env, cluster)
    app = get_app("vid")
    workflow = app.build()
    system.deploy(workflow, round_robin(workflow, cluster.workers))

    injector = FailureInjector(system)
    injector.crash_when_busy(workflow.name, "vid_transcode")

    request = RequestSpec(
        request_id="faulty-1",
        input_bytes=app.default_input_bytes,
        fanout=app.default_fanout,
    )
    done = system.submit(workflow.name, request)
    record = env.run(until=done)

    print(f"request completed : {record.completed}")
    print(f"end-to-end latency: {record.latency:.3f} s")
    print(f"containers crashed: {len(injector.log.crashes)}")
    print(f"ReDo executions   : {system.redo_count}")
    print(f"checkpoint resumes: {system.router.checkpoint_restarts}\n")

    rows = [
        [task.task_id, task.retries, f"{task.exec_start:.3f}",
         f"{task.exec_end:.3f}"]
        for task in record.tasks
    ]
    print(
        render_table(
            ["task", "retries", "exec_start", "exec_end"],
            rows,
            title="Per-task outcome after the injected crash",
        )
    )

    # Exactly-once check: no node sink retains any data for this request.
    leftover = sum(
        engine.sink.resident_bytes() for engine in system.engines.values()
    )
    print(f"\nsink bytes left behind: {leftover:.0f} (exactly-once + cleanup)")


if __name__ == "__main__":
    main()
