#!/usr/bin/env python3
"""Define a custom dynamic workflow in the Figure-7 DSL and run it.

The workflow models a content-moderation service with a *dynamic* DAG:
``classify`` routes each request to either a cheap ``fast_path`` or an
expensive ``deep_scan`` via a SWITCH edge, and both paths merge into
``publish``.  This exercises:

* the declarative data-flow DSL (paper Figure 7),
* SWITCH edges / dynamic DAG support (§5.1),
* per-request data-flow graph resolution.

Run:  python examples/custom_workflow_dsl.py
"""

from repro import (
    Cluster,
    ClusterConfig,
    DataFlowerSystem,
    Environment,
    MB,
    RequestSpec,
    parse_workflow,
    render_table,
    round_robin,
)

MODERATION_DSL = """
workflow_name: moderation
dataflows:
  classify:
    memory_mb: 256
    compute: base=0.05 per_mb=0.02
    output: ratio=1.0
    output_datas:
      routed:
        type: SWITCH
        destination: fast_path | deep_scan
        selector: round_robin
  fast_path:
    memory_mb: 256
    compute: base=0.02 per_mb=0.01
    output: fixed=32KB
    output_datas:
      verdict:
        type: NORMAL
        destination: publish
  deep_scan:
    memory_mb: 512
    compute: base=0.40 per_mb=0.15
    output: fixed=128KB
    output_datas:
      verdict:
        type: NORMAL
        destination: publish
  publish:
    memory_mb: 128
    compute: base=0.01
    output: fixed=8KB
    output_datas:
      receipt:
        type: NORMAL
        destination: $USER
entry: classify
"""


def main() -> None:
    workflow = parse_workflow(MODERATION_DSL)
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    system = DataFlowerSystem(env, cluster)
    system.deploy(workflow, round_robin(workflow, cluster.workers))

    rows = []
    for i in range(6):
        request = RequestSpec(
            request_id=f"mod-{i}", input_bytes=2 * MB, fanout=1, seed=i
        )
        done = system.submit(workflow.name, request)
        record = env.run(until=done)
        path = [t.function for t in record.tasks if t.exec_end > 0]
        route = "deep_scan" if "deep_scan" in path else "fast_path"
        rows.append([request.request_id, route, f"{record.latency:.3f}"])

    print(
        render_table(
            ["request", "routed to", "latency_s"],
            rows,
            title="Dynamic-DAG moderation workflow (SWITCH routing)",
        )
    )
    print(
        "\nEven-seeded requests take the fast path; odd ones pay for the "
        "deep scan.\nThe data-flow graph is resolved per request — no "
        "orchestrator state machine."
    )


if __name__ == "__main__":
    main()
