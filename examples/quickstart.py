#!/usr/bin/env python3
"""Quickstart: run one WordCount request on DataFlower and inspect it.

This is the smallest end-to-end use of the library:

1. build the simulated 5-node cluster (3 workers + storage + gateway);
2. instantiate the DataFlower system and deploy the wc workflow;
3. submit a request and read the resulting timeline.

Run:  python examples/quickstart.py
"""

from repro import (
    Cluster,
    ClusterConfig,
    DataFlowerConfig,
    DataFlowerSystem,
    Environment,
    MB,
    RequestSpec,
    render_table,
    round_robin,
)
from repro.apps import get_app


def main() -> None:
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    system = DataFlowerSystem(env, cluster, DataFlowerConfig())

    app = get_app("wc")
    workflow = app.build()
    system.deploy(workflow, round_robin(workflow, cluster.workers))

    request = RequestSpec(
        request_id="quickstart-1",
        input_bytes=4 * MB,
        fanout=4,
    )
    done = system.submit(workflow.name, request)
    record = env.run(until=done)

    print(f"workflow  : {workflow.name}")
    print(f"completed : {record.completed}")
    print(f"latency   : {record.latency:.3f} s\n")

    rows = [
        [
            task.task_id,
            task.node,
            f"{task.ready_time:.4f}",
            f"{task.trigger_time:.4f}",
            f"{task.exec_start:.4f}",
            f"{task.exec_end:.4f}",
            "cold" if task.cold_start else "warm",
        ]
        for task in record.tasks
    ]
    print(
        render_table(
            ["task", "node", "ready", "trigger", "start", "end", "container"],
            rows,
            title="Task timeline (data-availability triggering)",
        )
    )

    print("\npipe connector usage:")
    router = system.router
    print(f"  local pipes   : {router.local_pushes}")
    print(f"  stream pipes  : {router.stream_pushes}")
    print(f"  small sockets : {router.socket_pushes}")


if __name__ == "__main__":
    main()
