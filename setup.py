from setuptools import find_packages, setup

setup(
    name="dataflower-repro",
    version="1.0.0",
    description=(
        "Simulator-based reproduction of DataFlower: Exploiting the "
        "Data-flow Paradigm for Serverless Workflow Orchestration"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
