"""Tests for statistics, latency records, usage summaries, and reporting."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    LatencySummary,
    RequestRecord,
    TaskRecord,
    cdf_at,
    cdf_points,
    mean,
    p50,
    p99,
    percentile,
    render_table,
    stddev,
)
from repro.metrics.report import format_cell
from repro.metrics.usage import UsageSummary


# -- stats ----------------------------------------------------------------------


def test_mean_and_stddev():
    values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
    assert mean(values) == pytest.approx(5.0)
    assert stddev(values) == pytest.approx(2.0)


def test_empty_sequences_rejected():
    for fn in [mean, stddev, p50, p99]:
        with pytest.raises(ValueError):
            fn([])
    with pytest.raises(ValueError):
        cdf_at([], 1.0)


def test_percentile_interpolation():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == pytest.approx(2.5)
    assert p50([5.0]) == 5.0


def test_percentile_bounds():
    with pytest.raises(ValueError):
        percentile([1.0], -1)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_cdf_points_monotone():
    points = cdf_points([3.0, 1.0, 2.0])
    assert points == [(1.0, pytest.approx(1 / 3)), (2.0, pytest.approx(2 / 3)),
                      (3.0, pytest.approx(1.0))]


def test_cdf_at():
    values = [1.0, 2.0, 3.0, 4.0]
    assert cdf_at(values, 2.5) == 0.5
    assert cdf_at(values, 0.0) == 0.0
    assert cdf_at(values, 10.0) == 1.0


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50),
    q=st.floats(min_value=0, max_value=100),
)
def test_property_percentile_within_range(values, q):
    result = percentile(values, q)
    assert min(values) <= result <= max(values)


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=50)
)
def test_property_percentile_monotone_in_q(values):
    assert percentile(values, 25) <= percentile(values, 75)
    assert percentile(values, 50) <= percentile(values, 99)


# -- latency records ------------------------------------------------------------


def make_record(latency, request_id="r"):
    return RequestRecord(
        request_id=request_id, workflow="w", submit_time=10.0,
        end_time=10.0 + latency,
    )


def test_request_record_latency():
    record = make_record(2.5)
    assert record.completed
    assert record.latency == pytest.approx(2.5)


def test_request_record_incomplete_latency_raises():
    record = RequestRecord(request_id="r", workflow="w", submit_time=0.0)
    assert not record.completed
    with pytest.raises(ValueError):
        _ = record.latency


def test_failed_record_not_completed():
    record = make_record(1.0)
    record.failed = True
    assert not record.completed


def test_task_lookup():
    record = make_record(1.0)
    record.tasks.append(TaskRecord(task_id="t1", function="f"))
    assert record.task("t1").function == "f"
    with pytest.raises(KeyError):
        record.task("missing")


def test_task_record_derived_fields():
    task = TaskRecord(
        task_id="t", function="f", ready_time=1.0, trigger_time=1.05,
        get_s=0.2, compute_s=0.5, put_s=0.3,
    )
    assert task.trigger_overhead == pytest.approx(0.05)
    assert task.comm_s == pytest.approx(0.5)


def test_latency_summary():
    records = [make_record(lat, f"r{i}") for i, lat in enumerate([1, 2, 3, 4])]
    summary = LatencySummary.from_records(records)
    assert summary.count == 4
    assert summary.mean_s == pytest.approx(2.5)
    assert summary.max_s == 4.0
    assert summary.p50_s == pytest.approx(2.5)


def test_latency_summary_empty_raises():
    with pytest.raises(ValueError):
        LatencySummary.from_records([])


def test_latency_merge_equals_union():
    """Merging split record-sets equals from_records on the union, exactly."""
    latencies = [0.5, 3.0, 1.25, 2.0, 0.75, 4.5, 1.0]
    records = [make_record(lat, f"r{i}") for i, lat in enumerate(latencies)]
    for split in (1, 3, 5):
        merged = LatencySummary.from_records(records[:split]).merge(
            LatencySummary.from_records(records[split:])
        )
        union = LatencySummary.from_records(records)
        assert merged == union
        assert merged.mean_s == union.mean_s  # bit-identical, not approx
        assert merged.p99_s == union.p99_s
        assert merged.sigma_s == union.sigma_s


def test_latency_merge_operator_and_errors():
    a = LatencySummary.from_latencies([1.0, 2.0])
    b = LatencySummary.from_latencies([3.0])
    assert (a + b) == LatencySummary.from_latencies([1.0, 2.0, 3.0])
    bare = LatencySummary(
        count=1, mean_s=1.0, p50_s=1.0, p99_s=1.0, sigma_s=0.0, max_s=1.0
    )
    with pytest.raises(ValueError):
        a.merge(bare)  # raw-constructed summary has no samples
    with pytest.raises(TypeError):
        a.merge("nope")


@given(
    st.lists(st.floats(min_value=0.001, max_value=100.0), min_size=1, max_size=40),
    st.lists(st.floats(min_value=0.001, max_value=100.0), min_size=1, max_size=40),
)
@settings(max_examples=50, deadline=None)
def test_latency_merge_matches_union_property(left, right):
    merged = LatencySummary.from_latencies(left).merge(
        LatencySummary.from_latencies(right)
    )
    assert merged == LatencySummary.from_latencies(left + right)


def test_lazy_latency_merge_equals_union_from_latencies():
    """The lazy summary's merge equals from_latencies on the union —
    the statistics materialize on first read, byte-identical to eager
    computation, whether or not the operands were already read."""
    left = [0.5, 3.0, 1.25, 2.0]
    right = [0.75, 4.5, 1.0]
    union = LatencySummary.from_latencies(left + right)

    # Never-read operands: merge is pure concatenation, stats deferred.
    merged = LatencySummary.from_latencies(left).merge(
        LatencySummary.from_latencies(right)
    )
    assert merged.samples == tuple(left + right)
    assert merged == union
    assert merged.mean_s == union.mean_s  # bit-identical, not approx
    assert merged.p99_s == union.p99_s
    assert merged.sigma_s == union.sigma_s

    # Already-materialized operands: the pre-sorted sample arrays merge
    # O(n) two-way instead of re-sorting, to the same statistics.
    a, b = LatencySummary.from_latencies(left), LatencySummary.from_latencies(right)
    assert a.p50_s and b.p50_s  # force materialization
    assert a.merge(b) == union
    assert a.merge(b).p99_s == union.p99_s


def test_lazy_latency_fold_equals_chained_merges():
    chunks = [[1.0, 3.0], [0.5], [2.0, 0.25, 4.0]]
    summaries = [LatencySummary.from_latencies(c) for c in chunks]
    folded = LatencySummary.fold(summaries)
    chained = summaries[0].merge(summaries[1]).merge(summaries[2])
    assert folded == chained
    assert folded.samples == chained.samples
    assert LatencySummary.fold([summaries[0]]) is summaries[0]
    with pytest.raises(ValueError):
        LatencySummary.fold([])
    with pytest.raises(TypeError):
        LatencySummary.fold([summaries[0], "nope"])


def test_lazy_latency_summary_pickles():
    """CellResults carry summaries across process boundaries."""
    import pickle

    summary = LatencySummary.from_latencies([2.0, 1.0, 3.0])
    clone = pickle.loads(pickle.dumps(summary))
    assert clone == summary
    assert clone.samples == summary.samples


def test_latency_samples_stay_out_of_reports():
    from repro.metrics.report import summary_to_dict

    summary = LatencySummary.from_latencies([1.0, 2.0, 3.0])
    assert summary.samples == (1.0, 2.0, 3.0)
    assert set(summary_to_dict(summary)) == {
        "count", "mean_s", "p50_s", "p99_s", "sigma_s", "max_s",
    }


# -- usage ------------------------------------------------------------------------


def test_usage_summary_per_request():
    usage = UsageSummary(memory_gbs=10.0, cache_mbs=100.0, completed_requests=5)
    assert usage.memory_gbs_per_request == pytest.approx(2.0)
    assert usage.cache_mbs_per_request == pytest.approx(20.0)


def test_usage_summary_zero_requests_is_nan():
    usage = UsageSummary(memory_gbs=10.0, cache_mbs=1.0, completed_requests=0)
    assert math.isnan(usage.memory_gbs_per_request)


def test_usage_merge_adds_integrals():
    a = UsageSummary(memory_gbs=10.0, cache_mbs=100.0, completed_requests=5)
    b = UsageSummary(memory_gbs=2.5, cache_mbs=30.0, completed_requests=3)
    merged = a.merge(b)
    assert merged == UsageSummary(12.5, 130.0, 8)
    assert (a + b) == merged
    assert merged.memory_gbs_per_request == pytest.approx(12.5 / 8)
    with pytest.raises(TypeError):
        a.merge(3.0)


# -- report -----------------------------------------------------------------------


def test_render_table_alignment():
    table = render_table(["name", "value"], [["a", 1.5], ["bbb", 22]], title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[2]
    assert lines[-1].startswith("bbb")


def test_render_table_row_length_mismatch():
    with pytest.raises(ValueError):
        render_table(["a"], [["x", "y"]])


def test_format_cell_variants():
    assert format_cell(None) == "-"
    assert format_cell(True) == "yes"
    assert format_cell(float("nan")) == "fail"
    assert format_cell(0.5) == "0.5"
    assert format_cell(123456.0) == "1.23e+05"
    assert format_cell("txt") == "txt"
    assert format_cell(0.0) == "0"
