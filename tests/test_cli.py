"""End-to-end tests for the unified ``repro`` CLI."""

import json

import pytest

from repro.cli import CliError, main, parse_arrivals
from repro.loadgen.arrivals import RateSegment

SAMPLE_TRACE = """
{
  "events": [
    {"at_s": 0.0, "tenant": "a"},
    {"at_s": 0.5, "tenant": "b", "input_bytes": "1MB"},
    {"at_s": 1.0, "tenant": "a", "fanout": 2}
  ]
}
"""


# -- arrivals spec parsing ----------------------------------------------------


def test_parse_constant():
    kind, schedule = parse_arrivals("constant:60:30")
    assert kind == "open"
    assert schedule == [RateSegment(30.0, 60.0)]


def test_parse_burst():
    kind, schedule = parse_arrivals("burst:10:100:60:30")
    assert kind == "open"
    assert [s.rate_rpm for s in schedule] == [10.0, 100.0]


def test_parse_closed():
    assert parse_arrivals("closed:8:20") == ("closed", (8, 20.0))


def test_parse_trace(tmp_path):
    path = tmp_path / "t.json"
    path.write_text(SAMPLE_TRACE)
    kind, trace = parse_arrivals(f"trace:{path}")
    assert kind == "trace"
    assert len(trace) == 3


@pytest.mark.parametrize("spec", [
    "constant:60",          # missing duration
    "burst:1:2:3",          # missing one value
    "trace:",               # no path
    "trace:/no/such/file.json",
    "warp:1:2",             # unknown kind
])
def test_bad_specs_rejected(spec):
    with pytest.raises(CliError):
        parse_arrivals(spec)


# -- subcommands --------------------------------------------------------------


def test_no_command_prints_help(capsys):
    assert main([]) == 0
    assert "usage: repro" in capsys.readouterr().out


def test_apps_lists_all_registered(capsys):
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    for name in ("img", "vid", "svd", "wc", "ml_ensemble", "etl"):
        assert name in out


def test_systems_lists_registry(capsys):
    assert main(["systems"]) == 0
    out = capsys.readouterr().out
    for name in ("dataflower", "faasflow", "sonic", "production"):
        assert name in out


def test_experiments_without_id_lists(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    assert "fig2" in out and "fig19" in out


def test_run_table_report(capsys):
    code = main(["run", "--app", "wc", "--arrivals", "constant:30:10"])
    assert code == 0
    out = capsys.readouterr().out
    assert "run report" in out
    assert "throughput_rpm" in out
    assert "latency.p99_s" in out


def test_run_json_schema(capsys):
    code = main([
        "run", "--app", "ml_ensemble", "--system", "dataflower",
        "--arrivals", "constant:30:10", "--format", "json",
    ])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["app"] == "ml_ensemble"
    assert report["system"] == "dataflower"
    assert report["workflow"] == "ml_ensemble"
    assert report["offered"] == 5
    assert report["completed"] == 5
    assert set(report["latency"]) == {
        "count", "mean_s", "p50_s", "p99_s", "sigma_s", "max_s",
    }
    assert report["usage"]["memory_gbs"] > 0
    assert report["usage"]["memory_gbs_per_request"] > 0


def test_run_trace_json_has_tenants(tmp_path, capsys):
    path = tmp_path / "t.json"
    path.write_text(SAMPLE_TRACE)
    code = main([
        "run", "--app", "etl", "--arrivals", f"trace:{path}",
        "--format", "json",
    ])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["offered"] == 3
    assert report["completed"] == 3
    assert set(report["tenants"]) == {"a", "b"}
    assert report["workflows"]["etl"]["completed"] == 3


def test_run_trace_respects_fanout_override(tmp_path, capsys):
    path = tmp_path / "t.json"
    path.write_text('{"events": [{"at_s": 0.0}]}')
    code = main([
        "run", "--app", "wc", "--arrivals", f"trace:{path}",
        "--fanout", "7", "--format", "json",
    ])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["completed"] == 1


def test_run_trace_rejects_poisson(tmp_path, capsys):
    path = tmp_path / "t.json"
    path.write_text(SAMPLE_TRACE)
    code = main([
        "run", "--app", "wc", "--arrivals", f"trace:{path}", "--poisson",
    ])
    assert code == 2
    assert "--poisson" in capsys.readouterr().err


def test_run_closed_loop(capsys):
    code = main([
        "run", "--app", "img", "--arrivals", "closed:2:5",
        "--format", "json",
    ])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["completed"] > 0
    assert report["failure_rate"] == 0.0


def test_run_output_file(tmp_path, capsys):
    out_path = tmp_path / "report.json"
    code = main([
        "run", "--app", "wc", "--arrivals", "constant:30:6",
        "--format", "json", "--output", str(out_path),
    ])
    assert code == 0
    assert "wrote" in capsys.readouterr().out
    report = json.loads(out_path.read_text())
    assert report["app"] == "wc"


def test_run_unknown_app_fails(capsys):
    assert main(["run", "--app", "nope"]) == 2
    assert "unknown benchmark" in capsys.readouterr().err


def test_run_bad_arrivals_fails(capsys):
    assert main(["run", "--app", "wc", "--arrivals", "warp:9"]) == 2
    assert "arrivals" in capsys.readouterr().err


def test_replay_table_report(capsys):
    from pathlib import Path

    trace = Path(__file__).parent.parent / "examples/traces/mixed_tenants.csv"
    code = main(["replay", str(trace), "--shards", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "sharded replay report" in out
    assert "events_per_s" in out
    assert "acme" in out  # per-tenant breakdown survives the merge


def test_replay_shard_count_invariant_json(tmp_path, capsys):
    """--shards 4 and --shards 1 print the same merged report."""
    path = tmp_path / "t.json"
    path.write_text(SAMPLE_TRACE)
    reports = []
    for shards in ("1", "4"):
        code = main([
            "replay", str(path), "--app", "wc", "--shards", shards,
            "--format", "json",
        ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report.pop("parallel")["shards"] == int(shards)
        reports.append(report)
    assert reports[0] == reports[1]
    assert reports[0]["replay"] == {"policy": "tenant", "cells": 2}
    assert set(reports[0]["tenants"]) == {"a", "b"}


def test_replay_appless_trace_needs_app(tmp_path, capsys):
    path = tmp_path / "t.json"
    path.write_text(SAMPLE_TRACE)
    assert main(["replay", str(path)]) == 2
    assert "--app" in capsys.readouterr().err


def test_replay_rejects_bad_flags(tmp_path, capsys):
    path = tmp_path / "t.json"
    path.write_text(SAMPLE_TRACE)
    assert main(["replay", str(path), "--app", "wc", "--shards", "0"]) == 2
    assert main(["replay", str(path), "--app", "wc", "--policy", "warp"]) == 2
    assert main(["replay", "/no/such/trace.json", "--app", "wc"]) == 2
    capsys.readouterr()


TENANT_CONFIG = """
{
  "default": {"placement": "round_robin"},
  "tenants": {
    "a": {"system": "faasflow", "placement": "hashed"},
    "b": {"system": "sonic", "placement": "offset:1", "timeout_s": 30}
  }
}
"""


def _write_tenant_fixtures(tmp_path):
    trace_path = tmp_path / "t.json"
    trace_path.write_text(SAMPLE_TRACE)
    config_path = tmp_path / "profiles.json"
    config_path.write_text(TENANT_CONFIG)
    return trace_path, config_path


def test_replay_tenant_config_tags_report(tmp_path, capsys):
    trace_path, config_path = _write_tenant_fixtures(tmp_path)
    code = main([
        "replay", str(trace_path), "--app", "wc",
        "--tenant-config", str(config_path), "--format", "json",
    ])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["tenants"]["a"]["profile"] == {
        "system": "faasflow", "placement": "hashed", "source": "tenant",
    }
    assert report["replay"]["profiles"]["b"]["system"] == "sonic"
    assert report["replay"]["profiles"]["b"]["timeout_s"] == 30.0


def test_replay_tenant_config_echoes_profile_table(tmp_path, capsys):
    trace_path, config_path = _write_tenant_fixtures(tmp_path)
    code = main([
        "replay", str(trace_path), "--app", "wc",
        "--tenant-config", str(config_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "tenant profiles" in out
    assert "faasflow" in out and "hashed" in out
    assert "sharded replay report" in out


def test_replay_tenant_config_shard_invariant(tmp_path, capsys):
    trace_path, config_path = _write_tenant_fixtures(tmp_path)
    reports = []
    for shards in ("1", "4"):
        code = main([
            "replay", str(trace_path), "--app", "wc", "--shards", shards,
            "--tenant-config", str(config_path), "--format", "json",
        ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        report.pop("parallel")
        reports.append(report)
    assert reports[0] == reports[1]


def test_replay_tenant_config_unknown_system_fails_fast(tmp_path, capsys):
    """ISSUE satellite: a bad profile dies at the CLI with the tenant's
    name, not deep inside a worker process."""
    trace_path = tmp_path / "t.json"
    trace_path.write_text(SAMPLE_TRACE)
    config_path = tmp_path / "bad.json"
    config_path.write_text('{"tenants": {"a": {"system": "fooflow"}}}')
    code = main([
        "replay", str(trace_path), "--app", "wc",
        "--tenant-config", str(config_path),
    ])
    assert code == 2
    err = capsys.readouterr().err
    assert "tenant 'a'" in err
    assert "unknown system 'fooflow'" in err


def test_replay_tenant_config_unknown_placement_fails_fast(tmp_path, capsys):
    trace_path = tmp_path / "t.json"
    trace_path.write_text(SAMPLE_TRACE)
    config_path = tmp_path / "bad.json"
    config_path.write_text('{"tenants": {"a": {"placement": "warp"}}}')
    code = main([
        "replay", str(trace_path), "--app", "wc",
        "--tenant-config", str(config_path),
    ])
    assert code == 2
    err = capsys.readouterr().err
    assert "tenant 'a'" in err
    assert "placement" in err


def test_replay_tenant_config_requires_tenant_policy(tmp_path, capsys):
    """Profiles key on tenant cells; other partitions would make the
    echoed profile table lie about what actually ran."""
    trace_path, config_path = _write_tenant_fixtures(tmp_path)
    code = main([
        "replay", str(trace_path), "--app", "wc",
        "--tenant-config", str(config_path), "--policy", "timeslice:30",
    ])
    assert code == 2
    assert "--policy tenant" in capsys.readouterr().err


def test_run_tenant_config_still_rejects_poisson(tmp_path, capsys):
    trace_path, config_path = _write_tenant_fixtures(tmp_path)
    code = main([
        "run", "--app", "wc", "--arrivals", f"trace:{trace_path}",
        "--tenant-config", str(config_path), "--poisson",
    ])
    assert code == 2
    assert "--poisson" in capsys.readouterr().err


def test_replay_tenant_config_bad_json_names_path_once(tmp_path, capsys):
    trace_path = tmp_path / "t.json"
    trace_path.write_text(SAMPLE_TRACE)
    config_path = tmp_path / "bad.json"
    config_path.write_text("{nope")
    code = main([
        "replay", str(trace_path), "--app", "wc",
        "--tenant-config", str(config_path),
    ])
    assert code == 2
    err = capsys.readouterr().err
    assert "invalid JSON" in err
    assert err.count(str(config_path)) == 1


def test_replay_tenant_config_missing_file(tmp_path, capsys):
    trace_path = tmp_path / "t.json"
    trace_path.write_text(SAMPLE_TRACE)
    code = main([
        "replay", str(trace_path), "--app", "wc",
        "--tenant-config", str(tmp_path / "nope.json"),
    ])
    assert code == 2
    assert "tenant config not found" in capsys.readouterr().err
    # A directory (or any other unreadable path) gets the clean CLI
    # error too, not a raw traceback.
    code = main([
        "replay", str(trace_path), "--app", "wc",
        "--tenant-config", str(tmp_path),
    ])
    assert code == 2
    assert "tenant config" in capsys.readouterr().err


def test_replay_rejects_bad_base_placement(tmp_path, capsys):
    trace_path = tmp_path / "t.json"
    trace_path.write_text(SAMPLE_TRACE)
    code = main([
        "replay", str(trace_path), "--app", "wc", "--placement", "warp",
    ])
    assert code == 2
    assert "placement" in capsys.readouterr().err


def test_run_tenant_config_requires_trace_arrivals(tmp_path, capsys):
    config_path = tmp_path / "profiles.json"
    config_path.write_text(TENANT_CONFIG)
    code = main([
        "run", "--app", "wc", "--arrivals", "constant:30:5",
        "--tenant-config", str(config_path),
    ])
    assert code == 2
    assert "--tenant-config requires trace arrivals" in (
        capsys.readouterr().err
    )


def test_run_trace_with_tenant_config(tmp_path, capsys):
    trace_path, config_path = _write_tenant_fixtures(tmp_path)
    code = main([
        "run", "--app", "wc", "--arrivals", f"trace:{trace_path}",
        "--tenant-config", str(config_path), "--format", "json",
    ])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["app"] == "wc"
    assert report["tenants"]["a"]["profile"]["system"] == "faasflow"
    code = main([
        "run", "--app", "wc", "--arrivals", f"trace:{trace_path}",
        "--tenant-config", str(config_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "tenant profiles" in out and "run report" in out


def test_example_tenant_config_validates_and_runs(capsys):
    from pathlib import Path

    root = Path(__file__).parent.parent
    code = main([
        "replay", str(root / "examples/traces/mixed_tenants.csv"),
        "--tenant-config", str(root / "examples/tenant_profiles.json"),
        "--shards", "2", "--format", "json",
    ])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["tenants"]["acme"]["profile"]["system"] == "faasflow"
    assert report["tenants"]["initech"]["profile"]["source"] == "tenant"


def test_synth_writes_reproducible_csv(tmp_path, capsys):
    args = [
        "synth", "--tenants", "3", "--duration-s", "10", "--mean-rpm", "30",
        "--apps", "wc", "--seed", "9",
    ]
    first = tmp_path / "a.csv"
    second = tmp_path / "b.csv"
    assert main(args + ["--output", str(first)]) == 0
    assert main(args + ["--output", str(second)]) == 0
    capsys.readouterr()
    assert first.read_text() == second.read_text()
    from repro.loadgen.trace import InvocationTrace

    trace = InvocationTrace.from_csv(first.read_text())
    assert len(trace) > 0
    assert trace.apps() == ["wc"]


def test_synth_seed_changes_trace(tmp_path, capsys):
    base = ["synth", "--tenants", "2", "--duration-s", "10", "--mean-rpm",
            "30", "--apps", "wc"]
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    assert main(base + ["--seed", "1", "--output", str(a)]) == 0
    assert main(base + ["--seed", "2", "--output", str(b)]) == 0
    capsys.readouterr()
    assert a.read_text() != b.read_text()


def test_synth_stdout_json_and_bad_args(capsys):
    code = main(["synth", "--tenants", "2", "--duration-s", "5",
                 "--mean-rpm", "20", "--seed", "3"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["name"] == "synthetic"
    assert main(["synth", "--tenants", "0"]) == 2
    assert main(["synth", "--apps", "nope"]) == 2
    capsys.readouterr()


def test_validate_ok(tmp_path, capsys):
    path = tmp_path / "wf.dsl"
    path.write_text("""
workflow_name: tiny
dataflows:
  tiny_only:
    compute: base=0.01
    output: fixed=1KB
    output_datas:
      output:
        type: NORMAL
        destination: $USER
""")
    assert main(["validate", str(path)]) == 0
    out = capsys.readouterr().out
    assert "OK" in out and "tiny_only" in out


def test_validate_rejects_broken_dsl(tmp_path, capsys):
    path = tmp_path / "bad.dsl"
    path.write_text("""
workflow_name: broken
dataflows:
  broken_a:
    compute: base=0.01
    output_datas:
      out:
        type: NORMAL
        destination: broken_missing
""")
    assert main(["validate", str(path)]) == 1
    assert "INVALID" in capsys.readouterr().err


def test_validate_missing_file(capsys):
    assert main(["validate", "/no/such.dsl"]) == 2
    assert "no such file" in capsys.readouterr().err


def test_experiments_runs_one(capsys):
    code = main(["experiments", "fig13", "--scale", "0.25"])
    assert code == 0
    assert "fig13" in capsys.readouterr().out


def test_example_dsl_validates(capsys):
    from pathlib import Path

    dsl = Path(__file__).parent.parent / "examples" / "pipeline.dsl"
    assert main(["validate", str(dsl)]) == 0


def test_sample_traces_replay(capsys):
    from pathlib import Path

    traces = Path(__file__).parent.parent / "examples" / "traces"
    code = main([
        "run", "--app", "wc",
        "--arrivals", f"trace:{traces / 'mixed_tenants.csv'}",
        "--format", "json",
    ])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["failed"] == 0
    assert set(report["tenants"]) == {"acme", "globex", "initech"}
