"""End-to-end tests for the unified ``repro`` CLI."""

import json

import pytest

from repro.cli import CliError, main, parse_arrivals
from repro.loadgen.arrivals import RateSegment

SAMPLE_TRACE = """
{
  "events": [
    {"at_s": 0.0, "tenant": "a"},
    {"at_s": 0.5, "tenant": "b", "input_bytes": "1MB"},
    {"at_s": 1.0, "tenant": "a", "fanout": 2}
  ]
}
"""


# -- arrivals spec parsing ----------------------------------------------------


def test_parse_constant():
    kind, schedule = parse_arrivals("constant:60:30")
    assert kind == "open"
    assert schedule == [RateSegment(30.0, 60.0)]


def test_parse_burst():
    kind, schedule = parse_arrivals("burst:10:100:60:30")
    assert kind == "open"
    assert [s.rate_rpm for s in schedule] == [10.0, 100.0]


def test_parse_closed():
    assert parse_arrivals("closed:8:20") == ("closed", (8, 20.0))


def test_parse_trace(tmp_path):
    path = tmp_path / "t.json"
    path.write_text(SAMPLE_TRACE)
    kind, trace = parse_arrivals(f"trace:{path}")
    assert kind == "trace"
    assert len(trace) == 3


@pytest.mark.parametrize("spec", [
    "constant:60",          # missing duration
    "burst:1:2:3",          # missing one value
    "trace:",               # no path
    "trace:/no/such/file.json",
    "warp:1:2",             # unknown kind
])
def test_bad_specs_rejected(spec):
    with pytest.raises(CliError):
        parse_arrivals(spec)


# -- subcommands --------------------------------------------------------------


def test_no_command_prints_help(capsys):
    assert main([]) == 0
    assert "usage: repro" in capsys.readouterr().out


def test_apps_lists_all_registered(capsys):
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    for name in ("img", "vid", "svd", "wc", "ml_ensemble", "etl"):
        assert name in out


def test_systems_lists_registry(capsys):
    assert main(["systems"]) == 0
    out = capsys.readouterr().out
    for name in ("dataflower", "faasflow", "sonic", "production"):
        assert name in out


def test_experiments_without_id_lists(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    assert "fig2" in out and "fig19" in out


def test_run_table_report(capsys):
    code = main(["run", "--app", "wc", "--arrivals", "constant:30:10"])
    assert code == 0
    out = capsys.readouterr().out
    assert "run report" in out
    assert "throughput_rpm" in out
    assert "latency.p99_s" in out


def test_run_json_schema(capsys):
    code = main([
        "run", "--app", "ml_ensemble", "--system", "dataflower",
        "--arrivals", "constant:30:10", "--format", "json",
    ])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["app"] == "ml_ensemble"
    assert report["system"] == "dataflower"
    assert report["workflow"] == "ml_ensemble"
    assert report["offered"] == 5
    assert report["completed"] == 5
    assert set(report["latency"]) == {
        "count", "mean_s", "p50_s", "p99_s", "sigma_s", "max_s",
    }
    assert report["usage"]["memory_gbs"] > 0
    assert report["usage"]["memory_gbs_per_request"] > 0


def test_run_trace_json_has_tenants(tmp_path, capsys):
    path = tmp_path / "t.json"
    path.write_text(SAMPLE_TRACE)
    code = main([
        "run", "--app", "etl", "--arrivals", f"trace:{path}",
        "--format", "json",
    ])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["offered"] == 3
    assert report["completed"] == 3
    assert set(report["tenants"]) == {"a", "b"}
    assert report["workflows"]["etl"]["completed"] == 3


def test_run_trace_respects_fanout_override(tmp_path, capsys):
    path = tmp_path / "t.json"
    path.write_text('{"events": [{"at_s": 0.0}]}')
    code = main([
        "run", "--app", "wc", "--arrivals", f"trace:{path}",
        "--fanout", "7", "--format", "json",
    ])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["completed"] == 1


def test_run_trace_rejects_poisson(tmp_path, capsys):
    path = tmp_path / "t.json"
    path.write_text(SAMPLE_TRACE)
    code = main([
        "run", "--app", "wc", "--arrivals", f"trace:{path}", "--poisson",
    ])
    assert code == 2
    assert "--poisson" in capsys.readouterr().err


def test_run_closed_loop(capsys):
    code = main([
        "run", "--app", "img", "--arrivals", "closed:2:5",
        "--format", "json",
    ])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["completed"] > 0
    assert report["failure_rate"] == 0.0


def test_run_output_file(tmp_path, capsys):
    out_path = tmp_path / "report.json"
    code = main([
        "run", "--app", "wc", "--arrivals", "constant:30:6",
        "--format", "json", "--output", str(out_path),
    ])
    assert code == 0
    assert "wrote" in capsys.readouterr().out
    report = json.loads(out_path.read_text())
    assert report["app"] == "wc"


def test_run_unknown_app_fails(capsys):
    assert main(["run", "--app", "nope"]) == 2
    assert "unknown benchmark" in capsys.readouterr().err


def test_run_bad_arrivals_fails(capsys):
    assert main(["run", "--app", "wc", "--arrivals", "warp:9"]) == 2
    assert "arrivals" in capsys.readouterr().err


def test_validate_ok(tmp_path, capsys):
    path = tmp_path / "wf.dsl"
    path.write_text("""
workflow_name: tiny
dataflows:
  tiny_only:
    compute: base=0.01
    output: fixed=1KB
    output_datas:
      output:
        type: NORMAL
        destination: $USER
""")
    assert main(["validate", str(path)]) == 0
    out = capsys.readouterr().out
    assert "OK" in out and "tiny_only" in out


def test_validate_rejects_broken_dsl(tmp_path, capsys):
    path = tmp_path / "bad.dsl"
    path.write_text("""
workflow_name: broken
dataflows:
  broken_a:
    compute: base=0.01
    output_datas:
      out:
        type: NORMAL
        destination: broken_missing
""")
    assert main(["validate", str(path)]) == 1
    assert "INVALID" in capsys.readouterr().err


def test_validate_missing_file(capsys):
    assert main(["validate", "/no/such.dsl"]) == 2
    assert "no such file" in capsys.readouterr().err


def test_experiments_runs_one(capsys):
    code = main(["experiments", "fig13", "--scale", "0.25"])
    assert code == 0
    assert "fig13" in capsys.readouterr().out


def test_example_dsl_validates(capsys):
    from pathlib import Path

    dsl = Path(__file__).parent.parent / "examples" / "pipeline.dsl"
    assert main(["validate", str(dsl)]) == 0


def test_sample_traces_replay(capsys):
    from pathlib import Path

    traces = Path(__file__).parent.parent / "examples" / "traces"
    code = main([
        "run", "--app", "wc",
        "--arrivals", f"trace:{traces / 'mixed_tenants.csv'}",
        "--format", "json",
    ])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["failed"] == 0
    assert set(report["tenants"]) == {"acme", "globex", "initech"}
