"""Tests for data-availability-based container prewarming (§10)."""

import pytest

from repro import (
    Cluster,
    ClusterConfig,
    DataFlowerConfig,
    DataFlowerSystem,
    Environment,
    RequestSpec,
    round_robin,
)
from repro.apps import get_app
from repro.core.prewarm import PrewarmPolicy


def run_cold_request(prewarm: bool, app_name: str = "vid"):
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    system = DataFlowerSystem(env, cluster, DataFlowerConfig(prewarm=prewarm))
    app = get_app(app_name)
    workflow = app.build()
    system.deploy(workflow, round_robin(workflow, cluster.workers))
    done = system.submit(
        workflow.name,
        RequestSpec(
            "r1", input_bytes=app.default_input_bytes, fanout=app.default_fanout
        ),
    )
    record = env.run(until=done)
    return system, record


def test_prewarm_reduces_cold_request_latency():
    """Downstream cold starts hide behind the predecessor's transfer."""
    _, without = run_cold_request(prewarm=False)
    system, with_prewarm = run_cold_request(prewarm=True)
    assert with_prewarm.completed and without.completed
    assert system.prewarm_policy.prewarms > 0
    assert with_prewarm.latency < without.latency - 0.1


@pytest.mark.parametrize("app_name", ["img", "vid", "svd", "wc"])
def test_prewarm_never_breaks_correctness(app_name):
    system, record = run_cold_request(prewarm=True, app_name=app_name)
    assert record.completed, record.error
    for engine in system.engines.values():
        assert engine.sink.resident_bytes() == 0


def test_prewarm_is_bounded():
    """The policy respects max_prewarm: no container explosion."""
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    system = DataFlowerSystem(
        env, cluster, DataFlowerConfig(prewarm=True, max_prewarm=1)
    )
    app = get_app("wc")
    workflow = app.build()
    system.deploy(workflow, round_robin(workflow, cluster.workers))
    done = system.submit(
        workflow.name,
        RequestSpec("r1", input_bytes=app.default_input_bytes, fanout=8),
    )
    record = env.run(until=done)
    assert record.completed
    # Eight count branches, but at most max_prewarm containers prewarmed
    # at a time; extra capacity comes from the ordinary scale-out path.
    assert system.prewarm_policy.suppressed > 0


def test_prewarm_policy_validation():
    with pytest.raises(ValueError):
        PrewarmPolicy(max_prewarm=0)


def test_prewarm_disabled_by_default():
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    system = DataFlowerSystem(env, cluster)
    assert system.prewarm_policy is None


def test_prewarm_inflight_accounting():
    policy = PrewarmPolicy(max_prewarm=2)
    policy._inflight[("wf", "f")] = 1
    policy.data_arrived("wf", "f")
    assert policy._inflight[("wf", "f")] == 0
    # Draining below zero is clamped (duplicate arrivals are harmless).
    policy.data_arrived("wf", "f")
    assert policy._inflight[("wf", "f")] == 0
