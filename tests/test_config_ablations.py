"""Mechanism-ablation matrix: every DataFlower toggle works and helps.

Each of DataFlower's mechanisms can be disabled independently; these
tests check (a) correctness is preserved under every combination, and
(b) each mechanism pulls in the direction the paper claims.
"""

import itertools

import pytest

from repro import (
    Cluster,
    ClusterConfig,
    DataFlowerConfig,
    DataFlowerSystem,
    Environment,
    RequestSpec,
    constant,
    default_request_factory,
    round_robin,
    run_open_loop,
)
from repro.apps import get_app


def run_with(app_name="wc", rpm=None, duration=30.0, **cfg):
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    system = DataFlowerSystem(env, cluster, DataFlowerConfig(**cfg))
    app = get_app(app_name)
    workflow = app.build()
    system.deploy(workflow, round_robin(workflow, cluster.workers))
    if rpm is None:
        done = system.submit(
            workflow.name,
            RequestSpec(
                "r1", input_bytes=app.default_input_bytes,
                fanout=app.default_fanout,
            ),
        )
        record = env.run(until=done)
        return system, record
    factory = default_request_factory(
        system, workflow.name, app.default_input_bytes, app.default_fanout
    )
    return system, run_open_loop(
        system, workflow.name, factory, constant(rpm, duration)
    )


TOGGLES = ["streaming", "proactive_release", "passive_expire", "pressure_aware"]


@pytest.mark.parametrize(
    "disabled",
    [()]
    + [(name,) for name in TOGGLES]
    + list(itertools.combinations(TOGGLES, 2)),
)
def test_every_toggle_combination_is_correct(disabled):
    overrides = {name: False for name in disabled}
    system, record = run_with("vid", **overrides)
    assert record.completed, f"{disabled}: {record.error}"
    for engine in system.engines.values():
        assert engine.sink.resident_bytes() == 0


def test_streaming_reduces_latency():
    _, with_streaming = run_with("vid")
    _, without = run_with("vid", streaming=False)
    assert with_streaming.latency < without.latency


def test_streaming_off_means_no_early_deposits():
    """Without streaming, consumers never start before producers finish."""
    system, record = run_with("wc", streaming=False)
    start_end = record.task("wordcount_start").exec_end
    for task in record.tasks:
        if task.function == "wordcount_count":
            assert task.exec_start >= start_end - 1e-9


def test_proactive_release_reduces_cache_footprint():
    _, proactive = run_with("vid", rpm=20)
    _, lazy = run_with("vid", rpm=20, proactive_release=False)
    assert proactive.usage.cache_mbs < lazy.usage.cache_mbs


def test_passive_expire_spills_stale_data():
    """An aborted consumer leaves data that must spill, not squat."""
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    system = DataFlowerSystem(
        env, cluster,
        DataFlowerConfig(sink_ttl_s=2.0, proactive_release=False),
    )
    app = get_app("wc")
    workflow = app.build()
    system.deploy(workflow, round_robin(workflow, cluster.workers))
    done = system.submit(
        workflow.name,
        RequestSpec("r1", input_bytes=app.default_input_bytes, fanout=4),
    )
    env.run(until=done)
    # Data lingered (non-proactive) but the run finished under the TTL,
    # so request-completion cleanup got it; run another request and stop
    # mid-flight to create stale entries.
    system.submit(
        workflow.name,
        RequestSpec("r2", input_bytes=app.default_input_bytes, fanout=4),
    )
    env.run(until=env.now + 0.05)  # data deposited, not yet consumed
    env.run(until=env.now + 10.0)  # TTL passes
    spills = sum(engine.sink.spills for engine in system.engines.values())
    total_deposits = sum(engine.sink.deposits for engine in system.engines.values())
    assert total_deposits > 0
    # Depending on timing some entries were consumed first; stale ones
    # must have spilled rather than lingering in memory unfetched.
    for engine in system.engines.values():
        for tasks in engine.sink._index.values():
            for datas in tasks.values():
                for entry in datas.values():
                    if not entry.fetched:
                        assert entry.state.value in ("spilled", "released")


def test_small_data_threshold_switches_transport():
    # With a 10 MB socket threshold everything in wc goes by socket.
    system, record = run_with("wc", small_data_bytes=10 * 1024 * 1024)
    assert system.router.stream_pushes == 0
    assert system.router.socket_pushes > 0

    system2, record2 = run_with("wc", small_data_bytes=0.5)
    assert system2.router.socket_pushes == 0
    assert record2.completed


def test_determinism_same_seed_same_trace():
    def trace():
        system, result = run_with("vid", rpm=30)
        return [round(r.latency, 9) for r in result.completed]

    assert trace() == trace()


def test_different_seed_changes_jittered_costs():
    # Trigger costs are jittered through the seeded rng: different system
    # seeds produce different (but internally consistent) traces.
    _, a = run_with("wc", seed=1)
    _, b = run_with("wc", seed=2)
    assert a.completed and b.completed
    assert a.latency != b.latency
