"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    EmptySchedule,
    Environment,
    Event,
    Interrupt,
    RngRegistry,
    Timeout,
)


def test_timeout_advances_clock():
    env = Environment()
    done = []

    def proc(env):
        yield env.timeout(2.5)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [2.5]
    assert env.now == 2.5


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def waiter(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(waiter(env, 3, "c"))
    env.process(waiter(env, 1, "a"))
    env.process(waiter(env, 2, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fire_in_insertion_order():
    env = Environment()
    order = []

    def waiter(env, tag):
        yield env.timeout(1)
        order.append(tag)

    for tag in "abcd":
        env.process(waiter(env, tag))
    env.run()
    assert order == ["a", "b", "c", "d"]


def test_process_return_value():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        return 42

    def parent(env):
        value = yield env.process(child(env))
        return value * 2

    proc = env.process(parent(env))
    env.run()
    assert proc.value == 84


def test_run_until_time_stops_midway():
    env = Environment()
    seen = []

    def ticker(env):
        while True:
            yield env.timeout(1)
            seen.append(env.now)

    env.process(ticker(env))
    env.run(until=3.5)
    assert seen == [1, 2, 3]
    assert env.now == 3.5


def test_run_until_event_returns_its_value():
    env = Environment()

    def proc(env):
        yield env.timeout(5)
        return "finished"

    result = env.run(until=env.process(proc(env)))
    assert result == "finished"
    assert env.now == 5


def test_run_until_past_time_rejected():
    env = Environment(initial_time=10)
    with pytest.raises(ValueError):
        env.run(until=5)


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    got = []

    def waiter(env):
        value = yield gate
        got.append(value)

    def opener(env):
        yield env.timeout(2)
        gate.succeed("open")

    env.process(waiter(env))
    env.process(opener(env))
    env.run()
    assert got == ["open"]


def test_event_cannot_trigger_twice():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_event_value_before_trigger_raises():
    env = Environment()
    with pytest.raises(RuntimeError):
        _ = env.event().value


def test_failed_event_raises_in_waiting_process():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter(env):
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter(env))

    def failer(env):
        yield env.timeout(1)
        gate.fail(ValueError("boom"))

    env.process(failer(env))
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_failure_propagates_from_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("unhandled")

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_all_of_collects_all_values():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(2, value="b")
        values = yield t1 & t2
        results.append(sorted(values.values()))

    env.process(proc(env))
    env.run()
    assert results == [["a", "b"]]
    assert env.now == 2


def test_any_of_fires_on_first():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(5, value="slow")
        t2 = env.timeout(1, value="fast")
        values = yield t1 | t2
        results.append(list(values.values()))

    env.process(proc(env))
    env.run(until=2)
    assert results == [["fast"]]


def test_all_of_empty_fires_immediately():
    env = Environment()
    results = []

    def proc(env):
        value = yield env.all_of([])
        results.append(value)

    env.process(proc(env))
    env.run()
    assert results == [{}]


def test_condition_on_already_processed_event():
    env = Environment()
    results = []

    def proc(env):
        t = env.timeout(1, value="x")
        yield t
        # t is processed; a condition on it must fire immediately.
        values = yield env.all_of([t])
        results.append(list(values.values()))

    env.process(proc(env))
    env.run()
    assert results == [["x"]]


def test_interrupt_delivers_cause():
    env = Environment()
    causes = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as interrupt:
            causes.append((env.now, interrupt.cause))

    victim = env.process(sleeper(env))

    def interrupter(env):
        yield env.timeout(3)
        victim.interrupt("wake up")

    env.process(interrupter(env))
    env.run()
    assert causes == [(3, "wake up")]


def test_interrupt_terminated_process_is_error():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    victim = env.process(quick(env))

    def interrupter(env):
        yield env.timeout(5)
        with pytest.raises(RuntimeError):
            victim.interrupt()

    env.process(interrupter(env))
    env.run()


def test_interrupted_process_can_continue():
    env = Environment()
    trace = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt:
            trace.append("interrupted")
        yield env.timeout(1)
        trace.append(env.now)

    victim = env.process(sleeper(env))

    def interrupter(env):
        yield env.timeout(2)
        victim.interrupt()

    env.process(interrupter(env))
    env.run()
    assert trace == ["interrupted", 3]


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_yielding_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield 42

    proc = env.process(bad(env))
    with pytest.raises(RuntimeError, match="non-event"):
        env.run()
    assert proc.triggered


def test_rng_streams_are_deterministic_and_independent():
    a = RngRegistry(seed=7)
    b = RngRegistry(seed=7)
    assert a.stream("x").random() == b.stream("x").random()
    c = RngRegistry(seed=7)
    d = RngRegistry(seed=8)
    assert c.stream("x").random() != d.stream("x").random()
    e = RngRegistry(seed=7)
    assert e.stream("x").random() != e.stream("y").random()


def test_rng_fork_is_independent():
    root = RngRegistry(seed=3)
    fork = root.fork("child")
    assert root.stream("s").random() != fork.stream("s").random()
