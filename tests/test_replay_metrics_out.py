"""``repro replay --metrics-out``: one-shot Prometheus text dumps.

The flag gives scrapeless runs (CI jobs, ad-hoc benchmarks) the same
telemetry ``repro serve`` exposes at ``GET /metrics`` — and because the
counters are folded from the same cells the report is merged from, the
totals must *equal* the report, not merely correlate with it.
"""

import json
import re

from repro.cli import main

RE_SAMPLE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$")


def _parse_prometheus(text):
    """name -> {labels-string-or-'' : float} for every sample line."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = RE_SAMPLE.match(line)
        assert match, f"unparseable exposition line: {line!r}"
        name, labels, value = match.groups()
        samples.setdefault(name, {})[labels or ""] = float(value)
    return samples


def _replay(tmp_path, extra=()):
    tmp_path.mkdir(parents=True, exist_ok=True)
    trace_path = tmp_path / "trace.json"
    report_path = tmp_path / "report.json"
    metrics_path = tmp_path / "metrics.prom"
    assert main([
        "synth", "--tenants", "4", "--duration-s", "20", "--mean-rpm", "60",
        "--seed", "5", "--output", str(trace_path),
    ]) == 0
    assert main([
        "replay", str(trace_path), "--app", "wc", "--seed", "7",
        "--format", "json", "--output", str(report_path),
        "--metrics-out", str(metrics_path), *extra,
    ]) == 0
    report = json.loads(report_path.read_text())
    samples = _parse_prometheus(metrics_path.read_text())
    return report, samples


def test_metrics_out_counter_totals_equal_the_report(tmp_path):
    report, samples = _replay(tmp_path)

    cells = sum(samples["repro_cells_completed_total"].values())
    assert cells == report["parallel"]["cells"] == 4

    requests = sum(samples["repro_tenant_requests_total"].values())
    assert requests == report["offered"]

    # Per-tenant counters match the report's per-tenant breakdown.
    for tenant, stats in report["tenants"].items():
        label = f'{{tenant="{tenant}"}}'
        assert samples["repro_tenant_requests_total"][label] == (
            stats["offered"]
        ), tenant

    # Latency histograms summarize exactly the completed requests.
    latency_counts = {
        labels: value
        for labels, value in samples[
            "repro_tenant_request_latency_seconds_count"
        ].items()
    }
    assert sum(latency_counts.values()) == report["completed"]


def test_metrics_out_is_identical_across_worker_counts(tmp_path):
    """Scheduling never leaks into the dump: the same trace at
    different parallelism exposes byte-identical counter text (wall
    -clock histograms excluded — they measure the run, not the data)."""
    _, serial = _replay(tmp_path / "a")
    _, parallel = _replay(tmp_path / "b", extra=["--shards", "4"])
    for name in (
        "repro_cells_completed_total",
        "repro_tenant_requests_total",
        "repro_tenant_request_latency_seconds_count",
        "repro_tenant_request_latency_seconds_sum",
    ):
        assert serial[name] == parallel[name], name
