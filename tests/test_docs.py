"""The docs' python code blocks must execute against the current code."""

import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

from check_docs import (  # noqa: E402
    check_cli_coverage,
    check_file,
    check_route_coverage,
    cli_subcommands,
    python_blocks,
    serve_routes,
)

DOC_FILES = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]


def test_docs_exist():
    assert (ROOT / "README.md").is_file()
    names = {path.name for path in DOC_FILES}
    assert {
        "architecture.md", "execution-model.md", "experiments.md",
        "scaling.md", "tenancy.md", "serve.md", "index.md",
    } <= names


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_doc_code_blocks_run(path):
    _count, failures = check_file(path)
    assert not failures, "\n".join(failures)


def test_docs_have_runnable_blocks():
    # The quickstart and the config/trace examples must stay executable,
    # not silently demoted to ```text fences.
    counts = {path.name: len(python_blocks(path.read_text()))
              for path in DOC_FILES}
    assert counts["README.md"] >= 1
    assert counts["execution-model.md"] >= 1
    assert counts["experiments.md"] >= 1
    assert counts["serve.md"] >= 1


def test_every_cli_subcommand_is_documented():
    corpus = "\n".join(path.read_text() for path in DOC_FILES)
    assert "serve" in cli_subcommands()  # the parser wiring itself
    assert check_cli_coverage(corpus) == []


def test_every_rest_route_is_documented():
    patterns = {pattern for _method, pattern in serve_routes()}
    assert {"/healthz", "/v1/runs", "/v1/runs/<id>",
            "/v1/runs/<id>/events"} <= patterns
    assert check_route_coverage(ROOT / "docs" / "serve.md") == []


def test_route_coverage_catches_missing_sections(tmp_path):
    # The checker must actually fail when an endpoint goes undocumented.
    stub = tmp_path / "serve.md"
    stub.write_text("# stub\n\nGET /healthz only\n")
    failures = check_route_coverage(stub)
    assert any("/v1/runs" in failure for failure in failures)
    assert check_route_coverage(tmp_path / "missing.md")
    assert check_cli_coverage("nothing documented here")


def test_route_coverage_requires_whole_route_mentions(tmp_path):
    # A longer sibling must not satisfy a prefix route: documenting
    # GET /v1/runs/<id> alone leaves GET /v1/runs (the listing) and
    # the /events stream undocumented.
    stub = tmp_path / "serve.md"
    stub.write_text("# stub\n\nOnly `GET /v1/runs/<id>` is described.\n")
    failures = check_route_coverage(stub)
    assert any(
        "GET /v1/runs " in failure for failure in failures
    ), failures
    assert any("/v1/runs/<id>/events" in failure for failure in failures)
