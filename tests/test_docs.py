"""The docs' python code blocks must execute against the current code."""

import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

from check_docs import check_file, python_blocks  # noqa: E402

DOC_FILES = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]


def test_docs_exist():
    assert (ROOT / "README.md").is_file()
    names = {path.name for path in DOC_FILES}
    assert {
        "architecture.md", "execution-model.md", "experiments.md",
        "scaling.md",
    } <= names


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_doc_code_blocks_run(path):
    _count, failures = check_file(path)
    assert not failures, "\n".join(failures)


def test_docs_have_runnable_blocks():
    # The quickstart and the config/trace examples must stay executable,
    # not silently demoted to ```text fences.
    counts = {path.name: len(python_blocks(path.read_text()))
              for path in DOC_FILES}
    assert counts["README.md"] >= 1
    assert counts["execution-model.md"] >= 1
    assert counts["experiments.md"] >= 1
