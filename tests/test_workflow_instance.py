"""Tests for per-request task-graph expansion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import get_app
from repro.workflow import (
    ComputeModel,
    EdgeKind,
    OutputModel,
    RequestSpec,
    TaskGraph,
    USER,
    Workflow,
)


def fan_workflow():
    wf = Workflow("fan")
    wf.add_function("start", ComputeModel(0.1), OutputModel(input_ratio=1.0))
    wf.add_function("work", ComputeModel(0.1), OutputModel(fixed_bytes=100))
    wf.add_function("reduce", ComputeModel(0.1), OutputModel(fixed_bytes=10))
    wf.connect("start", "work", EdgeKind.FOREACH, "items")
    wf.connect("work", "reduce", EdgeKind.MERGE, "partials")
    wf.connect("reduce", USER, EdgeKind.NORMAL, "out")
    return wf


def test_foreach_expands_to_fanout_tasks():
    graph = TaskGraph(fan_workflow(), RequestSpec("r1", input_bytes=1000, fanout=4))
    assert len(graph.tasks_of("work")) == 4
    assert len(graph.tasks_of("start")) == 1
    assert len(graph.tasks_of("reduce")) == 1


def test_foreach_splits_bytes_evenly():
    graph = TaskGraph(fan_workflow(), RequestSpec("r1", input_bytes=1000, fanout=4))
    for task in graph.tasks_of("work"):
        assert task.input_bytes == pytest.approx(250.0)


def test_merge_collects_all_branches():
    graph = TaskGraph(fan_workflow(), RequestSpec("r1", input_bytes=1000, fanout=5))
    reduce_task = graph.tasks_of("reduce")[0]
    assert len(reduce_task.inputs) == 5
    assert reduce_task.input_bytes == pytest.approx(500.0)  # 5 x fixed 100


def test_terminal_task_detection():
    graph = TaskGraph(fan_workflow(), RequestSpec("r1", input_bytes=10, fanout=2))
    assert [t.function for t in graph.terminal_tasks] == ["reduce"]


def test_entry_receives_request_input():
    graph = TaskGraph(fan_workflow(), RequestSpec("r1", input_bytes=4096, fanout=2))
    start = graph.tasks_of("start")[0]
    assert start.input_bytes == 4096
    assert start.is_entry


def test_output_sizes_propagate():
    wf = Workflow("chain")
    wf.add_function("a", ComputeModel(0.1), OutputModel(input_ratio=0.5))
    wf.add_function("b", ComputeModel(0.1), OutputModel(input_ratio=2.0))
    wf.connect("a", "b")
    wf.connect("b", USER)
    graph = TaskGraph(wf, RequestSpec("r", input_bytes=1000))
    assert graph.tasks_of("a")[0].output_bytes == pytest.approx(500)
    assert graph.tasks_of("b")[0].input_bytes == pytest.approx(500)
    assert graph.tasks_of("b")[0].output_bytes == pytest.approx(1000)


def test_switch_selects_single_destination():
    wf = Workflow("switchy")
    wf.add_function("route", ComputeModel(0.1), OutputModel(input_ratio=1.0))
    wf.add_function("left", ComputeModel(0.1), OutputModel(fixed_bytes=1))
    wf.add_function("right", ComputeModel(0.1), OutputModel(fixed_bytes=1))
    wf.connect_switch("route", ["left", "right"], selector=lambda seed, b: seed % 2)
    wf.connect("left", USER)
    wf.connect("right", USER)

    even = TaskGraph(wf, RequestSpec("r", input_bytes=10, seed=0))
    assert len(even.tasks_of("left")) == 1
    assert len(even.tasks_of("right")) == 0

    odd = TaskGraph(wf, RequestSpec("r", input_bytes=10, seed=1))
    assert len(odd.tasks_of("left")) == 0
    assert len(odd.tasks_of("right")) == 1


def test_switch_out_of_range_selector():
    wf = Workflow("switchy")
    wf.add_function("route", ComputeModel(0.1), OutputModel(input_ratio=1.0))
    wf.add_function("l", ComputeModel(0.1), OutputModel())
    wf.add_function("r", ComputeModel(0.1), OutputModel())
    wf.connect_switch("route", ["l", "r"], selector=lambda seed, b: 7)
    wf.connect("l", USER)
    wf.connect("r", USER)
    with pytest.raises(ValueError, match="out-of-range"):
        TaskGraph(wf, RequestSpec("r", input_bytes=10))


def test_request_spec_validation():
    with pytest.raises(ValueError):
        RequestSpec("r", input_bytes=-1)
    with pytest.raises(ValueError):
        RequestSpec("r", input_bytes=1, fanout=0)


def test_task_edge_keys_are_unique():
    graph = TaskGraph(fan_workflow(), RequestSpec("r1", input_bytes=100, fanout=6))
    keys = [edge.key for edge in graph.edges]
    assert len(keys) == len(set(keys))


def test_tasks_listed_in_topological_order():
    graph = TaskGraph(fan_workflow(), RequestSpec("r1", input_bytes=100, fanout=3))
    position = {task.task_id: i for i, task in enumerate(graph.tasks)}
    for edge in graph.edges:
        if edge.dst is not None:
            assert position[edge.src.task_id] < position[edge.dst.task_id]


@settings(max_examples=30, deadline=None)
@given(
    fanout=st.integers(min_value=1, max_value=32),
    input_bytes=st.floats(min_value=1.0, max_value=1e8),
)
def test_property_fan_workflow_byte_conservation(fanout, input_bytes):
    """FOREACH splits conserve bytes; every task is connected."""
    graph = TaskGraph(
        fan_workflow(), RequestSpec("r", input_bytes=input_bytes, fanout=fanout)
    )
    start = graph.tasks_of("start")[0]
    split_total = sum(
        e.nbytes for e in start.outputs if e.dst is not None
    )
    assert split_total == pytest.approx(start.output_bytes)
    assert len(graph.tasks) == fanout + 2
    for task in graph.tasks:
        assert task.is_entry or task.inputs


@settings(max_examples=20, deadline=None)
@given(fanout=st.integers(min_value=1, max_value=16))
def test_property_paper_apps_expand_cleanly(fanout):
    """All four benchmarks instantiate for any reasonable fan-out."""
    for name in ["img", "vid", "svd", "wc"]:
        app = get_app(name)
        graph = TaskGraph(
            app.build(),
            RequestSpec("r", input_bytes=app.default_input_bytes, fanout=fanout),
        )
        assert graph.terminal_tasks
        assert graph.total_transfer_bytes() > 0
