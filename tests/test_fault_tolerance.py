"""Fault-tolerance tests: crashes, ReDo, exactly-once, keep-alive guard."""

import pytest

from repro import (
    Cluster,
    ClusterConfig,
    DataFlowerConfig,
    DataFlowerSystem,
    Environment,
    FailureInjector,
    RequestSpec,
    round_robin,
)
from repro.apps import get_app


def build(app_name="wc", **cfg):
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    system = DataFlowerSystem(env, cluster, DataFlowerConfig(**cfg))
    app = get_app(app_name)
    workflow = app.build()
    system.deploy(workflow, round_robin(workflow, cluster.workers))
    return env, cluster, system, app, workflow


def submit(system, app, workflow, rid="r1", fanout=None):
    return system.submit(
        workflow.name,
        RequestSpec(
            rid,
            input_bytes=app.default_input_bytes,
            fanout=fanout or app.default_fanout,
        ),
    )


def test_crash_mid_execution_redoes_and_completes():
    env, cluster, system, app, workflow = build("vid")
    injector = FailureInjector(system)
    injector.crash_when_busy(workflow.name, "vid_transcode")
    done = submit(system, app, workflow)
    record = env.run(until=done)
    assert injector.log.crashes, "injection never fired"
    assert record.completed, record.error
    assert system.redo_count >= 1
    assert any(t.retries > 0 for t in record.tasks)


def test_crash_recovers_with_exactly_once_delivery():
    env, cluster, system, app, workflow = build("wc")
    injector = FailureInjector(system)
    injector.crash_function_container_at(workflow.name, "wordcount_start", 1.0)
    done = submit(system, app, workflow)
    record = env.run(until=done)
    assert record.completed
    # No sink saw a datum twice in a way that woke a task twice: each task
    # record has exactly one execution window.
    for task in record.tasks:
        assert task.exec_end >= task.exec_start


def test_data_plane_interrupt_resumes_from_checkpoint():
    env, cluster, system, app, workflow = build("vid", retry_delay_s=0.01)
    injector = FailureInjector(system)
    injector.cancel_random_flow_at(1.5)
    done = submit(system, app, workflow)
    record = env.run(until=done)
    assert record.completed
    # Either the interrupt hit a pipe (restart logged) or nothing was
    # in flight at that instant; when it hit, recovery must be seamless.
    if injector.log.flow_cancellations:
        assert system.router.checkpoint_restarts >= 1


def test_exhausted_retries_fail_the_request():
    env, cluster, system, app, workflow = build("wc", max_retries=0)
    injector = FailureInjector(system)
    injector.crash_when_busy(workflow.name, "wordcount_start")
    done = submit(system, app, workflow)
    record = env.run(until=done)
    assert injector.log.crashes, "injection never fired"
    assert record.failed
    assert "retries" in (record.error or "")


def test_unrelated_requests_survive_a_crash():
    env, cluster, system, app, workflow = build("wc")
    injector = FailureInjector(system)
    events = [submit(system, app, workflow, rid=f"r{i}") for i in range(5)]
    injector.crash_function_container_at(workflow.name, "wordcount_count", 1.2)
    env.run(until=env.all_of(events))
    completed = [r for r in system.records if r.completed]
    assert len(completed) == 5  # every request finishes despite the crash


def test_keep_alive_guard_blocks_recycle_while_dlu_pending():
    env, cluster, system, app, workflow = build("wc")
    # A container with a fake pending DLU must not be recyclable.
    done = submit(system, app, workflow)
    env.run(until=done)
    deployment = system.deployment(workflow.name)
    pool = deployment.dispatcher("wordcount_start").pool
    container = pool.containers[0]
    from repro.core.dlu import DLU

    dlu = container.dlu or DLU(env, container, system.router)
    dlu.pending = 1
    assert not system.recycle_guard(container)
    dlu.pending = 0
    assert system.recycle_guard(container)


def test_no_partial_data_triggering():
    """A slow push must not trigger the consumer before data completes."""
    env, cluster, system, app, workflow = build("vid")
    done = submit(system, app, workflow)
    record = env.run(until=done)
    graph_tasks = {t.task_id: t for t in record.tasks}
    # merge cannot start executing before every transcode finished
    # computing (its data cannot be complete before that).
    merge = graph_tasks["vid_merge"]
    for tid, task in graph_tasks.items():
        if tid.startswith("vid_transcode"):
            assert merge.exec_start >= task.exec_end - 1e-9


def test_crash_of_idle_container_is_harmless():
    env, cluster, system, app, workflow = build("wc")
    done = submit(system, app, workflow)
    record = env.run(until=done)
    deployment = system.deployment(workflow.name)
    pool = deployment.dispatcher("wordcount_merge").pool
    container = pool.containers[0]
    system.crash_container(container)
    assert not container.alive
    # A fresh request still works (new container cold-starts).
    done2 = submit(system, app, workflow, rid="r2")
    record2 = env.run(until=done2)
    assert record2.completed
