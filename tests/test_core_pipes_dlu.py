"""Tests for pipe connectors, the DLU daemon, and checkpointed retries."""

import pytest

from repro.cluster import Cluster, ClusterConfig, ContainerPool, ContainerSpec
from repro.core.config import DataFlowerConfig
from repro.core.dlu import DLU
from repro.core.pipes import PipeRouter
from repro.sim import Environment


def make_env(**config_overrides):
    env = Environment()
    cluster = Cluster(env, ClusterConfig())
    config = DataFlowerConfig(**config_overrides)
    router = PipeRouter(env, cluster, config)
    pool = ContainerPool(
        env, cluster.workers[0], "f", ContainerSpec(memory_mb=512),
        cold_start_s=0.0, env_setup_s=0.0,
    )
    container = env.run(until=pool.start_new())
    return env, cluster, router, container


def run_push(env, router, container, src, dst, nbytes, compute_delay=0.0):
    compute_done = env.event()
    outcome = {}

    def compute(env):
        if compute_delay:
            yield env.timeout(compute_delay)
        compute_done.succeed()

    def pusher(env):
        result = yield from router.push(
            container, src, dst, nbytes, compute_done, label="t"
        )
        outcome["result"] = result
        outcome["at"] = env.now

    env.process(compute(env))
    proc = env.process(pusher(env))
    env.run(until=proc)
    return outcome


def test_small_data_uses_socket():
    env, cluster, router, container = make_env()
    out = run_push(env, router, container, cluster.workers[0], cluster.workers[1], 8_000)
    assert out["result"].transport == "socket"
    assert router.socket_pushes == 1
    assert out["at"] == pytest.approx(0.0008)


def test_local_pipe_for_same_node():
    env, cluster, router, container = make_env()
    node = cluster.workers[0]
    out = run_push(env, router, container, node, node, 1e6)
    assert out["result"].transport == "local-pipe"
    assert router.local_pushes == 1


def test_cross_node_stream_respects_container_cap():
    env, cluster, router, container = make_env()
    nbytes = 10e6
    out = run_push(env, router, container, cluster.workers[0], cluster.workers[1], nbytes)
    assert out["result"].transport == "stream-pipe"
    # 512 MB container -> 20 MB/s cap.
    assert out["at"] == pytest.approx(nbytes / container.spec.net_bytes_per_s, rel=1e-3)


def test_push_completion_gated_on_compute():
    env, cluster, router, container = make_env()
    out = run_push(
        env, router, container, cluster.workers[0], cluster.workers[1],
        1e6, compute_delay=5.0,
    )
    # Transfer takes ~0.05 s but the datum is complete only at compute end.
    assert out["at"] == pytest.approx(5.0)


def test_checkpoint_restart_resumes_not_restarts():
    env, cluster, router, container = make_env(
        checkpoint_fraction=0.25, retry_delay_s=0.0
    )
    nbytes = 20e6  # 1s at 20 MB/s
    compute_done = env.event()
    compute_done.succeed()
    done = {}

    def pusher(env):
        result = yield from router.push(
            container, cluster.workers[0], cluster.workers[1], nbytes,
            compute_done, label="ckpt",
        )
        done["at"] = env.now
        done["restarts"] = result.checkpoint_restarts

    def interrupter(env):
        yield env.timeout(0.6)  # 60% transferred; checkpoint floor = 50%
        router.cancel_container_flows(container, "injected")

    env.process(pusher(env))
    env.process(interrupter(env))
    env.run()
    assert done["restarts"] == 1
    # Remaining 50% takes 0.5 s from t=0.6 -> total 1.1 s (not 1.6).
    assert done["at"] == pytest.approx(1.1, rel=1e-2)


def test_cancelled_push_with_token_raises_to_caller():
    from repro.cluster.network import FlowCancelled

    env, cluster, router, container = make_env()
    compute_done = env.event()
    compute_done.succeed()
    token = [False]
    failures = []

    def pusher(env):
        try:
            yield from router.push(
                container, cluster.workers[0], cluster.workers[1], 20e6,
                compute_done, label="dead", cancel_token=token,
            )
        except FlowCancelled:
            failures.append(env.now)

    def killer(env):
        yield env.timeout(0.3)
        token[0] = True
        router.cancel_container_flows(container, "crash")

    env.process(pusher(env))
    env.process(killer(env))
    env.run()
    assert failures == [0.3]


def test_dlu_pending_counts_and_callbacks():
    env, cluster, router, container = make_env()
    dlu = DLU(env, container, router)
    assert container.dlu is dlu
    compute_done = env.event()
    compute_done.succeed()
    delivered = []

    dlu.push(
        cluster.workers[0], cluster.workers[1], 1e6, compute_done,
        label="d", cancel_token=[False],
        on_delivered=lambda: delivered.append(env.now),
    )
    assert dlu.pending == 1
    assert not dlu.idle
    env.run()
    assert delivered and dlu.pending == 0
    assert dlu.idle
    assert dlu.pushed_bytes == pytest.approx(1e6)


def test_dlu_abandoned_callback_on_crash():
    env, cluster, router, container = make_env()
    dlu = DLU(env, container, router)
    compute_done = env.event()
    compute_done.succeed()
    token = [False]
    outcomes = []

    dlu.push(
        cluster.workers[0], cluster.workers[1], 20e6, compute_done,
        label="d", cancel_token=token,
        on_delivered=lambda: outcomes.append("delivered"),
        on_abandoned=lambda: outcomes.append("abandoned"),
    )

    def killer(env):
        yield env.timeout(0.2)
        token[0] = True
        router.cancel_container_flows(container)

    env.process(killer(env))
    env.run()
    assert outcomes == ["abandoned"]
    assert dlu.pending == 0


def test_zero_byte_push_is_socket_and_instant():
    env, cluster, router, container = make_env()
    out = run_push(env, router, container, cluster.workers[0], cluster.workers[1], 0.0)
    assert out["result"].transport == "socket"


def test_config_validation():
    with pytest.raises(ValueError):
        DataFlowerConfig(checkpoint_fraction=0.0).validate()
    with pytest.raises(ValueError):
        DataFlowerConfig(pressure_alpha=0).validate()
    with pytest.raises(ValueError):
        DataFlowerConfig(sink_ttl_s=0).validate()
    with pytest.raises(ValueError):
        DataFlowerConfig(max_retries=-1).validate()
    DataFlowerConfig().validate()
