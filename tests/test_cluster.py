"""Tests for nodes, specs, containers, pools, disks, and storage."""

import pytest

from repro.sim import Environment
from repro.cluster import (
    BUSY,
    Cluster,
    ClusterConfig,
    ContainerPool,
    ContainerSpec,
    IDLE,
    InsufficientResources,
    MB,
    RECYCLED,
    ScalingPolicy,
)


def make_cluster(**overrides):
    env = Environment()
    cluster = Cluster(env, ClusterConfig(**overrides))
    return env, cluster


def make_pool(env, node, keep_alive_s=900.0, spec=None, recycle_guard=None):
    return ContainerPool(
        env,
        node,
        function_name="f",
        spec=spec or ContainerSpec(memory_mb=128),
        cold_start_s=0.5,
        env_setup_s=0.3,
        keep_alive_s=keep_alive_s,
        recycle_guard=recycle_guard,
    )


# -- spec ---------------------------------------------------------------------


def test_spec_paper_baseline():
    spec = ContainerSpec(memory_mb=128)
    assert spec.cpu_cores == pytest.approx(0.1)
    assert spec.net_bytes_per_s == pytest.approx(40e6 / 8)


def test_spec_scales_linearly():
    small = ContainerSpec(memory_mb=128)
    large = small.scaled_to(640)
    assert large.cpu_cores == pytest.approx(0.5)
    assert large.net_bytes_per_s == pytest.approx(5 * small.net_bytes_per_s)


def test_spec_rejects_nonpositive_memory():
    with pytest.raises(ValueError):
        ContainerSpec(memory_mb=0)


def test_custom_scaling_policy():
    policy = ScalingPolicy(cores_per_base=0.2, mbps_per_base=80.0)
    spec = ContainerSpec(memory_mb=128, scaling=policy)
    assert spec.cpu_cores == pytest.approx(0.2)
    assert spec.net_bytes_per_s == pytest.approx(80e6 / 8)


# -- node ledger ----------------------------------------------------------------


def test_node_reserve_release_roundtrip():
    env, cluster = make_cluster()
    node = cluster.workers[0]
    node.reserve(2.0, 1024 * MB)
    assert node.cores_used == pytest.approx(2.0)
    node.release(2.0, 1024 * MB)
    assert node.cores_used == pytest.approx(0.0)
    assert node.memory_used == pytest.approx(0.0)


def test_node_over_reservation_raises():
    env, cluster = make_cluster(worker_cores=1.0)
    node = cluster.workers[0]
    with pytest.raises(InsufficientResources):
        node.reserve(2.0, MB)


def test_node_memory_integral_tracks_reservation():
    env, cluster = make_cluster()
    node = cluster.workers[0]

    def scenario(env):
        node.reserve(1.0, 512 * MB)
        yield env.timeout(10.0)
        node.release(1.0, 512 * MB)
        yield env.timeout(10.0)

    env.process(scenario(env))
    env.run()
    assert node.memory_usage.integral() == pytest.approx(512 * MB * 10.0)


# -- containers and pools ---------------------------------------------------------


def test_cold_start_takes_boot_plus_setup():
    env, cluster = make_cluster()
    pool = make_pool(env, cluster.workers[0])
    ready = pool.start_new()
    container = env.run(until=ready)
    assert env.now == pytest.approx(0.8)
    assert container.state == IDLE
    assert pool.cold_starts == 1


def test_checkout_checkin_cycle():
    env, cluster = make_cluster()
    pool = make_pool(env, cluster.workers[0])
    container = env.run(until=pool.start_new())
    pool.checkout(container)
    assert container.state == BUSY
    pool.checkin(container)
    assert container.state == IDLE
    assert container.invocations_served == 1


def test_checkout_busy_container_rejected():
    env, cluster = make_cluster()
    pool = make_pool(env, cluster.workers[0])
    container = env.run(until=pool.start_new())
    pool.checkout(container)
    with pytest.raises(RuntimeError):
        pool.checkout(container)


def test_keep_alive_recycles_idle_container():
    env, cluster = make_cluster()
    node = cluster.workers[0]
    pool = make_pool(env, node, keep_alive_s=100.0)
    container = env.run(until=pool.start_new())
    env.run(until=env.now + 150.0)
    assert container.state == RECYCLED
    assert pool.size == 0
    assert node.cores_used == pytest.approx(0.0)


def test_keep_alive_resets_on_use():
    env, cluster = make_cluster()
    pool = make_pool(env, cluster.workers[0], keep_alive_s=100.0)
    container = env.run(until=pool.start_new())

    def use(env):
        yield env.timeout(90.0)
        pool.checkout(container)
        yield env.timeout(50.0)
        pool.checkin(container)

    env.process(use(env))
    env.run(until=200.0)
    assert container.state == IDLE  # idle clock restarted at t=140
    env.run(until=300.0)
    assert container.state == RECYCLED


def test_recycle_guard_defers_recycling():
    env, cluster = make_cluster()
    holds = {"pending": True}
    pool = make_pool(
        env,
        cluster.workers[0],
        keep_alive_s=10.0,
        recycle_guard=lambda c: not holds["pending"],
    )
    container = env.run(until=pool.start_new())
    env.run(until=15.0)
    assert container.state == IDLE  # guard refused the recycle

    holds["pending"] = False
    env.run(until=30.0)
    assert container.state == RECYCLED


def test_compute_scales_with_cpu_share():
    env, cluster = make_cluster()
    pool = make_pool(env, cluster.workers[0], spec=ContainerSpec(memory_mb=256))
    container = env.run(until=pool.start_new())
    start = env.now

    def work(env):
        yield env.process(container.compute(1.0))

    env.run(until=env.process(work(env)))
    # 256 MB -> 0.2 cores; 1 core-second takes 5 wall seconds.
    assert env.now - start == pytest.approx(5.0)
    assert container.intervals.labelled("cpu")


def test_pool_admission_limit():
    env, cluster = make_cluster(worker_memory_gb=0.25)  # fits two 128MB containers
    pool = make_pool(env, cluster.workers[0])
    env.run(until=pool.start_new())
    env.run(until=pool.start_new())
    assert not pool.can_start_new()
    with pytest.raises(InsufficientResources):
        pool.start_new()


# -- disk and storage ----------------------------------------------------------------


def test_disk_write_takes_latency_plus_bandwidth():
    env, cluster = make_cluster(
        disk_write_bps=100e6, disk_op_latency_s=0.01
    )
    disk = cluster.workers[0].disk
    done = disk.write(100e6)
    env.run(until=done)
    assert env.now == pytest.approx(1.01)
    assert disk.bytes_written == 100e6


def test_backend_store_put_get_roundtrip():
    env, cluster = make_cluster(
        storage_service_bps=10e6, storage_op_latency_s=0.0
    )
    store = cluster.storage
    node = cluster.workers[0]
    key = ("req1", "funA", "out")
    env.run(until=store.put(key, 10e6, via=[node.egress]))
    assert env.now == pytest.approx(1.0)
    env.run(until=store.get(key, via=[node.ingress]))
    assert env.now == pytest.approx(2.0)
    assert store.put_count == 1 and store.get_count == 1


def test_backend_store_get_missing_key():
    env, cluster = make_cluster()
    with pytest.raises(KeyError):
        cluster.storage.get(("nope",), via=[])


def test_backend_store_contention_slows_ops():
    env, cluster = make_cluster(
        storage_service_bps=10e6, storage_op_latency_s=0.0
    )
    store = cluster.storage
    node = cluster.workers[0]
    a = store.put(("a",), 10e6, via=[node.egress])
    b = store.put(("b",), 10e6, via=[node.egress])
    env.run(until=a & b)
    # Two puts share the 10 MB/s service channel -> 2 s total.
    assert env.now == pytest.approx(2.0)


def test_memory_channel_copy():
    env, cluster = make_cluster(membus_bps=1e9, membus_latency_s=0.001)
    channel = cluster.memory_channel(cluster.workers[0])
    env.run(until=channel.copy(1e9))
    assert env.now == pytest.approx(1.001)
    assert channel.bytes_moved == 1e9


def test_cluster_validation():
    with pytest.raises(ValueError):
        ClusterConfig(worker_count=0).validate()
    with pytest.raises(ValueError):
        ClusterConfig(storage_service_bps=0).validate()


def test_cluster_node_lookup():
    env, cluster = make_cluster()
    assert cluster.node("worker2").name == "worker2"
    with pytest.raises(KeyError):
        cluster.node("worker99")
